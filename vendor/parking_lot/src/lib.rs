//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny API subset the Shark crates use: `Mutex` and `RwLock`
//! with parking_lot semantics (no lock poisoning — a panic while holding a
//! lock does not wedge every later acquisition). Backed by `std::sync`
//! primitives; swap the workspace dependency back to the real crate when a
//! registry is available.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that recovers from poisoning on acquisition.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that recovers from poisoning on acquisition.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_panic_in_other_thread() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
