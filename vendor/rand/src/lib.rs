//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the surface the Shark workspace uses: a seedable
//! `StdRng` (xoshiro256** behind a SplitMix64 seeder) and the [`Rng`]
//! methods `gen`, `gen_bool` and `gen_range` over integer and float ranges.
//! Deterministic for a given seed, like the real `StdRng`, though the
//! streams differ from upstream rand's.

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from an RNG (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for i64 {
    fn from_bits(bits: u64) -> i64 {
        bits as i64
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for i32 {
    fn from_bits(bits: u64) -> i32 {
        (bits >> 32) as i32
    }
}

impl Standard for usize {
    fn from_bits(bits: u64) -> usize {
        bits as usize
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw a value in the range using the RNG's bit stream.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit: f64 = Standard::from_bits(rng.next_u64());
                let value = self.start + (self.end - self.start) * unit as $t;
                // `start + span * unit` can round up to exactly `end` (a
                // half-ulp round-to-even); the range is half-open, so clamp
                // to the largest representable value below `end`.
                if value >= self.end {
                    self.end.next_down()
                } else {
                    value
                }
            }
        }
    )*};
}

float_range!(f32, f64);

/// The random-number-generator trait (subset of rand 0.8's `Rng`).
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

/// RNGs constructible from a seed (subset of rand 0.8's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The standard RNG: xoshiro256** seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let i = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let inc = r.gen_range(1i32..=6);
            assert!((1..=6).contains(&inc));
        }
    }

    #[test]
    fn float_range_excludes_the_upper_bound_even_on_maximal_draws() {
        // An all-ones bit stream maximizes `unit`; start + span * unit can
        // then round to exactly `end`, which must be clamped below it.
        struct MaxRng;
        impl Rng for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let f = MaxRng.gen_range(-2.0f64..2.0);
        assert!(f < 2.0, "upper bound leaked: {f}");
        let g = MaxRng.gen_range(-2.0f32..2.0);
        assert!(g < 2.0, "upper bound leaked: {g}");
        let h = MaxRng.gen_range(0.0f64..1.0);
        assert!(h < 1.0);
    }

    #[test]
    fn unit_floats_and_bools_are_plausible() {
        let mut r = StdRng::seed_from_u64(1);
        let mut trues = 0;
        for _ in 0..4000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((1500..2500).contains(&trues), "biased gen_bool: {trues}");
    }
}
