//! Offline stand-in for `serde_derive`.
//!
//! The Shark crates only tag types with `#[derive(Serialize, Deserialize)]`
//! for forward compatibility; nothing in the workspace actually serializes.
//! These derives therefore expand to nothing, which keeps the annotations
//! compiling without a registry connection.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
