//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait + no-op derive macro)
//! so type annotations compile without crates.io access. No actual
//! serialization machinery exists; swap back to the real crate when a
//! registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
