//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the Shark benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — with a simple mean/median-over-
//! samples timer instead of criterion's statistical machinery. Good enough
//! to keep `cargo bench` runnable (and benches compiling) without a
//! registry.
//!
//! Two environment hooks support CI smoke runs:
//!
//! * `SHARK_BENCH_SAMPLES=<n>` overrides every benchmark's sample count.
//! * `SHARK_BENCH_JSON=<path>` appends one JSON line per benchmark —
//!   `{"group","bench","median_ns","mean_ns","min_ns","samples"}` — which
//!   a CI job can collect (e.g. `jq -s`) into a criterion-style medians
//!   artifact.

use std::io::Write as _;
use std::time::Instant;

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, name, self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The sample count to use: the `SHARK_BENCH_SAMPLES` override, or the
/// benchmark's own setting.
fn effective_samples(configured: usize) -> usize {
    std::env::var("SHARK_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(configured)
}

/// Minimal JSON string escaping (bench names are plain identifiers, but a
/// stray quote must not corrupt the artifact).
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Append this benchmark's summary as one JSON line to `SHARK_BENCH_JSON`,
/// when set. Failures to write are reported but never fail the bench.
fn emit_json(group: &str, name: &str, nanos: &[u128]) {
    let Ok(path) = std::env::var("SHARK_BENCH_JSON") else {
        return;
    };
    if path.is_empty() || nanos.is_empty() {
        return;
    }
    let mut sorted = nanos.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<u128>() / sorted.len() as u128;
    let min = sorted[0];
    let line = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
        escape_json(group),
        escape_json(name),
        median,
        mean,
        min,
        sorted.len(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(err) = written {
        eprintln!("criterion stand-in: cannot append to {path}: {err}");
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, mut f: F) {
    let samples = effective_samples(samples);
    let mut bencher = Bencher { nanos: Vec::new() };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let n = bencher.nanos.len().max(1);
    let mean = bencher.nanos.iter().sum::<u128>() / n as u128;
    let min = bencher.nanos.iter().min().copied().unwrap_or(0);
    println!(
        "  {name:<44} mean {:>12.3} ms   min {:>12.3} ms   ({n} samples)",
        mean as f64 / 1e6,
        min as f64 / 1e6,
    );
    emit_json(group, name, &bencher.nanos);
}

/// Times closures; one `iter` call contributes one sample.
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Time one execution of `f` (a single sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.nanos.push(start.elapsed().as_nanos());
    }
}

/// Collect benchmark functions into a named runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // SHARK_BENCH_SAMPLES may override the sample count in a smoke run;
        // by default the configured 3 samples execute.
        assert_eq!(runs as usize, effective_samples(3));
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(escape_json("plain_name"), "plain_name");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }
}
