//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the Shark benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — with a simple mean-over-samples
//! timer instead of criterion's statistical machinery. Good enough to keep
//! `cargo bench` runnable (and benches compiling) without a registry.

use std::time::Instant;

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { nanos: Vec::new() };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let n = bencher.nanos.len().max(1);
    let mean = bencher.nanos.iter().sum::<u128>() / n as u128;
    let min = bencher.nanos.iter().min().copied().unwrap_or(0);
    println!(
        "  {name:<44} mean {:>12.3} ms   min {:>12.3} ms   ({n} samples)",
        mean as f64 / 1e6,
        min as f64 / 1e6,
    );
}

/// Times closures; one `iter` call contributes one sample.
pub struct Bencher {
    nanos: Vec<u128>,
}

impl Bencher {
    /// Time one execution of `f` (a single sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.nanos.push(start.elapsed().as_nanos());
    }
}

/// Collect benchmark functions into a named runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 3);
    }
}
