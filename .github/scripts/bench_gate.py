#!/usr/bin/env python3
"""Bench regression gate: diff this run's fast-mode medians against the
latest successful `main` baseline.

Usage: bench_gate.py <baseline-dir> <current-dir> [nightly-fallback-dir]

Each directory is expected to hold one `BENCH_*.json` produced by the
bench-smoke job: `{"schema": "shark-bench-smoke-v1", "commit": "...",
"benches": [{"group", "bench", "median_ns", ...}, ...]}`.

Behaviour:
  * writes a per-bench median-delta table to $GITHUB_STEP_SUMMARY
    (stdout when unset);
  * exits non-zero when any bench's `current/baseline` median ratio
    exceeds BENCH_GATE_MAX_RATIO (default 2.0) — fast-mode runs on shared
    CI runners are noisy, so the default only catches step-function
    regressions;
  * when the fast-mode main baseline is missing (first run, expired
    artifact) but a nightly-fallback dir holds a `bench-nightly-*`
    medians file, the diff runs against that instead in **advisory
    mode**: nightly numbers come from full-size runs, so deltas are
    reported in the summary but never fail the gate;
  * with neither baseline the gate passes vacuously and says so.
"""

import glob
import json
import os
import sys


def load_medians(dirpath):
    """Return ({'group/bench': median_ns}, commit, mode) or (None, None, None)."""
    files = sorted(glob.glob(os.path.join(dirpath, "**", "BENCH_*.json"), recursive=True))
    if not files:
        return None, None, None
    with open(files[0]) as f:
        doc = json.load(f)
    medians = {}
    for b in doc.get("benches", []):
        medians["{}/{}".format(b["group"], b["bench"])] = float(b["median_ns"])
    return medians, doc.get("commit", "unknown"), doc.get("mode", "unknown")


def fmt_ns(ns):
    if ns >= 1e9:
        return "{:.2f} s".format(ns / 1e9)
    if ns >= 1e6:
        return "{:.2f} ms".format(ns / 1e6)
    if ns >= 1e3:
        return "{:.2f} µs".format(ns / 1e3)
    return "{:.0f} ns".format(ns)


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    baseline_dir, current_dir = sys.argv[1], sys.argv[2]
    nightly_dir = sys.argv[3] if len(sys.argv) == 4 else None
    max_ratio = float(os.environ.get("BENCH_GATE_MAX_RATIO", "2.0"))

    current, current_commit, _ = load_medians(current_dir)
    if current is None:
        print("bench-gate: no current bench medians in {}".format(current_dir), file=sys.stderr)
        return 2
    baseline, baseline_commit, baseline_mode = load_medians(baseline_dir)
    advisory = False
    baseline_label = "latest successful main"
    if baseline is None and nightly_dir:
        baseline, baseline_commit, baseline_mode = load_medians(nightly_dir)
        if baseline is not None:
            # Nightly medians come from full-size runs: not comparable to
            # this run's fast-mode numbers as a hard gate, but a delta
            # table against them still surfaces step-function changes.
            advisory = True
            baseline_label = "nightly fallback, mode={}".format(baseline_mode)

    lines = ["## Bench regression gate", ""]
    regressions = []
    if baseline is None:
        lines.append(
            "No baseline medians available (first run on main, or the "
            "artifact expired) — gate passes vacuously. Current run "
            "`{}` has {} benches.".format(current_commit, len(current))
        )
    else:
        lines.append(
            "Baseline `{}` ({}) vs current `{}`. "
            "Fail threshold: median ratio > {:.2f}× "
            "(env `BENCH_GATE_MAX_RATIO`){}.".format(
                baseline_commit,
                baseline_label,
                current_commit,
                max_ratio,
                " — **advisory only**: the fast-mode main baseline was "
                "missing, and nightly full-size numbers are not "
                "comparable enough to fail on" if advisory else "",
            )
        )
        lines.append("")
        lines.append("| bench | baseline median | current median | ratio | |")
        lines.append("|---|---:|---:|---:|---|")
        for name in sorted(set(current) | set(baseline)):
            cur, base = current.get(name), baseline.get(name)
            if base is None:
                lines.append("| {} | — | {} | new | 🆕 |".format(name, fmt_ns(cur)))
                continue
            if cur is None:
                lines.append("| {} | {} | — | removed | ⚪ |".format(name, fmt_ns(base)))
                continue
            ratio = cur / base if base > 0 else float("inf")
            if ratio > max_ratio:
                flag = "🔴 regression"
                regressions.append((name, ratio))
            elif ratio > 1.25:
                flag = "🟡"
            elif ratio < 0.8:
                flag = "🟢"
            else:
                flag = ""
            lines.append(
                "| {} | {} | {} | {:.2f}× | {} |".format(
                    name, fmt_ns(base), fmt_ns(cur), ratio, flag
                )
            )
        lines.append("")
        if regressions:
            lines.append(
                "**{} bench(es) {} beyond {:.2f}×:** ".format(
                    len(regressions),
                    "over the advisory threshold" if advisory else "regressed",
                    max_ratio,
                )
                + ", ".join("{} ({:.2f}×)".format(n, r) for n, r in regressions)
                + (" — not failing the gate (advisory mode)." if advisory else "")
            )
        else:
            lines.append("No median regression beyond {:.2f}×.".format(max_ratio))

    summary = "\n".join(lines) + "\n"
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(summary)
    print(summary)
    return 1 if regressions and not advisory else 0


if __name__ == "__main__":
    sys.exit(main())
