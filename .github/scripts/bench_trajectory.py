#!/usr/bin/env python3
"""Render the committed perf trajectory as a markdown delta table.

Usage: bench_trajectory.py [repo-root]

Reads every `BENCH_pr<N>.json` committed at the repo root (the per-PR
fast-mode medians the bench-smoke job snapshots), orders them by PR
number, and appends one table to $GITHUB_STEP_SUMMARY (stdout when
unset): one row per bench, one column per PR, and a trend column with
the last/first ratio. All files share the bench-smoke schema
(`{"schema": "shark-bench-smoke-v1", "benches": [...]}`), and all are
fast-mode numbers from shared runners — the table shows the *story*
across the PR sequence, not absolute performance (nightly runs own
that).

Purely informational: always exits 0 unless no trajectory files exist
at all (which means the checkout is broken, not the perf).
"""

import glob
import json
import os
import re
import sys


def fmt_ns(ns):
    if ns >= 1e9:
        return "{:.2f} s".format(ns / 1e9)
    if ns >= 1e6:
        return "{:.2f} ms".format(ns / 1e6)
    if ns >= 1e3:
        return "{:.2f} µs".format(ns / 1e3)
    return "{:.0f} ns".format(ns)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    series = []
    for path in glob.glob(os.path.join(root, "BENCH_pr*.json")):
        match = re.fullmatch(r"BENCH_pr(\d+)\.json", os.path.basename(path))
        if not match:
            continue
        with open(path) as f:
            doc = json.load(f)
        medians = {
            "{}/{}".format(b["group"], b["bench"]): float(b["median_ns"])
            for b in doc.get("benches", [])
        }
        series.append((int(match.group(1)), medians))
    if not series:
        print("bench-trajectory: no BENCH_pr*.json at {}".format(root), file=sys.stderr)
        return 2
    series.sort()

    names = sorted(set().union(*(medians for _, medians in series)))
    prs = [pr for pr, _ in series]
    lines = ["## Bench trajectory (committed per-PR fast-mode medians)", ""]
    lines.append(
        "{} benches across {} snapshots (PR {} → PR {}). Trend is "
        "last/first median for benches present in both; fast-mode numbers "
        "are noisy — read trends, not digits.".format(
            len(names), len(prs), prs[0], prs[-1]
        )
    )
    lines.append("")
    lines.append("| bench | " + " | ".join("pr{}".format(pr) for pr in prs) + " | trend |")
    lines.append("|---|" + "---:|" * (len(prs) + 1))
    for name in names:
        cells = []
        present = []
        for _, medians in series:
            value = medians.get(name)
            cells.append(fmt_ns(value) if value is not None else "—")
            if value is not None:
                present.append(value)
        if len(present) >= 2 and present[0] > 0:
            ratio = present[-1] / present[0]
            trend = "{:.2f}×".format(ratio)
            if ratio > 1.5:
                trend += " 🔺"
            elif ratio < 0.67:
                trend += " 🟢"
        else:
            trend = "—"
        lines.append("| {} | {} | {} |".format(name, " | ".join(cells), trend))

    summary = "\n".join(lines) + "\n"
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(summary)
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
