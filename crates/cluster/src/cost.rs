//! The task cost model.
//!
//! The RDD layer executes every task for real on scaled-down data and
//! measures row and byte counts. [`CostModel::task_duration`] converts those
//! measurements into a simulated task duration under a given
//! [`EngineProfile`], charging for input I/O (columnar scan, row
//! deserialization, shuffle fetch or DFS read), per-row CPU, optional
//! sorting, and output materialization (memory, shuffled output, DFS write
//! with replication).

use serde::{Deserialize, Serialize};

use crate::config::EngineProfile;

/// Where a task reads its input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputSource {
    /// The columnar in-memory store (Shark memstore, §3.2).
    CachedColumnar,
    /// Deserialized row objects cached in memory (the naïve Spark cache).
    CachedRows,
    /// The distributed file system (text/sequence files; pays deserialization).
    Dfs,
    /// Shuffle output fetched from other nodes' memory.
    ShuffleMemory,
    /// Shuffle output fetched from other nodes' local disks.
    ShuffleDisk,
    /// Task-local generated data (no input I/O charged).
    Local,
}

/// Where a task writes its output to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputSink {
    /// Kept in memory as an RDD partition / memstore partition.
    Memory,
    /// Shuffle output for the next stage (disk or memory per the profile).
    Shuffle,
    /// Written to the replicated DFS (Hive inter-stage materialization).
    Dfs,
    /// Returned to the master (query result collection).
    Collect,
    /// Discarded (e.g. counting only).
    None,
}

/// Measured characteristics of one task, fed to the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskCostInput {
    /// Rows read by the task.
    pub rows_in: u64,
    /// Bytes read by the task.
    pub bytes_in: u64,
    /// Rows produced by the task.
    pub rows_out: u64,
    /// Bytes produced by the task.
    pub bytes_out: u64,
    /// Where the input came from.
    pub input: InputSource,
    /// Where the output goes.
    pub output: OutputSink,
    /// Average number of expression/comparison operations applied per input
    /// row (filters, projections, aggregation updates, hash probes).
    pub expr_ops_per_row: f64,
    /// Whether the task sorts its output (sort-based shuffle or ORDER BY).
    pub sort_rows: u64,
}

impl TaskCostInput {
    /// A task that scans `rows_in`/`bytes_in` from `input` and produces
    /// `rows_out`/`bytes_out` to `output` with `expr_ops_per_row` work.
    pub fn new(
        rows_in: u64,
        bytes_in: u64,
        rows_out: u64,
        bytes_out: u64,
        input: InputSource,
        output: OutputSink,
        expr_ops_per_row: f64,
    ) -> TaskCostInput {
        TaskCostInput {
            rows_in,
            bytes_in,
            rows_out,
            bytes_out,
            input,
            output,
            expr_ops_per_row,
            sort_rows: 0,
        }
    }

    /// Set the number of rows this task must sort.
    pub fn with_sort(mut self, rows: u64) -> TaskCostInput {
        self.sort_rows = rows;
        self
    }
}

/// Converts [`TaskCostInput`] measurements into simulated durations.
#[derive(Debug, Clone)]
pub struct CostModel {
    profile: EngineProfile,
}

impl CostModel {
    /// Create a cost model for the given engine profile.
    pub fn new(profile: EngineProfile) -> CostModel {
        CostModel { profile }
    }

    /// The profile this model uses.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Simulated duration of a task, **excluding** launch overhead and
    /// scheduling delays (those are applied by the cluster simulator because
    /// they depend on placement and waves).
    pub fn task_duration(&self, t: &TaskCostInput) -> f64 {
        let p = &self.profile;
        let input_time = match t.input {
            InputSource::CachedColumnar => t.bytes_in as f64 / p.columnar_scan_bw,
            InputSource::CachedRows => t.bytes_in as f64 / p.memory_bw,
            InputSource::Dfs => {
                // Read from local disk (data-local task) + deserialize.
                t.bytes_in as f64 / p.disk_bw + t.bytes_in as f64 / p.row_deserialize_bw
            }
            InputSource::ShuffleMemory => {
                t.bytes_in as f64 / p.network_bw + t.bytes_in as f64 / p.memory_bw
            }
            InputSource::ShuffleDisk => {
                t.bytes_in as f64 / p.network_bw + t.bytes_in as f64 / p.disk_bw
            }
            InputSource::Local => 0.0,
        };

        let cpu_time = t.rows_in as f64 * (p.cpu_per_row + t.expr_ops_per_row * p.cpu_per_expr_op);

        let sort_time = if t.sort_rows > 1 {
            let n = t.sort_rows as f64;
            n * n.log2() * p.sort_cmp_cost
        } else {
            0.0
        };

        let output_time = match t.output {
            OutputSink::Memory => t.bytes_out as f64 / p.memory_bw,
            OutputSink::Shuffle => {
                if p.shuffle_to_disk {
                    // Write map output to local disk (plus journaling overhead
                    // folded into disk bandwidth).
                    t.bytes_out as f64 / p.disk_bw
                } else {
                    t.bytes_out as f64 / p.memory_bw
                }
            }
            OutputSink::Dfs => {
                // Replicated write: local disk plus (r-1) network copies.
                let r = p.dfs_replication.max(1) as f64;
                t.bytes_out as f64 / p.disk_bw + (r - 1.0) * t.bytes_out as f64 / p.network_bw
            }
            OutputSink::Collect => t.bytes_out as f64 / p.network_bw,
            OutputSink::None => 0.0,
        };

        input_time + cpu_time + sort_time + output_time
    }

    /// Duration of the shuffle-sort work Hadoop performs on the map side.
    /// Returns zero for hash-based shuffles.
    pub fn map_side_sort(&self, rows: u64) -> f64 {
        if self.profile.sort_based_shuffle && rows > 1 {
            let n = rows as f64;
            n * n.log2() * self.profile.sort_cmp_cost
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineProfile;

    fn scan_task(input: InputSource) -> TaskCostInput {
        TaskCostInput::new(
            1_000_000,
            100 * 1024 * 1024,
            1_000,
            100 * 1024,
            input,
            OutputSink::Memory,
            2.0,
        )
    }

    #[test]
    fn columnar_scan_is_faster_than_deserializing_rows() {
        let m = CostModel::new(EngineProfile::spark());
        let columnar = m.task_duration(&scan_task(InputSource::CachedColumnar));
        let dfs = m.task_duration(&scan_task(InputSource::Dfs));
        assert!(
            dfs > columnar * 3.0,
            "expected >3x gap, got columnar={columnar} dfs={dfs}"
        );
    }

    #[test]
    fn hive_charges_more_cpu_per_row_than_shark() {
        let shark = CostModel::new(EngineProfile::spark());
        let hive = CostModel::new(EngineProfile::hadoop());
        let t = TaskCostInput::new(
            10_000_000,
            0,
            10_000_000,
            0,
            InputSource::Local,
            OutputSink::None,
            4.0,
        );
        assert!(hive.task_duration(&t) > shark.task_duration(&t) * 3.0);
    }

    #[test]
    fn dfs_output_charges_replication() {
        let m = CostModel::new(EngineProfile::hadoop());
        let mem = TaskCostInput::new(
            0,
            0,
            1_000_000,
            1 << 30,
            InputSource::Local,
            OutputSink::Memory,
            0.0,
        );
        let dfs = TaskCostInput {
            output: OutputSink::Dfs,
            ..mem
        };
        assert!(m.task_duration(&dfs) > m.task_duration(&mem) * 5.0);
    }

    #[test]
    fn sort_based_shuffle_adds_cost() {
        let hadoop = CostModel::new(EngineProfile::hadoop());
        let spark = CostModel::new(EngineProfile::spark());
        assert!(hadoop.map_side_sort(1_000_000) > 0.0);
        assert_eq!(spark.map_side_sort(1_000_000), 0.0);
    }

    #[test]
    fn empty_task_costs_nothing() {
        let m = CostModel::new(EngineProfile::spark());
        let t = TaskCostInput::new(0, 0, 0, 0, InputSource::Local, OutputSink::None, 0.0);
        assert_eq!(m.task_duration(&t), 0.0);
    }

    #[test]
    fn shuffle_output_is_cheaper_in_memory_than_on_disk() {
        let t = TaskCostInput::new(
            0,
            0,
            1_000_000,
            512 << 20,
            InputSource::Local,
            OutputSink::Shuffle,
            0.0,
        );
        let spark = CostModel::new(EngineProfile::spark()).task_duration(&t);
        let hadoop = CostModel::new(EngineProfile::hadoop()).task_duration(&t);
        assert!(hadoop > spark * 5.0);
    }
}
