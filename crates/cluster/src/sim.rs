//! Event-driven stage scheduling simulation.
//!
//! [`ClusterSim`] plays the role of the Spark master / Hadoop JobTracker: it
//! takes the tasks of one stage (with durations produced by the
//! [`CostModel`](crate::CostModel)), places them on `nodes × cores` slots in
//! FIFO waves, applies per-task launch overhead and heartbeat delays,
//! per-node straggler slowdowns, speculative backup copies, and node
//! failures, and reports the simulated wall-clock duration of the stage.
//!
//! Stages of one job run back-to-back on the same `ClusterSim`, which keeps
//! a running clock so failure times (expressed relative to job start) land
//! in the correct stage.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ClusterConfig;
use crate::failure::FailurePlan;

/// One task to be scheduled in a stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Simulated execution duration (excluding launch overhead), seconds.
    pub duration: f64,
    /// Preferred node (data locality), if any.
    pub preferred_node: Option<usize>,
}

impl TaskSpec {
    /// A task with the given duration and no locality preference.
    pub fn new(duration: f64) -> TaskSpec {
        TaskSpec {
            duration,
            preferred_node: None,
        }
    }

    /// A task preferring to run on `node` (e.g. its cached partition lives there).
    pub fn on_node(duration: f64, node: usize) -> TaskSpec {
        TaskSpec {
            duration,
            preferred_node: Some(node),
        }
    }
}

/// The outcome of simulating one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSimResult {
    /// Wall-clock duration of the stage (seconds).
    pub duration: f64,
    /// Absolute finish time of each task (relative to job start).
    pub task_finish_times: Vec<f64>,
    /// Node each task ultimately ran on.
    pub placements: Vec<usize>,
    /// Number of speculative backup copies launched.
    pub speculative_copies: usize,
    /// Number of task executions lost to node failures and re-run.
    pub tasks_rerun: usize,
}

/// Simulated-stage-duration histogram buckets (simulated seconds).
const SIM_STAGE_BUCKETS: &[f64] = &[0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0];

/// Cached handles into the unified metrics registry; registration happens
/// once, every stage thereafter is a handful of atomic ops.
struct SimMetrics {
    stages: std::sync::Arc<shark_obs::Counter>,
    tasks: std::sync::Arc<shark_obs::Counter>,
    speculative: std::sync::Arc<shark_obs::Counter>,
    reruns: std::sync::Arc<shark_obs::Counter>,
    stage_seconds: std::sync::Arc<shark_obs::Histogram>,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: std::sync::OnceLock<SimMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = shark_obs::metrics();
        SimMetrics {
            stages: reg.counter("shark_sim_stages_total", "Simulated stages executed"),
            tasks: reg.counter("shark_sim_tasks_total", "Simulated tasks placed"),
            speculative: reg.counter(
                "shark_sim_speculative_copies_total",
                "Speculative backup task copies launched in simulation",
            ),
            reruns: reg.counter(
                "shark_sim_task_reruns_total",
                "Simulated task executions lost to node failures and re-run",
            ),
            stage_seconds: reg.histogram(
                "shark_sim_stage_seconds",
                "Simulated wall-clock duration per stage (simulated seconds)",
                SIM_STAGE_BUCKETS,
            ),
        }
    })
}

/// Publish one simulated stage's timing into the unified metrics registry.
fn record_stage_metrics(result: &StageSimResult, tasks: usize) {
    let m = sim_metrics();
    m.stages.inc();
    m.tasks.add(tasks as u64);
    m.speculative.add(result.speculative_copies as u64);
    m.reruns.add(result.tasks_rerun as u64);
    m.stage_seconds.observe(result.duration);
}

/// Ordered slot entry for the free-slot heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot {
    free_at: f64,
    node: usize,
}

impl Eq for Slot {}
impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.free_at
            .total_cmp(&other.free_at)
            .then(self.node.cmp(&other.node))
    }
}

/// The cluster scheduler simulator. See the module documentation.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: ClusterConfig,
    failure: FailurePlan,
    clock: f64,
    rng: StdRng,
    total_tasks_launched: u64,
    total_stages: u64,
}

impl ClusterSim {
    /// Create a simulator for the given cluster.
    pub fn new(config: ClusterConfig) -> ClusterSim {
        let seed = config.seed;
        ClusterSim {
            config,
            failure: FailurePlan::none(),
            clock: 0.0,
            rng: StdRng::seed_from_u64(seed),
            total_tasks_launched: 0,
            total_stages: 0,
        }
    }

    /// Install a failure plan (times are relative to the job clock).
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failure = plan;
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current simulated time since the job started.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Total tasks launched so far (including speculative copies and reruns).
    pub fn tasks_launched(&self) -> u64 {
        self.total_tasks_launched
    }

    /// Number of stages simulated so far.
    pub fn stages_run(&self) -> u64 {
        self.total_stages
    }

    /// Reset the clock and counters (a new job on the same cluster).
    pub fn reset(&mut self) {
        self.clock = 0.0;
        self.total_tasks_launched = 0;
        self.total_stages = 0;
        self.rng = StdRng::seed_from_u64(self.config.seed);
    }

    /// Advance the clock by a fixed amount (e.g. a driver-side barrier or a
    /// DFS load modeled outside the task scheduler).
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot advance the clock backwards");
        self.clock += seconds;
    }

    /// Nodes still alive at the current clock.
    pub fn alive_nodes(&self) -> Vec<usize> {
        let dead = self.failure.failed_nodes_by(self.clock);
        (0..self.config.num_nodes)
            .filter(|n| !dead.contains(n))
            .collect()
    }

    /// Whether the given node is alive at time `t`.
    fn node_alive_at(&self, node: usize, t: f64) -> bool {
        !self.failure.is_failed(node, t)
    }

    /// Simulate one stage of tasks. Advances the job clock by the stage's
    /// duration and returns placement and timing details.
    pub fn simulate_stage(&mut self, tasks: &[TaskSpec]) -> StageSimResult {
        self.total_stages += 1;
        let stage_start = self.clock;
        if tasks.is_empty() {
            return StageSimResult {
                duration: 0.0,
                task_finish_times: vec![],
                placements: vec![],
                speculative_copies: 0,
                tasks_rerun: 0,
            };
        }

        let p = &self.config.profile;
        // Per-stage straggler assignment.
        let slowdown: Vec<f64> = (0..self.config.num_nodes)
            .map(|_| {
                if self.rng.gen::<f64>() < self.config.straggler_probability {
                    self.config.straggler_slowdown
                } else {
                    1.0
                }
            })
            .collect();

        // Median duration for the speculation heuristic.
        let mut sorted: Vec<f64> = tasks.iter().map(|t| t.duration).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];

        // Free-slot heap, only for nodes alive at stage start.
        let mut slots: BinaryHeap<Reverse<Slot>> = BinaryHeap::new();
        for node in 0..self.config.num_nodes {
            if !self.node_alive_at(node, stage_start) {
                continue;
            }
            for _ in 0..self.config.cores_per_node {
                slots.push(Reverse(Slot {
                    free_at: stage_start,
                    node,
                }));
            }
        }
        assert!(
            !slots.is_empty(),
            "no alive nodes remain in the simulated cluster"
        );

        let mut finish_times = vec![0.0f64; tasks.len()];
        let mut placements = vec![0usize; tasks.len()];
        let mut speculative = 0usize;
        let mut reruns = 0usize;

        // FIFO queue of task indices; failed executions get pushed back.
        let mut queue: std::collections::VecDeque<usize> = (0..tasks.len()).collect();

        while let Some(ti) = queue.pop_front() {
            let task = &tasks[ti];

            // Pop a free slot on a node that is still alive when it frees up.
            let slot = loop {
                let Reverse(slot) = slots.pop().expect("slot heap exhausted");
                if self.node_alive_at(slot.node, slot.free_at) {
                    break slot;
                }
                // Dead node: its slots are discarded. If the heap empties the
                // expect above fires, which would indicate total cluster loss.
            };

            let wave_jitter = if p.scheduling_wave_delay > 0.0 {
                self.rng.gen::<f64>() * p.scheduling_wave_delay
            } else {
                0.0
            };
            let overhead = p.task_launch_overhead + wave_jitter;
            let start = slot.free_at;
            let mut run = task.duration * slowdown[slot.node];

            // Speculative execution: a backup copy launched once the task has
            // run 1.5x the median caps the effective duration, assuming the
            // backup lands on a non-straggler (§2.3, §7).
            if p.speculative_execution && run > 1.5 * median && slowdown[slot.node] > 1.0 {
                let capped = 1.5 * median + p.task_launch_overhead + task.duration;
                if capped < run {
                    run = capped;
                    speculative += 1;
                    self.total_tasks_launched += 1;
                }
            }

            let finish = start + overhead + run;
            self.total_tasks_launched += 1;

            // Did the node die while the task was running?
            if let Some((_, ft)) = self
                .failure
                .failures()
                .iter()
                .find(|(n, ft)| *n == slot.node && *ft > start && *ft <= finish)
                .copied()
            {
                // The execution up to the failure is wasted; re-queue.
                reruns += 1;
                queue.push_back(ti);
                // The node's remaining slots will be skipped when popped; we
                // simply do not return this slot to the heap.
                let _ = ft;
                continue;
            }

            finish_times[ti] = finish;
            placements[ti] = slot.node;
            slots.push(Reverse(Slot {
                free_at: finish,
                node: slot.node,
            }));
        }

        let stage_end = finish_times.iter().fold(stage_start, |acc, &t| acc.max(t));
        self.clock = stage_end;

        let result = StageSimResult {
            duration: stage_end - stage_start,
            task_finish_times: finish_times,
            placements,
            speculative_copies: speculative,
            tasks_rerun: reruns,
        };
        record_stage_metrics(&result, tasks.len());
        result
    }

    /// Convenience: simulate a stage of `n` identical tasks of `duration`.
    pub fn simulate_uniform_stage(&mut self, n: usize, duration: f64) -> StageSimResult {
        let tasks: Vec<TaskSpec> = (0..n).map(|_| TaskSpec::new(duration)).collect();
        self.simulate_stage(&tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, EngineProfile};

    fn sim(nodes: usize, cores: usize) -> ClusterSim {
        ClusterSim::new(ClusterConfig::small(nodes, cores))
    }

    #[test]
    fn single_wave_runs_in_parallel() {
        let mut s = sim(4, 2);
        let r = s.simulate_uniform_stage(8, 10.0);
        // 8 tasks over 8 slots: one wave.
        assert!(r.duration >= 10.0 && r.duration < 10.5, "{}", r.duration);
        assert_eq!(r.task_finish_times.len(), 8);
    }

    #[test]
    fn multiple_waves_accumulate() {
        let mut s = sim(2, 2);
        let r = s.simulate_uniform_stage(8, 5.0);
        // 8 tasks over 4 slots: two waves.
        assert!(r.duration >= 10.0 && r.duration < 11.0, "{}", r.duration);
    }

    #[test]
    fn clock_advances_across_stages() {
        let mut s = sim(2, 2);
        s.simulate_uniform_stage(4, 5.0);
        let t1 = s.now();
        s.simulate_uniform_stage(4, 5.0);
        assert!(s.now() > t1);
        assert_eq!(s.stages_run(), 2);
        s.reset();
        assert_eq!(s.now(), 0.0);
    }

    #[test]
    fn hadoop_overhead_dominates_short_tasks() {
        let spark = ClusterConfig::small(10, 8);
        let hadoop = ClusterConfig::small(10, 8).with_profile(EngineProfile::hadoop());
        let mut ss = ClusterSim::new(spark);
        let mut hs = ClusterSim::new(hadoop);
        let r_spark = ss.simulate_uniform_stage(400, 0.1);
        let r_hadoop = hs.simulate_uniform_stage(400, 0.1);
        // 400 tasks of 100ms on 80 slots: Spark ~0.5s, Hadoop >25s.
        assert!(
            r_hadoop.duration > r_spark.duration * 20.0,
            "spark {} hadoop {}",
            r_spark.duration,
            r_hadoop.duration
        );
    }

    #[test]
    fn stragglers_hurt_without_speculation_but_not_with_it() {
        let mut base = ClusterConfig::small(20, 4);
        base.straggler_probability = 0.2;
        base.straggler_slowdown = 10.0;
        let mut no_spec = base.clone();
        no_spec.profile.speculative_execution = false;
        let mut with_spec = base;
        with_spec.profile.speculative_execution = true;

        let mut s1 = ClusterSim::new(no_spec);
        let mut s2 = ClusterSim::new(with_spec);
        let r1 = s1.simulate_uniform_stage(80, 10.0);
        let r2 = s2.simulate_uniform_stage(80, 10.0);
        assert!(
            r1.duration > r2.duration,
            "speculation should shorten the stage: {} vs {}",
            r1.duration,
            r2.duration
        );
        assert!(r2.speculative_copies > 0);
    }

    #[test]
    fn node_failure_causes_reruns_and_still_completes() {
        let mut cfg = ClusterConfig::small(5, 2);
        cfg.straggler_probability = 0.0;
        let mut s = ClusterSim::new(cfg);
        s.set_failure_plan(FailurePlan::single(0, 5.0));
        let r = s.simulate_uniform_stage(20, 10.0);
        assert!(r.tasks_rerun > 0, "tasks on node 0 should be re-run");
        assert_eq!(r.task_finish_times.len(), 20);
        // All tasks finished and none are placed on the dead node after its
        // failure time.
        for (i, &node) in r.placements.iter().enumerate() {
            if node == 0 {
                assert!(r.task_finish_times[i] <= 5.0);
            }
        }
        assert_eq!(s.alive_nodes().len(), 4);
    }

    #[test]
    fn empty_stage_is_free() {
        let mut s = sim(2, 2);
        let r = s.simulate_stage(&[]);
        assert_eq!(r.duration, 0.0);
        assert_eq!(s.now(), 0.0);
    }

    #[test]
    fn advance_moves_clock() {
        let mut s = sim(2, 2);
        s.advance(12.5);
        assert_eq!(s.now(), 12.5);
    }

    #[test]
    fn figure13_shape_many_small_tasks_fine_for_spark_bad_for_hadoop() {
        // The Figure 13 claim: Spark can launch thousands of reduce tasks
        // with little overhead, Hadoop cannot.
        let work = 4000.0; // total seconds of work to split
        let slots = 800;
        let durations = |n: usize| work / n as f64;

        let mut spark_times = vec![];
        let mut hadoop_times = vec![];
        for &n in &[50usize, 500, 5000] {
            // Disable stragglers so the test isolates pure launch overhead.
            let mut scfg = ClusterConfig::paper_shark_cluster();
            scfg.straggler_probability = 0.0;
            let mut hcfg = ClusterConfig::paper_hive_cluster();
            hcfg.straggler_probability = 0.0;
            let mut ssim = ClusterSim::new(scfg);
            let mut hsim = ClusterSim::new(hcfg);
            spark_times.push(ssim.simulate_uniform_stage(n, durations(n)).duration);
            hadoop_times.push(hsim.simulate_uniform_stage(n, durations(n)).duration);
        }
        let _ = slots;
        // For Hadoop, 5000 tasks is much slower than 500 (overhead dominates).
        assert!(hadoop_times[2] > hadoop_times[1] * 1.5);
        // For Spark, going from 500 to 5000 tasks changes little.
        assert!(spark_times[2] < spark_times[1] * 1.5);
    }
}
