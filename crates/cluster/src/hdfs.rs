//! A simple model of the replicated distributed file system (HDFS).
//!
//! Shark reads warehouse data through the Hadoop storage API and, in the
//! data-loading experiment (§6.2.4), compares the ingest throughput of HDFS
//! against its in-memory columnar store. This module models the aggregate
//! load/scan throughput of such a DFS: block-structured files, 3× replicated
//! writes bounded by disk and network bandwidth, and data-local reads.

use serde::{Deserialize, Serialize};

use crate::config::ClusterConfig;

/// Default HDFS block size (128 MB).
pub const DEFAULT_BLOCK_SIZE: u64 = 128 * 1024 * 1024;

/// A model of a replicated, block-structured distributed file system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DfsModel {
    /// Block size in bytes (determines the number of map tasks per file).
    pub block_size: u64,
    /// Replication factor for writes.
    pub replication: u32,
}

impl Default for DfsModel {
    fn default() -> Self {
        DfsModel {
            block_size: DEFAULT_BLOCK_SIZE,
            replication: 3,
        }
    }
}

impl DfsModel {
    /// Create a DFS model with explicit parameters.
    pub fn new(block_size: u64, replication: u32) -> DfsModel {
        assert!(block_size > 0, "block size must be positive");
        assert!(replication > 0, "replication must be positive");
        DfsModel {
            block_size,
            replication,
        }
    }

    /// Number of blocks (and therefore data-local map tasks) for a file of
    /// `bytes` bytes.
    pub fn num_blocks(&self, bytes: u64) -> usize {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.block_size) as usize
    }

    /// Simulated time to write `bytes` bytes into the DFS using every node in
    /// parallel. Each byte is written to the local disk plus `replication-1`
    /// remote copies which traverse both the network and remote disks.
    pub fn write_seconds(&self, cluster: &ClusterConfig, bytes: u64) -> f64 {
        let nodes = cluster.num_nodes.max(1) as f64;
        let per_node_bytes = bytes as f64 / nodes;
        let disk = per_node_bytes * self.replication as f64 / cluster.profile.disk_bw;
        let net = per_node_bytes * (self.replication.saturating_sub(1)) as f64
            / cluster.profile.network_bw;
        disk.max(net)
    }

    /// Simulated time to scan `bytes` bytes from the DFS with data-local
    /// tasks (bounded by aggregate disk bandwidth).
    pub fn read_seconds(&self, cluster: &ClusterConfig, bytes: u64) -> f64 {
        let nodes = cluster.num_nodes.max(1) as f64;
        (bytes as f64 / nodes) / cluster.profile.disk_bw
    }

    /// Aggregate write throughput in bytes/second.
    pub fn write_throughput(&self, cluster: &ClusterConfig, bytes: u64) -> f64 {
        let secs = self.write_seconds(cluster, bytes);
        if secs == 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / secs
        }
    }
}

/// Simulated time to load `bytes` bytes into the columnar memstore: each
/// node converts its share of the input to columnar format at CPU speed
/// (the paper reports memstore ingest ≈5× faster than HDFS ingest because no
/// replication or disk write is involved, §3.3/§6.2.4).
pub fn memstore_load_seconds(cluster: &ClusterConfig, bytes: u64, rows: u64) -> f64 {
    let nodes = cluster.num_nodes.max(1) as f64;
    let per_node_bytes = bytes as f64 / nodes;
    let per_node_rows = rows as f64 / nodes;
    // Parse/extract fields + build columnar representation, all in memory.
    let parse = per_node_bytes / cluster.profile.row_deserialize_bw;
    let build = per_node_rows * cluster.profile.cpu_per_row * 4.0
        + per_node_bytes / cluster.profile.memory_bw;
    parse + build
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    #[test]
    fn block_counts() {
        let dfs = DfsModel::default();
        assert_eq!(dfs.num_blocks(0), 0);
        assert_eq!(dfs.num_blocks(1), 1);
        assert_eq!(dfs.num_blocks(DEFAULT_BLOCK_SIZE), 1);
        assert_eq!(dfs.num_blocks(DEFAULT_BLOCK_SIZE + 1), 2);
        assert_eq!(dfs.num_blocks(10 * DEFAULT_BLOCK_SIZE), 10);
    }

    #[test]
    fn replication_slows_writes() {
        let cluster = ClusterConfig::paper_hive_cluster();
        let r1 = DfsModel::new(DEFAULT_BLOCK_SIZE, 1);
        let r3 = DfsModel::new(DEFAULT_BLOCK_SIZE, 3);
        let bytes = 1u64 << 40;
        assert!(r3.write_seconds(&cluster, bytes) > 2.0 * r1.write_seconds(&cluster, bytes));
    }

    #[test]
    fn memstore_ingest_is_faster_than_hdfs_ingest() {
        // §6.2.4: loading into the memstore was ~5x faster than into HDFS.
        let cluster = ClusterConfig::paper_shark_cluster();
        let dfs = DfsModel::default();
        let bytes = 2u64 << 40; // 2 TB uservisits table
        let rows = 15_500_000_000;
        let hdfs = dfs.write_seconds(&cluster, bytes);
        let mem = memstore_load_seconds(&cluster, bytes, rows);
        let ratio = hdfs / mem;
        assert!(
            ratio > 2.0 && ratio < 20.0,
            "expected memstore ingest a few times faster, ratio = {ratio}"
        );
    }

    #[test]
    fn throughput_is_inverse_of_time() {
        let cluster = ClusterConfig::paper_hive_cluster();
        let dfs = DfsModel::default();
        let bytes = 1u64 << 30;
        let t = dfs.write_seconds(&cluster, bytes);
        let thr = dfs.write_throughput(&cluster, bytes);
        assert!((thr * t - bytes as f64).abs() / (bytes as f64) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        DfsModel::new(0, 3);
    }
}
