//! Cluster and engine configuration.
//!
//! The two [`EngineProfile`] presets encode the cost-model differences
//! between the Spark-based Shark runtime and the Hadoop/Hive baseline that
//! the paper's Section 7 enumerates. All parameters are plain public fields
//! so experiments and ablation benches can tweak them individually.

use serde::{Deserialize, Serialize};

/// Which execution engine a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Spark-like engine: low task overhead, in-memory shuffle, general DAGs.
    Spark,
    /// Hadoop MapReduce-like engine: high task overhead, disk + DFS
    /// materialization, sort-based shuffle, two-stage topology only.
    Hadoop,
}

/// Cost-model parameters for one execution engine.
///
/// Durations are seconds, throughputs are bytes/second, and per-row CPU
/// costs are seconds/row. The defaults are calibrated against the paper's
/// reported numbers (§6, §7) for an `m2.4xlarge`-class node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Which engine family this profile models.
    pub kind: EngineKind,
    /// Human-readable name used in experiment output.
    pub name: String,
    /// Fixed overhead to launch one task (Spark ≈ 5 ms, Hadoop ≈ 5 s, §7).
    pub task_launch_overhead: f64,
    /// Additional per-scheduling-wave delay (Hadoop heartbeat ≈ 3 s, §7).
    pub scheduling_wave_delay: f64,
    /// Baseline CPU cost per input row (row pipeline bookkeeping).
    pub cpu_per_row: f64,
    /// CPU cost per expression operation per row. Hive interprets expression
    /// evaluators (§5 "bytecode compilation"), Shark runs compiled closures.
    pub cpu_per_expr_op: f64,
    /// Throughput of deserializing on-disk/text rows (≈200 MB/s/core, §3.2).
    pub row_deserialize_bw: f64,
    /// Throughput of scanning the columnar memstore (per core).
    pub columnar_scan_bw: f64,
    /// Memory bandwidth available to a core for shuffle-in-memory traffic.
    pub memory_bw: f64,
    /// Local disk bandwidth per node.
    pub disk_bw: f64,
    /// Network bandwidth per node.
    pub network_bw: f64,
    /// Whether map output is materialized to local disk before reduce
    /// (Hadoop) or kept in memory with optional spill (Shark, §5).
    pub shuffle_to_disk: bool,
    /// Whether the shuffle sorts map output (Hadoop) or hashes it (Spark, §7).
    pub sort_based_shuffle: bool,
    /// CPU cost per key comparison when sorting shuffle output.
    pub sort_cmp_cost: f64,
    /// Whether stage outputs are written to the replicated DFS between
    /// MapReduce jobs (Hive) or kept as in-memory RDDs (Shark, §7).
    pub materialize_stages_to_dfs: bool,
    /// DFS replication factor used when materializing stage output.
    pub dfs_replication: u32,
    /// Whether the scheduler launches speculative backup copies of slow
    /// tasks (§2.3 property 3).
    pub speculative_execution: bool,
}

impl EngineProfile {
    /// The Spark/Shark engine profile (§2.1, §5, §7).
    pub fn spark() -> EngineProfile {
        EngineProfile {
            kind: EngineKind::Spark,
            name: "shark".to_string(),
            task_launch_overhead: 0.005,
            scheduling_wave_delay: 0.0,
            cpu_per_row: 5.0e-8,
            cpu_per_expr_op: 1.5e-8,
            row_deserialize_bw: 200.0e6,
            columnar_scan_bw: 4.0e9,
            memory_bw: 2.0e9,
            disk_bw: 100.0e6,
            network_bw: 1.0e9,
            shuffle_to_disk: false,
            sort_based_shuffle: false,
            sort_cmp_cost: 2.0e-8,
            materialize_stages_to_dfs: false,
            dfs_replication: 3,
            speculative_execution: true,
        }
    }

    /// The Hadoop/Hive baseline profile (§6.1, §7).
    pub fn hadoop() -> EngineProfile {
        EngineProfile {
            kind: EngineKind::Hadoop,
            name: "hive".to_string(),
            task_launch_overhead: 5.0,
            scheduling_wave_delay: 3.0,
            cpu_per_row: 2.5e-7,
            cpu_per_expr_op: 1.0e-7,
            row_deserialize_bw: 200.0e6,
            // Hive has no columnar memstore; reads always pay deserialization.
            columnar_scan_bw: 200.0e6,
            memory_bw: 2.0e9,
            disk_bw: 100.0e6,
            network_bw: 1.0e9,
            shuffle_to_disk: true,
            sort_based_shuffle: true,
            sort_cmp_cost: 8.0e-8,
            materialize_stages_to_dfs: true,
            dfs_replication: 3,
            speculative_execution: false,
        }
    }

    /// Profile for Hadoop reading a compact binary format instead of text
    /// (the "Hadoop (binary)" series in Figures 11–12).
    pub fn hadoop_binary() -> EngineProfile {
        let mut p = EngineProfile::hadoop();
        p.name = "hadoop-binary".to_string();
        p.row_deserialize_bw = 600.0e6;
        p.cpu_per_row = 1.2e-7;
        p
    }
}

/// Size and topology of the simulated cluster plus its engine profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub num_nodes: usize,
    /// Cores (task slots) per node.
    pub cores_per_node: usize,
    /// Memory available for the memstore per node, in bytes.
    pub memory_per_node: u64,
    /// The engine cost profile.
    pub profile: EngineProfile,
    /// Probability that any given node is a straggler for a given stage.
    pub straggler_probability: f64,
    /// Slowdown factor applied to tasks on straggler nodes.
    pub straggler_slowdown: f64,
    /// Seed for the deterministic straggler/placement RNG.
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's main setup: 100 `m2.4xlarge` nodes with 8 cores and 68 GB
    /// each, running the Shark/Spark engine (§6.1).
    pub fn paper_shark_cluster() -> ClusterConfig {
        ClusterConfig {
            num_nodes: 100,
            cores_per_node: 8,
            memory_per_node: 68 * 1024 * 1024 * 1024,
            profile: EngineProfile::spark(),
            straggler_probability: 0.02,
            straggler_slowdown: 4.0,
            seed: 42,
        }
    }

    /// Same hardware, Hive/Hadoop engine.
    pub fn paper_hive_cluster() -> ClusterConfig {
        ClusterConfig {
            profile: EngineProfile::hadoop(),
            ..ClusterConfig::paper_shark_cluster()
        }
    }

    /// A small cluster suitable for unit tests.
    pub fn small(num_nodes: usize, cores_per_node: usize) -> ClusterConfig {
        ClusterConfig {
            num_nodes,
            cores_per_node,
            memory_per_node: 4 * 1024 * 1024 * 1024,
            profile: EngineProfile::spark(),
            straggler_probability: 0.0,
            straggler_slowdown: 1.0,
            seed: 7,
        }
    }

    /// Replace the engine profile, returning the modified config.
    pub fn with_profile(mut self, profile: EngineProfile) -> ClusterConfig {
        self.profile = profile;
        self
    }

    /// Total task slots in the cluster.
    pub fn total_slots(&self) -> usize {
        self.num_nodes * self.cores_per_node
    }

    /// Total memstore capacity of the cluster in bytes.
    pub fn total_memory(&self) -> u64 {
        self.memory_per_node * self.num_nodes as u64
    }

    /// Validate configuration invariants.
    pub fn validate(&self) -> shark_common::Result<()> {
        if self.num_nodes == 0 || self.cores_per_node == 0 {
            return Err(shark_common::SharkError::Config(
                "cluster must have at least one node and one core".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.straggler_probability) {
            return Err(shark_common::SharkError::Config(
                "straggler probability must be within [0, 1]".into(),
            ));
        }
        if self.straggler_slowdown < 1.0 {
            return Err(shark_common::SharkError::Config(
                "straggler slowdown must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_paper_parameters() {
        let spark = EngineProfile::spark();
        let hadoop = EngineProfile::hadoop();
        // Task launch overhead gap of ~1000x (5 ms vs 5 s, §7).
        assert!(hadoop.task_launch_overhead / spark.task_launch_overhead >= 500.0);
        assert!(!spark.shuffle_to_disk && hadoop.shuffle_to_disk);
        assert!(!spark.sort_based_shuffle && hadoop.sort_based_shuffle);
        assert!(!spark.materialize_stages_to_dfs && hadoop.materialize_stages_to_dfs);
        assert!(spark.speculative_execution && !hadoop.speculative_execution);
    }

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterConfig::paper_shark_cluster();
        assert_eq!(c.total_slots(), 800);
        assert_eq!(c.num_nodes, 100);
        assert!(c.validate().is_ok());
        assert_eq!(c.total_memory(), 100 * 68 * 1024 * 1024 * 1024);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ClusterConfig::small(0, 4);
        assert!(c.validate().is_err());
        c = ClusterConfig::small(4, 4);
        c.straggler_probability = 1.5;
        assert!(c.validate().is_err());
        c.straggler_probability = 0.1;
        c.straggler_slowdown = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hadoop_binary_is_faster_to_deserialize_than_text() {
        assert!(
            EngineProfile::hadoop_binary().row_deserialize_bw
                > EngineProfile::hadoop().row_deserialize_bw
        );
    }
}
