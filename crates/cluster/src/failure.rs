//! Failure injection plans.
//!
//! The fault-tolerance experiment (Figure 9) kills one worker while a query
//! is running and measures how quickly Shark reconstructs the lost cached
//! partitions through lineage. [`FailurePlan`] describes *when* and *which*
//! node dies; the RDD scheduler consults it to decide which cached
//! partitions disappear and the cluster simulator uses it to re-run tasks
//! that were in flight on the failed node.

use serde::{Deserialize, Serialize};

/// A plan describing worker-node failures to inject during a job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailurePlan {
    /// `(node_id, time_seconds_since_job_start)` pairs.
    failures: Vec<(usize, f64)>,
}

impl FailurePlan {
    /// A plan with no failures.
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// Fail a single node at the given simulated time (seconds into the job).
    pub fn single(node: usize, at: f64) -> FailurePlan {
        FailurePlan {
            failures: vec![(node, at)],
        }
    }

    /// Add another failure to the plan.
    pub fn and_then(mut self, node: usize, at: f64) -> FailurePlan {
        self.failures.push((node, at));
        self
    }

    /// All planned failures, sorted by time.
    pub fn failures(&self) -> Vec<(usize, f64)> {
        let mut f = self.failures.clone();
        f.sort_by(|a, b| a.1.total_cmp(&b.1));
        f
    }

    /// Whether the plan contains any failure.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// Nodes that have failed at or before `time`.
    pub fn failed_nodes_by(&self, time: f64) -> Vec<usize> {
        self.failures
            .iter()
            .filter(|(_, t)| *t <= time)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Whether `node` has failed at or before `time`.
    pub fn is_failed(&self, node: usize, time: f64) -> bool {
        self.failures.iter().any(|(n, t)| *n == node && *t <= time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let p = FailurePlan::none();
        assert!(p.is_empty());
        assert!(!p.is_failed(0, 1e9));
        assert!(p.failed_nodes_by(1e9).is_empty());
    }

    #[test]
    fn single_failure_fires_after_its_time() {
        let p = FailurePlan::single(3, 10.0);
        assert!(!p.is_failed(3, 9.9));
        assert!(p.is_failed(3, 10.0));
        assert!(!p.is_failed(4, 20.0));
    }

    #[test]
    fn failures_sorted_by_time() {
        let p = FailurePlan::single(1, 20.0).and_then(2, 5.0);
        let f = p.failures();
        assert_eq!(f[0], (2, 5.0));
        assert_eq!(f[1], (1, 20.0));
        assert_eq!(p.failed_nodes_by(6.0), vec![2]);
    }
}
