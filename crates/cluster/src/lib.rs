//! # shark-cluster
//!
//! A discrete-event **cluster simulator** standing in for the 100-node EC2
//! cluster used in the Shark paper (SIGMOD 2013, §6.1).
//!
//! Every query in this repository executes *for real*, in-process, over
//! scaled-down data; this crate supplies the *timing* substrate that scales
//! those executions back up to cluster size. It models exactly the engine
//! properties the paper identifies as decisive (§7):
//!
//! * task launch overhead (≈5 ms for Spark vs. ≈5 s for Hadoop),
//! * memory- vs. disk-materialized shuffle, hash- vs. sort-based shuffle,
//! * inter-stage materialization to a replicated DFS (Hive) vs. in-memory
//!   RDDs (Shark),
//! * columnar in-memory scans vs. 200 MB/s/core row deserialization,
//! * stragglers, speculative execution and node failures.
//!
//! The public surface is three layers:
//!
//! * [`EngineProfile`] / [`ClusterConfig`] — the cost-model parameters,
//!   with [`EngineProfile::spark`] and [`EngineProfile::hadoop`] presets.
//! * [`CostModel`] — converts per-task row/byte counts measured during the
//!   real execution into simulated task durations.
//! * [`ClusterSim`] — an event-driven scheduler that places tasks on
//!   `nodes × cores` slots, applies launch overheads, stragglers,
//!   speculative back-ups and node failures, and reports per-stage and
//!   per-job simulated wall-clock times.

pub mod config;
pub mod cost;
pub mod failure;
pub mod hdfs;
pub mod sim;

pub use config::{ClusterConfig, EngineKind, EngineProfile};
pub use cost::{CostModel, InputSource, OutputSink, TaskCostInput};
pub use failure::FailurePlan;
pub use hdfs::DfsModel;
pub use sim::{ClusterSim, StageSimResult, TaskSpec};
