//! Span-based query tracer with a bounded flight-recorder ring buffer.
//!
//! A *trace* is one query's tree of *spans* (plan, optimize, stage launch,
//! per-partition operator executions, stream deliveries, …). Spans are
//! created scoped on the current thread and parent themselves under the
//! innermost open span; completed spans are written into a fixed-size ring
//! of records that tests and `EXPLAIN ANALYZE` read back by trace id.
//!
//! Overhead discipline: when tracing is off, [`active`] is a single
//! relaxed atomic load and [`span`] returns `None` without allocating.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

/// Default flight-recorder capacity (records) when `SHARK_TRACE_RING` is
/// not set.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A completed span, as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span (process-wide).
    pub span_id: u64,
    /// Parent span id; `0` for trace roots.
    pub parent_id: u64,
    /// Operator / phase name (e.g. `plan`, `memstore_scan(lineitem)`).
    pub name: String,
    /// Start time in microseconds since the tracer was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Rows produced by the span (0 when not applicable).
    pub rows: u64,
    /// Bytes read or produced by the span (0 when not applicable).
    pub bytes: u64,
    /// Partition index for per-partition spans.
    pub partition: Option<usize>,
    /// Free-form key/value annotations (cache hits, rebuilds, evictions…).
    pub annotations: Vec<(String, String)>,
}

/// Portable handle to a live trace: enough to parent new spans from any
/// thread. Capture with [`current`], adopt with [`TraceContext::attach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace id spans will be recorded under.
    pub trace_id: u64,
    /// The span that adopted children will parent under.
    pub span_id: u64,
}

struct Frame {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    /// `None` for context-only frames pushed by [`TraceContext::attach`];
    /// those are popped without emitting a record.
    name: Option<String>,
    start: Instant,
    start_us: u64,
    rows: u64,
    bytes: u64,
    partition: Option<usize>,
    annotations: Vec<(String, String)>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Fixed-capacity ring of completed span records. Slot claims are a single
/// `fetch_add`; each slot is individually locked so writes stay in safe
/// Rust while concurrent recorders never contend on a shared lock.
struct Ring {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    head: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(16);
        let slots: Vec<Mutex<Option<SpanRecord>>> =
            (0..capacity).map(|_| Mutex::new(None)).collect();
        Ring {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
        }
    }

    fn push(&self, record: SpanRecord) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[idx].lock() = Some(record);
    }

    fn snapshot(&self) -> Vec<SpanRecord> {
        self.slots
            .iter()
            .filter_map(|slot| slot.lock().clone())
            .collect()
    }

    fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.lock() = None;
        }
    }
}

/// The process-wide tracer: enable flag, id allocator, span accounting and
/// the flight-recorder ring.
pub struct Tracer {
    enabled: AtomicBool,
    /// Scoped interest count (e.g. a running `EXPLAIN ANALYZE`); tracing
    /// records while either this is non-zero or `enabled` is set.
    interest: AtomicUsize,
    /// Spans started but not yet recorded — zero once all spans closed.
    open_spans: AtomicI64,
    next_id: AtomicU64,
    epoch: Instant,
    ring: Ring,
}

impl Tracer {
    fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            interest: AtomicUsize::new(0),
            open_spans: AtomicI64::new(0),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            ring: Ring::new(capacity),
        }
    }

    /// Globally enable or disable trace recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether any recording interest exists (global flag or scoped).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) || self.interest.load(Ordering::Relaxed) != 0
    }

    /// Register scoped interest in tracing (used by `EXPLAIN ANALYZE`):
    /// recording stays on until the returned guard drops, independent of
    /// the global flag.
    pub fn subscribe(&'static self) -> InterestGuard {
        self.interest.fetch_add(1, Ordering::Relaxed);
        InterestGuard { tracer: self }
    }

    /// Flight-recorder capacity in records.
    pub fn ring_capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// Number of spans currently open (started but not recorded). Zero
    /// when every span of every finished trace closed properly.
    pub fn open_spans(&self) -> i64 {
        self.open_spans.load(Ordering::Relaxed)
    }

    /// All records currently in the ring for the given trace, ordered by
    /// start time.
    pub fn records_for(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut records: Vec<SpanRecord> = self
            .ring
            .snapshot()
            .into_iter()
            .filter(|r| r.trace_id == trace_id)
            .collect();
        records.sort_by_key(|r| (r.start_us, r.span_id));
        records
    }

    /// All records currently in the ring, ordered by start time.
    pub fn all_records(&self) -> Vec<SpanRecord> {
        let mut records = self.ring.snapshot();
        records.sort_by_key(|r| (r.start_us, r.span_id));
        records
    }

    /// Drop all recorded spans (tests).
    pub fn clear(&self) {
        self.ring.clear();
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn record(&self, record: SpanRecord) {
        self.ring.push(record);
        self.open_spans.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Keeps tracing recording while alive; see [`Tracer::subscribe`].
pub struct InterestGuard {
    tracer: &'static Tracer,
}

impl Drop for InterestGuard {
    fn drop(&mut self) {
        self.tracer.interest.fetch_sub(1, Ordering::Relaxed);
    }
}

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-wide tracer. Ring capacity comes from `SHARK_TRACE_RING`
/// on first use (default [`DEFAULT_RING_CAPACITY`]).
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| {
        let capacity = std::env::var("SHARK_TRACE_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_RING_CAPACITY);
        Tracer::with_capacity(capacity)
    })
}

/// Whether trace recording is currently on. The fast path every
/// instrumentation site checks first: two relaxed atomic loads, no
/// allocation.
#[inline]
pub fn active() -> bool {
    tracer().is_enabled()
}

/// Start a new trace: a root span recorded on the global tracer, returned
/// as a detached handle that may be held across threads and finished
/// explicitly (or on drop).
pub fn start_trace(name: &str) -> DetachedSpan {
    let t = tracer();
    let trace_id = t.next_id.fetch_add(1, Ordering::Relaxed);
    let span_id = t.next_id.fetch_add(1, Ordering::Relaxed);
    t.open_spans.fetch_add(1, Ordering::Relaxed);
    DetachedSpan {
        trace_id,
        span_id,
        parent_id: 0,
        name: name.to_string(),
        start: Instant::now(),
        start_us: t.now_us(),
        rows: 0,
        bytes: 0,
        annotations: Vec::new(),
        finished: false,
    }
}

/// The innermost open trace context on this thread, if any.
pub fn current() -> Option<TraceContext> {
    STACK.with(|stack| {
        stack.borrow().last().map(|f| TraceContext {
            trace_id: f.trace_id,
            span_id: f.span_id,
        })
    })
}

/// Open a scoped span under the current thread's innermost context.
/// Returns `None` (and does nothing) when tracing is off or no trace
/// context is installed on this thread.
pub fn span(name: &str) -> Option<SpanHandle> {
    if !active() {
        return None;
    }
    let t = tracer();
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last()?;
        let frame = Frame {
            trace_id: parent.trace_id,
            span_id: t.next_span_id(),
            parent_id: parent.span_id,
            name: Some(name.to_string()),
            start: Instant::now(),
            start_us: t.now_us(),
            rows: 0,
            bytes: 0,
            partition: None,
            annotations: Vec::new(),
        };
        let span_id = frame.span_id;
        t.open_spans.fetch_add(1, Ordering::Relaxed);
        stack.push(frame);
        Some(SpanHandle { span_id })
    })
}

/// Record an instant (zero-duration) event span under the current context.
/// No-op when tracing is off or no context is installed.
pub fn event(name: &str, annotations: &[(&str, &str)]) {
    if !active() {
        return;
    }
    let Some(ctx) = current() else { return };
    let t = tracer();
    let now = t.now_us();
    t.open_spans.fetch_add(1, Ordering::Relaxed);
    t.record(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: t.next_span_id(),
        parent_id: ctx.span_id,
        name: name.to_string(),
        start_us: now,
        duration_us: 0,
        rows: 0,
        bytes: 0,
        partition: None,
        annotations: annotations
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    });
}

/// Attach a key/value annotation to the innermost open span on this
/// thread (e.g. `cache=hit` from inside a scan). No-op without a span.
pub fn annotate(key: &str, value: &str) {
    if !active() {
        return;
    }
    STACK.with(|stack| {
        if let Some(frame) = stack.borrow_mut().last_mut() {
            if frame.name.is_some() {
                frame.annotations.push((key.to_string(), value.to_string()));
            }
        }
    });
}

/// Add produced rows to the innermost open span on this thread.
pub fn add_rows(rows: u64) {
    if !active() {
        return;
    }
    STACK.with(|stack| {
        if let Some(frame) = stack.borrow_mut().last_mut() {
            frame.rows += rows;
        }
    });
}

/// Add read/produced bytes to the innermost open span on this thread.
pub fn add_bytes(bytes: u64) {
    if !active() {
        return;
    }
    STACK.with(|stack| {
        if let Some(frame) = stack.borrow_mut().last_mut() {
            frame.bytes += bytes;
        }
    });
}

/// Guard for a scoped span; records the span when dropped.
pub struct SpanHandle {
    span_id: u64,
}

impl SpanHandle {
    /// Set the rows produced by this span.
    pub fn set_rows(&self, rows: u64) {
        self.with_frame(|f| f.rows = rows);
    }

    /// Set the bytes read/produced by this span.
    pub fn set_bytes(&self, bytes: u64) {
        self.with_frame(|f| f.bytes = bytes);
    }

    /// Tag this span with a partition index.
    pub fn set_partition(&self, partition: usize) {
        self.with_frame(|f| f.partition = Some(partition));
    }

    /// Attach a key/value annotation to this span.
    pub fn annotate(&self, key: &str, value: &str) {
        self.with_frame(|f| f.annotations.push((key.to_string(), value.to_string())));
    }

    fn with_frame(&self, apply: impl FnOnce(&mut Frame)) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(frame) = stack.iter_mut().rev().find(|f| f.span_id == self.span_id) {
                apply(frame);
            }
        });
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        let t = tracer();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are scoped, so ours is the top frame; pop defensively
            // down to it in case an inner guard leaked.
            while let Some(frame) = stack.pop() {
                let is_ours = frame.span_id == self.span_id;
                if let Some(name) = frame.name {
                    t.record(SpanRecord {
                        trace_id: frame.trace_id,
                        span_id: frame.span_id,
                        parent_id: frame.parent_id,
                        name,
                        start_us: frame.start_us,
                        duration_us: frame.start.elapsed().as_micros() as u64,
                        rows: frame.rows,
                        bytes: frame.bytes,
                        partition: frame.partition,
                        annotations: frame.annotations,
                    });
                }
                if is_ours {
                    break;
                }
            }
        });
    }
}

impl TraceContext {
    /// Install this context on the current thread so [`span`] calls parent
    /// under it. Used by worker threads adopting the query's trace.
    pub fn attach(&self) -> AttachGuard {
        STACK.with(|stack| {
            stack.borrow_mut().push(Frame {
                trace_id: self.trace_id,
                span_id: self.span_id,
                parent_id: 0,
                name: None,
                start: Instant::now(),
                start_us: 0,
                rows: 0,
                bytes: 0,
                partition: None,
                annotations: Vec::new(),
            });
        });
        AttachGuard {
            span_id: self.span_id,
        }
    }
}

/// Guard for an attached [`TraceContext`]; detaches when dropped.
pub struct AttachGuard {
    span_id: u64,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop the context-only frame (and defensively anything a leaked
            // inner guard left above it — those frames record nothing here
            // because well-nested SpanHandles have already popped theirs).
            while let Some(frame) = stack.pop() {
                if frame.name.is_none() && frame.span_id == self.span_id {
                    break;
                }
            }
        });
    }
}

/// A span that is not tied to a thread-local scope: held in structs (query
/// cursors, root query spans) and finished explicitly or on drop.
pub struct DetachedSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: String,
    start: Instant,
    start_us: u64,
    rows: u64,
    bytes: u64,
    annotations: Vec<(String, String)>,
    finished: bool,
}

impl DetachedSpan {
    /// The context under which children of this span should record.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        }
    }

    /// The trace id this span roots or belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Open a detached child span of this one.
    pub fn child(&self, name: &str) -> DetachedSpan {
        let t = tracer();
        t.open_spans.fetch_add(1, Ordering::Relaxed);
        DetachedSpan {
            trace_id: self.trace_id,
            span_id: t.next_span_id(),
            parent_id: self.span_id,
            name: name.to_string(),
            start: Instant::now(),
            start_us: t.now_us(),
            rows: 0,
            bytes: 0,
            annotations: Vec::new(),
            finished: false,
        }
    }

    /// Attach a key/value annotation.
    pub fn annotate(&mut self, key: &str, value: &str) {
        self.annotations.push((key.to_string(), value.to_string()));
    }

    /// Add produced rows.
    pub fn add_rows(&mut self, rows: u64) {
        self.rows += rows;
    }

    /// Add read/produced bytes.
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Close the span and write its record to the flight recorder.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        tracer().record(SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            duration_us: self.start.elapsed().as_micros() as u64,
            rows: self.rows,
            bytes: self.bytes,
            partition: None,
            annotations: std::mem::take(&mut self.annotations),
        });
    }
}

impl Drop for DetachedSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global enabled flag.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn spans_nest_and_record() {
        let _l = TEST_LOCK.lock();
        let t = tracer();
        t.set_enabled(true);
        let root = start_trace("query");
        let trace_id = root.trace_id();
        {
            let _attach = root.context().attach();
            let s = span("plan").expect("tracing on");
            s.set_rows(3);
            s.annotate("mode", "shark");
            drop(s);
            {
                let outer = span("execute").unwrap();
                outer.set_partition(2);
                let inner = span("scan").unwrap();
                inner.set_bytes(128);
                drop(inner);
                drop(outer);
            }
        }
        root.finish();
        let records = t.records_for(trace_id);
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].name, "query");
        assert_eq!(records[0].parent_id, 0);
        let plan = records.iter().find(|r| r.name == "plan").unwrap();
        assert_eq!(plan.parent_id, records[0].span_id);
        assert_eq!(plan.rows, 3);
        assert_eq!(plan.annotations, vec![("mode".into(), "shark".into())]);
        let execute = records.iter().find(|r| r.name == "execute").unwrap();
        assert_eq!(execute.partition, Some(2));
        let scan = records.iter().find(|r| r.name == "scan").unwrap();
        assert_eq!(scan.parent_id, execute.span_id);
        assert_eq!(scan.bytes, 128);
        // Every parent id points inside the trace.
        for r in &records {
            assert!(r.parent_id == 0 || records.iter().any(|p| p.span_id == r.parent_id));
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = TEST_LOCK.lock();
        let t = tracer();
        t.set_enabled(false);
        assert!(!t.is_enabled());
        assert!(span("nope").is_none());
        event("nope", &[]);
        annotate("k", "v");
        assert!(current().is_none());
        t.set_enabled(true);
    }

    #[test]
    fn context_attach_crosses_threads() {
        let _l = TEST_LOCK.lock();
        let t = tracer();
        t.set_enabled(true);
        let root = start_trace("xthread");
        let trace_id = root.trace_id();
        let ctx = root.context();
        let handle = std::thread::spawn(move || {
            let _g = ctx.attach();
            let s = span("worker").unwrap();
            s.set_rows(7);
        });
        handle.join().unwrap();
        root.finish();
        let records = t.records_for(trace_id);
        let worker = records.iter().find(|r| r.name == "worker").unwrap();
        assert_eq!(worker.rows, 7);
        assert_eq!(worker.parent_id, ctx.span_id);
    }

    #[test]
    fn events_and_open_span_accounting() {
        let _l = TEST_LOCK.lock();
        let t = tracer();
        t.set_enabled(true);
        let before_open = t.open_spans();
        let root = start_trace("evt");
        let trace_id = root.trace_id();
        {
            let _attach = root.context().attach();
            event("cache-evict", &[("table", "lineitem"), ("bytes", "42")]);
        }
        root.finish();
        assert_eq!(t.open_spans(), before_open);
        let records = t.records_for(trace_id);
        let evt = records.iter().find(|r| r.name == "cache-evict").unwrap();
        assert_eq!(evt.duration_us, 0);
        assert_eq!(evt.annotations[0], ("table".into(), "lineitem".into()));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = Ring::new(16);
        for i in 0..40u64 {
            ring.push(SpanRecord {
                trace_id: 1,
                span_id: i,
                parent_id: 0,
                name: "t".into(),
                start_us: i,
                duration_us: 0,
                rows: 0,
                bytes: 0,
                partition: None,
                annotations: Vec::new(),
            });
        }
        let records = ring.snapshot();
        assert_eq!(records.len(), 16);
        // The survivors are the most recent 16.
        assert!(records.iter().all(|r| r.span_id >= 24));
    }

    #[test]
    fn scoped_interest_enables_recording() {
        let _l = TEST_LOCK.lock();
        let t = tracer();
        t.set_enabled(false);
        let guard = t.subscribe();
        assert!(t.is_enabled());
        drop(guard);
        assert!(!t.is_enabled());
        t.set_enabled(true);
    }
}
