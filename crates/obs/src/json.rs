//! Minimal JSON writer.
//!
//! The workspace's vendored `serde` is a no-op marker-trait stub, so
//! machine-readable output (e.g. `ServerReport::to_json`) is produced with
//! this small builder instead of derive-based serialization.

/// Streaming JSON builder producing a compact (single-line) document.
///
/// ```
/// use shark_obs::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_u64("total", 3);
/// w.field_str("name", "lineitem");
/// w.begin_array_field("sessions");
/// w.begin_object();
/// w.field_bool("streamed", true);
/// w.end_object();
/// w.end_array();
/// w.end_object();
/// assert_eq!(
///     w.finish(),
///     r#"{"total":3,"name":"lineitem","sessions":[{"streamed":true}]}"#
/// );
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Per-open-container flag: does the next element need a comma?
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Create an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Consume the writer and return the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn elem(&mut self) {
        if let Some(needs) = self.needs_comma.last_mut() {
            if *needs {
                self.out.push(',');
            }
            *needs = true;
        }
    }

    /// Open a `{` object (as a value or array element).
    pub fn begin_object(&mut self) {
        self.elem();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Close the current object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Open a `[` array under the given key.
    pub fn begin_array_field(&mut self, key: &str) {
        self.key(key);
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Close the current array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    fn key(&mut self, key: &str) {
        // `elem` both inserts the separating comma and arms the flag for
        // the next element; the value that follows is written directly.
        self.elem();
        self.out.push('"');
        self.out.push_str(&escape(key));
        self.out.push_str("\":");
    }

    /// Write `"key":<u64>`.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Write `"key":<i64>`.
    pub fn field_i64(&mut self, key: &str, value: i64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Write `"key":<f64>` (non-finite values become `null`).
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.out.push_str(&format!("{value}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Write `"key":"value"` with escaping.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// Write `"key":true|false`.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Open a `{` object under the given key.
    pub fn begin_object_field(&mut self, key: &str) {
        self.key(key);
        self.out.push('{');
        self.needs_comma.push(false);
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_objects_and_arrays() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("a", 1);
        w.begin_object_field("inner");
        w.field_str("s", "x\"y\\z\n");
        w.field_f64("f", 1.5);
        w.field_f64("nan", f64::NAN);
        w.end_object();
        w.begin_array_field("arr");
        w.begin_object();
        w.field_bool("b", false);
        w.end_object();
        w.begin_object();
        w.field_i64("n", -2);
        w.end_object();
        w.end_array();
        w.field_u64("tail", 9);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"a":1,"inner":{"s":"x\"y\\z\n","f":1.5,"nan":null},"arr":[{"b":false},{"n":-2}],"tail":9}"#
        );
    }
}
