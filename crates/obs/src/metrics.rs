//! Unified metrics registry: counters, gauges and histograms with
//! explicit buckets, rendered in Prometheus text format and exposed as a
//! structured snapshot for tests.
//!
//! Metric handles are `Arc`-shared atomics — registration takes a lock,
//! but updating a registered handle is a single atomic op, so hot paths
//! register once (or look up once per query) and then update lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

/// Histogram bucket upper bounds (seconds) for latency-style metrics.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Histogram bucket upper bounds (seconds) for local-I/O-style metrics:
/// spill reads and writes complete in microseconds to low milliseconds, so
/// the latency buckets start an order of magnitude below
/// [`LATENCY_BUCKETS`] to keep the distribution visible.
pub const IO_BUCKETS: &[f64] = &[
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 1.0,
];

/// Histogram bucket upper bounds (bytes) for size-style metrics.
pub const BYTES_BUCKETS: &[f64] = &[
    1024.0,
    16.0 * 1024.0,
    256.0 * 1024.0,
    1024.0 * 1024.0,
    16.0 * 1024.0 * 1024.0,
    256.0 * 1024.0 * 1024.0,
    1024.0 * 1024.0 * 1024.0,
    16.0 * 1024.0 * 1024.0 * 1024.0,
];

/// Histogram bucket upper bounds (bytes) for wire-protocol frame sizes:
/// most frames are a handful of bytes (handshakes, acks) up to a few
/// megabytes (result batches), so the buckets start two orders of
/// magnitude below [`BYTES_BUCKETS`] and stop at the 16 MiB frame cap.
pub const WIRE_BUCKETS: &[f64] = &[
    16.0,
    64.0,
    256.0,
    1024.0,
    4.0 * 1024.0,
    16.0 * 1024.0,
    64.0 * 1024.0,
    256.0 * 1024.0,
    1024.0 * 1024.0,
    4.0 * 1024.0 * 1024.0,
    16.0 * 1024.0 * 1024.0,
];

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram with explicit upper-bound buckets plus an implicit `+Inf`.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the `+Inf` overflow bucket at the end.
    counts: Box<[AtomicU64]>,
    /// Sum of observations, stored as f64 bit pattern (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        let counts: Vec<AtomicU64> = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            counts: counts.into_boxed_slice(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(self.bounds.len());
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            buckets.push((*bound, cumulative));
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time view of one histogram: cumulative bucket counts
/// (Prometheus semantics), total count and sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)` pairs, excluding `+Inf`.
    pub buckets: Vec<(f64, u64)>,
    /// Total number of observations (the `+Inf` cumulative count).
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Point-in-time view of every registered metric, keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 when the counter was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, or 0 when the gauge was never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

/// Unified registry of named metrics. Get-or-register semantics: asking
/// for an existing name returns the same underlying handle.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, (String, Metric)>>,
}

impl MetricsRegistry {
    /// Create an empty registry (tests; production uses [`metrics`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register a counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock();
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            (
                help.to_string(),
                Metric::Counter(Arc::new(Counter::default())),
            )
        });
        match &entry.1 {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register a gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock();
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Gauge(Arc::new(Gauge::default()))));
        match &entry.1 {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register a histogram with the given bucket upper bounds
    /// (see [`LATENCY_BUCKETS`] / [`BYTES_BUCKETS`]).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock();
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            (
                help.to_string(),
                Metric::Histogram(Arc::new(Histogram::new(bounds))),
            )
        });
        match &entry.1 {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Structured point-in-time view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, (_, metric)) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` plus samples; histograms expand into
    /// `_bucket{le=…}` / `_sum` / `_count` series).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let metrics = self.metrics.lock();
        let mut out = String::new();
        for (name, (help, metric)) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# HELP {name} {help}");
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let snap = h.snapshot();
                    for (bound, cumulative) in &snap.buckets {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }
}

static METRICS: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide unified metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    METRICS.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shark_queries_total", "Total queries");
        c.inc();
        c.add(2);
        // Get-or-register returns the same handle.
        assert_eq!(reg.counter("shark_queries_total", "x").get(), 3);
        let g = reg.gauge("shark_memstore_bytes", "Resident bytes");
        g.set(100);
        g.add(-40);
        assert_eq!(g.get(), 60);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("shark_queries_total"), 3);
        assert_eq!(snap.gauge("shark_memstore_bytes"), 60);
        assert_eq!(snap.counter("never_registered"), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "Latency", &[0.01, 0.1, 1.0]);
        for v in [0.005, 0.05, 0.05, 0.5, 5.0] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.buckets, vec![(0.01, 1), (0.1, 3), (1.0, 4)]);
        assert_eq!(hs.count, 5);
        assert!((hs.sum - 5.605).abs() < 1e-9);
    }

    #[test]
    fn prometheus_text_format() {
        let reg = MetricsRegistry::new();
        reg.counter("shark_queries_total", "Total queries").add(7);
        reg.gauge("shark_live_sessions", "Open sessions").set(2);
        let h = reg.histogram("shark_exec_seconds", "Exec latency", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE shark_queries_total counter"));
        assert!(text.contains("shark_queries_total 7"));
        assert!(text.contains("# TYPE shark_live_sessions gauge"));
        assert!(text.contains("shark_live_sessions 2"));
        assert!(text.contains("# TYPE shark_exec_seconds histogram"));
        assert!(text.contains("shark_exec_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("shark_exec_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("shark_exec_seconds_count 2"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "help");
        reg.gauge("m", "help");
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c", "h");
        let h = reg.histogram("h", "h", LATENCY_BUCKETS);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.002);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 8.0).abs() < 1e-6);
    }
}
