//! # shark-obs
//!
//! The observability layer of the Shark reproduction: a lightweight
//! span-based **query tracer** with a bounded flight-recorder ring buffer,
//! and a **unified metrics registry** (counters / gauges / histograms) that
//! renders in Prometheus text format.
//!
//! The tracer is designed for negligible overhead when disabled: every
//! instrumentation site first checks one relaxed atomic load
//! ([`active`]) and allocates nothing unless a trace is actually being
//! recorded on the current thread. Span context propagates through a
//! thread-local stack; worker threads adopt a parent context explicitly
//! via [`TraceContext::attach`].
//!
//! Completed spans land in a fixed-capacity ring buffer (the *flight
//! recorder*), sized by the `SHARK_TRACE_RING` environment variable
//! (default 4096 records); old records are overwritten, never reallocated.

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::JsonWriter;
pub use metrics::{
    metrics, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    BYTES_BUCKETS, IO_BUCKETS, LATENCY_BUCKETS, WIRE_BUCKETS,
};
pub use trace::{
    active, add_bytes, add_rows, annotate, current, event, span, start_trace, tracer, AttachGuard,
    DetachedSpan, InterestGuard, SpanHandle, SpanRecord, TraceContext, Tracer,
};
