//! In-memory size estimation.
//!
//! The simulated cluster's cost model charges I/O and network transfer by
//! byte counts. [`EstimateSize`] lets the RDD layer and shuffle manager
//! estimate the serialized footprint of arbitrary task outputs without
//! actually serializing them. The numbers intentionally mirror what a
//! compact, non-JVM serialization of the value would occupy, matching the
//! "serialized representation" baseline in §3.2 of the paper (the JVM object
//! overhead comparison is modelled separately in `shark-columnar`).

use std::sync::Arc;

use crate::row::Row;
use crate::value::Value;

/// Types whose approximate serialized size (in bytes) can be estimated cheaply.
pub trait EstimateSize {
    /// Approximate serialized size of `self` in bytes.
    fn estimated_size(&self) -> usize;
}

impl EstimateSize for Value {
    fn estimated_size(&self) -> usize {
        // one tag byte plus the payload
        1 + match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Date(_) => 4,
            Value::Str(s) => 4 + s.len(),
        }
    }
}

impl EstimateSize for Row {
    fn estimated_size(&self) -> usize {
        4 + self
            .values()
            .iter()
            .map(Value::estimated_size)
            .sum::<usize>()
    }
}

impl EstimateSize for i64 {
    fn estimated_size(&self) -> usize {
        8
    }
}

impl EstimateSize for u64 {
    fn estimated_size(&self) -> usize {
        8
    }
}

impl EstimateSize for i32 {
    fn estimated_size(&self) -> usize {
        4
    }
}

impl EstimateSize for f64 {
    fn estimated_size(&self) -> usize {
        8
    }
}

impl EstimateSize for bool {
    fn estimated_size(&self) -> usize {
        1
    }
}

impl EstimateSize for usize {
    fn estimated_size(&self) -> usize {
        8
    }
}

impl EstimateSize for String {
    fn estimated_size(&self) -> usize {
        4 + self.len()
    }
}

impl EstimateSize for Arc<str> {
    fn estimated_size(&self) -> usize {
        4 + self.len()
    }
}

impl EstimateSize for () {
    fn estimated_size(&self) -> usize {
        0
    }
}

impl<T: EstimateSize> EstimateSize for Option<T> {
    fn estimated_size(&self) -> usize {
        1 + self.as_ref().map(|v| v.estimated_size()).unwrap_or(0)
    }
}

impl<T: EstimateSize> EstimateSize for Vec<T> {
    fn estimated_size(&self) -> usize {
        4 + self.iter().map(|v| v.estimated_size()).sum::<usize>()
    }
}

impl<A: EstimateSize, B: EstimateSize> EstimateSize for (A, B) {
    fn estimated_size(&self) -> usize {
        self.0.estimated_size() + self.1.estimated_size()
    }
}

impl<A: EstimateSize, B: EstimateSize, C: EstimateSize> EstimateSize for (A, B, C) {
    fn estimated_size(&self) -> usize {
        self.0.estimated_size() + self.1.estimated_size() + self.2.estimated_size()
    }
}

/// Estimate the total size of a slice of estimable items.
pub fn estimate_slice<T: EstimateSize>(items: &[T]) -> usize {
    items.iter().map(|v| v.estimated_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Value::Int(1).estimated_size(), 9);
        assert_eq!(Value::Null.estimated_size(), 1);
        assert_eq!(Value::str("abcd").estimated_size(), 9);
        assert_eq!(3i64.estimated_size(), 8);
        assert_eq!(true.estimated_size(), 1);
    }

    #[test]
    fn row_size_sums_columns() {
        let r = row![1i64, "ab"];
        // 4 (header) + 9 (int) + 1+4+2 (str)
        assert_eq!(r.estimated_size(), 4 + 9 + 7);
    }

    #[test]
    fn container_sizes() {
        let v = vec![1i64, 2, 3];
        assert_eq!(v.estimated_size(), 4 + 24);
        assert_eq!((1i64, 2i64).estimated_size(), 16);
        assert_eq!(Some(5i64).estimated_size(), 9);
        assert_eq!(Option::<i64>::None.estimated_size(), 1);
        assert_eq!(estimate_slice(&[1i64, 2]), 16);
    }
}
