//! The dynamic value type of the relational data model.
//!
//! Shark inherits Hive's schema-on-read model: rows are vectors of loosely
//! typed values. [`Value`] is the Rust equivalent of Hive's writable types;
//! it supports total ordering and hashing (needed for group-by keys and
//! shuffle partitioning, including over floating-point columns) and cheap
//! size estimation for the cluster cost model.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Logical data types supported by the engine.
///
/// This is the subset of Hive types exercised by the paper's workloads;
/// `Array`/`Struct` style nested types from the real warehouse trace are
/// modelled by [`DataType::Str`] payloads produced by the data generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Date stored as days since the Unix epoch.
    Date,
    /// Absence of a known type (e.g. the literal `NULL`).
    Null,
}

impl DataType {
    /// Whether this type is numeric (int, float, or date).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }

    /// The "wider" of two numeric types used for arithmetic coercion.
    pub fn widen(self, other: DataType) -> DataType {
        use DataType::*;
        match (self, other) {
            (Float, _) | (_, Float) => Float,
            (Int, _) | (_, Int) => Int,
            (Date, Date) => Date,
            (a, Null) => a,
            (Null, b) => b,
            (a, _) => a,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "DOUBLE",
            DataType::Str => "STRING",
            DataType::Bool => "BOOLEAN",
            DataType::Date => "DATE",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// Strings use [`Arc<str>`] so cloning rows during shuffles and joins does
/// not copy string payloads (the paper's §5 "temporary object creation"
/// lesson applied to Rust).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Bool(_) => DataType::Bool,
            Value::Date(_) => DataType::Date,
        }
    }

    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as an `i64` if it is numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret the value as an `f64` if it is numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(v) => Some(*v as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret the value as a boolean if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL truthiness: NULL and non-booleans are not truthy.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Compare two values with SQL-ish semantics: NULL sorts first, numeric
    /// types compare numerically across int/float/date, strings and bools
    /// compare within their own type. Values of incomparable types order by
    /// their type tag so that the ordering stays total (required for sorting
    /// mixed data without panics).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Float(a), Float(b)) => {
                // `==` makes 0.0 and -0.0 equal (their hashes are normalized
                // too); NaNs fall through to IEEE total ordering.
                if a == b {
                    Ordering::Equal
                } else {
                    a.total_cmp(b)
                }
            }
            // Cross numeric comparisons go through f64.
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => type_rank(a).cmp(&type_rank(b)),
            },
        }
    }

    /// Render the value the way the CLI and tests print result rows.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Str(s) => s.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Date(d) => format!("date#{d}"),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Date(_) => 4,
        Value::Str(_) => 5,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Hash all numerics through a canonical f64 bit pattern so that
            // values that compare equal across types hash identically.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                // Normalize -0.0 and 0.0.
                let v = if *v == 0.0 { 0.0 } else { *v };
                v.to_bits().hash(state);
            }
            Value::Date(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Str(s) => {
                5u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn cross_type_numeric_equality_and_hash_agree() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("apple") < Value::str("banana"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(3.5f64).as_float(), Some(3.5));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Date(10).as_int(), Some(10));
    }

    #[test]
    fn datatype_widening() {
        assert_eq!(DataType::Int.widen(DataType::Float), DataType::Float);
        assert_eq!(DataType::Int.widen(DataType::Int), DataType::Int);
        assert_eq!(DataType::Null.widen(DataType::Str), DataType::Str);
        assert!(DataType::Date.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Int(7).render(), "7");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::str("hi").render(), "hi");
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut vals = [
            Value::str("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
            Value::Date(3),
        ];
        vals.sort(); // must not panic
        assert_eq!(vals[0], Value::Null);
    }
}
