//! Fast, deterministic hashing and hash partitioning.
//!
//! Shuffle partitioning must be deterministic across re-executions of a task
//! (the lineage-based recovery story of §2.2 depends on it), so this module
//! provides an FxHash-style hasher with a fixed seed rather than the
//! randomly seeded `SipHash` used by `std::collections`.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A fast, deterministic, non-cryptographic hasher (FxHash-style).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; use with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash an arbitrary value with the deterministic hasher.
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Deterministically map a key to one of `num_partitions` shuffle partitions.
///
/// This is the hash partitioner used by `reduce_by_key`, `group_by_key` and
/// shuffle joins. It is stable across processes and re-executions.
pub fn hash_partition<T: Hash + ?Sized>(key: &T, num_partitions: usize) -> usize {
    debug_assert!(num_partitions > 0, "partition count must be positive");
    (fx_hash(key) % num_partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(fx_hash("hello"), fx_hash("hello"));
        assert_eq!(fx_hash(&42u64), fx_hash(&42u64));
        assert_ne!(fx_hash("hello"), fx_hash("world"));
    }

    #[test]
    fn partitioning_stays_in_range() {
        for n in 1..20usize {
            for key in 0..200u64 {
                assert!(hash_partition(&key, n) < n);
            }
        }
    }

    #[test]
    fn partitioning_spreads_keys() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for key in 0..10_000u64 {
            counts[hash_partition(&key, n)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // Reasonably balanced: no partition more than 2x another.
        assert!(max < min * 2, "unbalanced partitioning: {counts:?}");
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
    }
}
