//! Rows and schemas.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::{DataType, Value};
use crate::{Result, SharkError};

/// A named, typed column in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (lower-cased at catalog registration time).
    pub name: String,
    /// Logical type of the column.
    pub data_type: DataType,
}

impl Field {
    /// Create a new field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of [`Field`]s describing the layout of a [`Row`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Create a schema from a list of fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Create a schema from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Schema {
        Schema {
            fields: pairs
                .iter()
                .map(|(n, t)| Field::new(n.to_string(), *t))
                .collect(),
        }
    }

    /// The fields of this schema, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name` (case-insensitive), if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Index of the column named `name`, or an analysis error naming the
    /// available columns (mirrors Hive's "Invalid table alias or column").
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            SharkError::Analysis(format!(
                "unknown column '{}' (available: {})",
                name,
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// The field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Concatenate two schemas (used for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|fd| format!("{} {}", fd.name, fd.data_type))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

/// A relational row: a vector of dynamically typed values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Create a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// The values of this row.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of columns in the row.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Consume the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Append a value (used when building join / aggregate outputs).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Project the row onto a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Fetch an integer column by position, with an execution error if the
    /// value is not numeric (mirrors the `row.getInt` API from Listing 1).
    pub fn get_int(&self, i: usize) -> Result<i64> {
        self.values[i]
            .as_int()
            .ok_or_else(|| SharkError::Execution(format!("column {i} is not an integer")))
    }

    /// Fetch a float column by position.
    pub fn get_float(&self, i: usize) -> Result<f64> {
        self.values[i]
            .as_float()
            .ok_or_else(|| SharkError::Execution(format!("column {i} is not numeric")))
    }

    /// Fetch a string column by position.
    pub fn get_str(&self, i: usize) -> Result<Arc<str>> {
        match &self.values[i] {
            Value::Str(s) => Ok(s.clone()),
            other => Err(SharkError::Execution(format!(
                "column {i} is not a string (found {})",
                other.data_type()
            ))),
        }
    }

    /// Render the row as a tab-separated string (used in test fixtures).
    pub fn render(&self) -> String {
        self.values
            .iter()
            .map(Value::render)
            .collect::<Vec<_>>()
            .join("\t")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

/// Build a row from heterogeneous literals: `row![1i64, "a", 2.5f64]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("score", DataType::Float),
        ])
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.resolve("missing").is_err());
    }

    #[test]
    fn schema_join_and_project() {
        let s = schema();
        let joined = s.join(&Schema::from_pairs(&[("extra", DataType::Bool)]));
        assert_eq!(joined.len(), 4);
        let projected = joined.project(&[3, 0]);
        assert_eq!(projected.field(0).name, "extra");
        assert_eq!(projected.field(1).name, "id");
    }

    #[test]
    fn row_accessors() {
        let r = row![7i64, "alice", 3.25f64];
        assert_eq!(r.get_int(0).unwrap(), 7);
        assert_eq!(r.get_str(1).unwrap().as_ref(), "alice");
        assert_eq!(r.get_float(2).unwrap(), 3.25);
        assert!(r.get_str(0).is_err());
        assert!(r.get_int(1).is_err());
    }

    #[test]
    fn row_concat_and_project() {
        let a = row![1i64, "x"];
        let b = row![true];
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.project(&[2, 0]), row![true, 1i64]);
    }

    #[test]
    fn row_render() {
        assert_eq!(row![1i64, "a", Value::Null].render(), "1\ta\tNULL");
    }

    #[test]
    fn schema_display() {
        assert_eq!(schema().to_string(), "(id INT, name STRING, score DOUBLE)");
    }
}
