//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across all shark crates.
pub type Result<T> = std::result::Result<T, SharkError>;

/// Unified error type for the shark workspace.
///
/// Errors carry a coarse category plus a human-readable message; the
/// categories mirror the phases a query passes through (parsing, analysis,
/// planning, execution) plus infrastructure failures surfaced by the
/// simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharkError {
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// The query referenced unknown tables/columns or mis-typed expressions.
    Analysis(String),
    /// The optimizer or physical planner could not produce a plan.
    Plan(String),
    /// A failure during query or job execution.
    Execution(String),
    /// A catalog/metastore problem (missing table, duplicate table, ...).
    Catalog(String),
    /// An error raised by the simulated cluster (e.g. all replicas lost).
    Cluster(String),
    /// Invalid configuration.
    Config(String),
    /// An unsupported feature was requested.
    Unsupported(String),
}

impl SharkError {
    /// Short, stable label for the error category (useful in tests/metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            SharkError::Parse(_) => "parse",
            SharkError::Analysis(_) => "analysis",
            SharkError::Plan(_) => "plan",
            SharkError::Execution(_) => "execution",
            SharkError::Catalog(_) => "catalog",
            SharkError::Cluster(_) => "cluster",
            SharkError::Config(_) => "config",
            SharkError::Unsupported(_) => "unsupported",
        }
    }

    /// The human-readable message carried by this error.
    pub fn message(&self) -> &str {
        match self {
            SharkError::Parse(m)
            | SharkError::Analysis(m)
            | SharkError::Plan(m)
            | SharkError::Execution(m)
            | SharkError::Catalog(m)
            | SharkError::Cluster(m)
            | SharkError::Config(m)
            | SharkError::Unsupported(m) => m,
        }
    }
}

impl fmt::Display for SharkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for SharkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = SharkError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            SharkError::Parse(String::new()).kind(),
            SharkError::Analysis(String::new()).kind(),
            SharkError::Plan(String::new()).kind(),
            SharkError::Execution(String::new()).kind(),
            SharkError::Catalog(String::new()).kind(),
            SharkError::Cluster(String::new()).kind(),
            SharkError::Config(String::new()).kind(),
            SharkError::Unsupported(String::new()).kind(),
        ];
        let unique: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SharkError::Catalog("t".into()),
            SharkError::Catalog("t".into())
        );
        assert_ne!(
            SharkError::Catalog("t".into()),
            SharkError::Execution("t".into())
        );
    }
}
