//! # shark-common
//!
//! Shared data model and utilities for the `shark-rs` workspace, a Rust
//! reproduction of *Shark: SQL and Rich Analytics at Scale* (SIGMOD 2013).
//!
//! This crate defines the relational [`Value`] / [`Row`] / [`Schema`] types
//! used throughout the system, the workspace-wide error type
//! [`SharkError`], size-estimation helpers used by the cluster cost model,
//! the fast non-cryptographic hash used by partitioners, and the lossy
//! statistics sketches (log-encoded sizes, heavy hitters, approximate
//! histograms) that Partial DAG Execution collects at shuffle boundaries.

pub mod error;
pub mod hash;
pub mod row;
pub mod size;
pub mod sketch;
pub mod value;

pub use error::{Result, SharkError};
pub use row::{Field, Row, Schema};
pub use size::EstimateSize;
pub use value::{DataType, Value};
