//! Lossy statistics sketches used by Partial DAG Execution (§3.1).
//!
//! The paper keeps per-task statistics to 1–2 KB by using lossy encodings:
//! logarithmically encoded partition sizes (≤10 % error, 1 byte for sizes up
//! to 32 GB), "heavy hitter" lists, and approximate histograms. This module
//! implements those three sketches plus the merge operations the master uses
//! when aggregating statistics from all map tasks.

use std::collections::HashMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// Logarithmic byte-size encoding: one byte represents sizes up to 32 GB
/// with at most ~10 % relative error (§3.1).
///
/// The encoding stores `round(log(size)/log(1.1))` clamped to `u8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogSize(u8);

const LOG_BASE: f64 = 1.1;

impl LogSize {
    /// Encode a size in bytes.
    pub fn encode(bytes: u64) -> LogSize {
        if bytes <= 1 {
            return LogSize(0);
        }
        let code = (bytes as f64).ln() / LOG_BASE.ln();
        LogSize(code.round().min(255.0) as u8)
    }

    /// Decode back to an approximate size in bytes.
    pub fn decode(self) -> u64 {
        LOG_BASE.powi(self.0 as i32).round() as u64
    }

    /// The raw one-byte code.
    pub fn code(self) -> u8 {
        self.0
    }
}

/// Misra–Gries style heavy-hitter sketch: tracks up to `capacity` frequently
/// occurring keys with bounded memory.
#[derive(Debug, Clone)]
pub struct HeavyHitters<K: Eq + Hash + Clone> {
    capacity: usize,
    counters: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash + Clone> HeavyHitters<K> {
    /// Create a sketch tracking at most `capacity` candidate keys.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "heavy hitter capacity must be positive");
        HeavyHitters {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Observe one occurrence of `key`.
    pub fn observe(&mut self, key: K) {
        self.observe_weighted(key, 1);
    }

    /// Observe `weight` occurrences of `key`.
    pub fn observe_weighted(&mut self, key: K, weight: u64) {
        self.total += weight;
        if let Some(c) = self.counters.get_mut(&key) {
            *c += weight;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, weight);
            return;
        }
        // Misra–Gries decrement step: reduce all counters, evict zeros.
        let dec = weight;
        self.counters.retain(|_, c| {
            if *c > dec {
                *c -= dec;
                true
            } else {
                false
            }
        });
    }

    /// Total number of observations (exact).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Candidate heavy hitters with estimated counts, most frequent first.
    pub fn hitters(&self) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = self.counters.iter().map(|(k, c)| (k.clone(), *c)).collect();
        v.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
        v
    }

    /// Keys whose estimated frequency exceeds `fraction` of all observations.
    pub fn above_fraction(&self, fraction: f64) -> Vec<K> {
        let threshold = (self.total as f64 * fraction) as u64;
        self.hitters()
            .into_iter()
            .filter(|(_, c)| *c >= threshold.max(1))
            .map(|(k, _)| k)
            .collect()
    }

    /// Merge another sketch into this one (master-side aggregation).
    pub fn merge(&mut self, other: &HeavyHitters<K>) {
        for (k, c) in &other.counters {
            self.observe_weighted(k.clone(), *c);
        }
        // observe_weighted already added other's counter totals; fix up the
        // exact total to account for observations other dropped.
        self.total = self.total - other.counters.values().sum::<u64>() + other.total;
    }
}

/// A fixed-bucket approximate histogram over `f64` keys (equi-width buckets
/// between a configured min and max), used to estimate key distributions at
/// shuffle boundaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApproxHistogram {
    min: f64,
    max: f64,
    buckets: Vec<u64>,
    below: u64,
    above: u64,
    count: u64,
}

impl ApproxHistogram {
    /// Create a histogram with `buckets` equi-width buckets over `[min, max)`.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(max > min, "histogram range must be non-empty");
        ApproxHistogram {
            min,
            max,
            buckets: vec![0; buckets],
            below: 0,
            above: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if v < self.min {
            self.below += 1;
        } else if v >= self.max {
            self.above += 1;
        } else {
            let width = (self.max - self.min) / self.buckets.len() as f64;
            let idx = ((v - self.min) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated fraction of observations that are `<= v`.
    pub fn estimate_cdf(&self, v: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if v < self.min {
            return 0.0;
        }
        let width = (self.max - self.min) / self.buckets.len() as f64;
        let mut acc = self.below;
        if v >= self.max {
            acc += self.buckets.iter().sum::<u64>() + self.above;
        } else {
            let full = ((v - self.min) / width) as usize;
            for b in &self.buckets[..full.min(self.buckets.len())] {
                acc += b;
            }
            if full < self.buckets.len() {
                let frac = ((v - self.min) - full as f64 * width) / width;
                acc += (self.buckets[full] as f64 * frac) as u64;
            }
        }
        acc as f64 / self.count as f64
    }

    /// Merge another histogram with identical bucket configuration.
    pub fn merge(&mut self, other: &ApproxHistogram) {
        assert_eq!(self.buckets.len(), other.buckets.len());
        assert_eq!(self.min.to_bits(), other.min.to_bits());
        assert_eq!(self.max.to_bits(), other.max.to_bits());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.below += other.below;
        self.above += other.above;
        self.count += other.count;
    }

    /// The bucket counts (for tests and the optimizer).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_size_roundtrip_within_10_percent() {
        for &size in &[1u64, 100, 4 << 10, 1 << 20, 500 << 20, 32 << 30] {
            let approx = LogSize::encode(size).decode();
            let err = (approx as f64 - size as f64).abs() / size as f64;
            assert!(err <= 0.10, "size {size} decoded to {approx}, err {err}");
        }
    }

    #[test]
    fn log_size_is_one_byte_and_monotone() {
        let one_byte: u8 = LogSize::encode(1 << 35).code();
        assert!(one_byte > 0);
        assert!(LogSize::encode(1024).code() < LogSize::encode(1 << 20).code());
    }

    #[test]
    fn heavy_hitters_finds_skewed_key() {
        let mut hh = HeavyHitters::new(4);
        for i in 0..1000u64 {
            hh.observe(i % 100); // uniform noise
        }
        for _ in 0..5000 {
            hh.observe(7u64); // the heavy key
        }
        let top = hh.hitters();
        assert_eq!(top[0].0, 7);
        assert!(hh.above_fraction(0.5).contains(&7));
        assert_eq!(hh.total(), 6000);
    }

    #[test]
    fn heavy_hitters_merge_accumulates_totals() {
        let mut a = HeavyHitters::new(4);
        let mut b = HeavyHitters::new(4);
        for _ in 0..100 {
            a.observe("x");
            b.observe("x");
            b.observe("y");
        }
        a.merge(&b);
        assert_eq!(a.total(), 300);
        assert_eq!(a.hitters()[0].0, "x");
    }

    #[test]
    fn histogram_cdf_is_monotone_and_roughly_correct() {
        let mut h = ApproxHistogram::new(0.0, 100.0, 20);
        for i in 0..10_000 {
            h.observe((i % 100) as f64);
        }
        let mid = h.estimate_cdf(50.0);
        assert!((mid - 0.5).abs() < 0.05, "cdf(50) = {mid}");
        assert!(h.estimate_cdf(25.0) < h.estimate_cdf(75.0));
        assert_eq!(h.estimate_cdf(1000.0), 1.0);
        assert_eq!(h.estimate_cdf(-5.0), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = ApproxHistogram::new(0.0, 10.0, 10);
        let mut b = ApproxHistogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            a.observe(i as f64);
            b.observe(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
    }
}
