//! # shark-sql
//!
//! The SQL engine of the Shark reproduction: a HiveQL-subset front end
//! (lexer, parser, analyzer), a rule-based optimizer (predicate pushdown,
//! column pruning, LIMIT pushdown, map pruning), physical execution over
//! [`shark_rdd`] RDDs, and — the paper's core contribution — **Partial DAG
//! Execution** (§3.1): run-time join-strategy selection, reducer-count
//! selection and skew-aware bucket coalescing driven by statistics gathered
//! at shuffle boundaries.
//!
//! The typical entry point is [`SqlSession`]: register tables (or create
//! them with `CREATE TABLE … TBLPROPERTIES("shark.cache"="true") AS SELECT`)
//! and call [`SqlSession::sql`] or [`SqlSession::sql_to_rdd`].

pub mod aggregate;
pub mod ast;
pub mod catalog;
pub mod engine;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod pde;
pub mod plan;
pub mod plancache;
pub mod scan;
pub mod vector;

pub use aggregate::{AggExpr, AggFunc, AggState, AggStates};
pub use catalog::{
    Catalog, CatalogSnapshot, DdlRecord, MemTable, PartitionResidency, ReclaimedDrop, RowGenerator,
    SpillSource, TableMeta,
};
pub use engine::SqlSession;
pub use exec::{
    ExecConfig, ExecutionMode, LoadReport, QueryResult, QueryStream, StreamProgress, TableRdd,
};
pub use expr::{BoundExpr, ScalarFunc, UdfRegistry};
pub use pde::{choose_join_strategy, coalesce_buckets, JoinStrategy};
pub use plan::{plan_select, QueryPlan};
pub use plancache::{statement_fingerprint, CachedStatement, PlanCache};
pub use vector::FilterKernel;
