//! SQL tokenizer.

use shark_common::{Result, SharkError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser).
    Ident(String),
    /// Numeric literal (integer or decimal).
    Number(String),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    StringLit(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(SharkError::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == quote {
                        if i + 1 < chars.len() && chars[i + 1] == quote {
                            s.push(quote);
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::StringLit(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Number(s));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(SharkError::Parse(format!(
                    "unexpected character '{other}' in SQL input"
                )));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_simple_query() {
        let t = tokenize("SELECT a, b FROM t WHERE a > 10").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[2], Token::Comma);
        assert!(t.contains(&Token::Gt));
        assert_eq!(*t.last().unwrap(), Token::Number("10".into()));
    }

    #[test]
    fn tokenizes_strings_operators_and_comments() {
        let t = tokenize("x <= 'it''s' -- trailing comment\n AND y <> 2.5").unwrap();
        assert_eq!(t[1], Token::LtEq);
        assert_eq!(t[2], Token::StringLit("it's".into()));
        assert_eq!(t[3], Token::Ident("AND".into()));
        assert_eq!(t[5], Token::NotEq);
        assert_eq!(t[6], Token::Number("2.5".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn double_quoted_properties() {
        let t = tokenize("TBLPROPERTIES (\"shark.cache\" = \"true\")").unwrap();
        assert_eq!(t[2], Token::StringLit("shark.cache".into()));
        assert_eq!(t[4], Token::StringLit("true".into()));
    }
}
