//! The analyzer / logical planner.
//!
//! Converts a parsed [`SelectStmt`] plus the catalog into a [`QueryPlan`]:
//! resolved scans (with pruned column projections and pushed-down filters),
//! equi-join steps, an optional aggregation, final projections, ordering and
//! limit. The structure mirrors the fixed pipeline Shark compiles Hive
//! queries into: scan → filter → join* → aggregate → project → sort → limit.
//!
//! Rule-based optimizations applied here, as in the paper (§2.4): predicate
//! pushdown to scans (which also feeds map pruning, §3.5), column pruning
//! (only referenced columns are scanned from the columnar store), and LIMIT
//! pushdown to individual partitions when no ordering or aggregation is
//! present.

use std::sync::Arc;

use shark_common::{DataType, Field, Result, Schema, SharkError, Value};

use crate::aggregate::{AggExpr, AggFunc};
use crate::ast::{Expr, SelectItem, SelectStmt};
use crate::catalog::{CatalogSnapshot, TableMeta};
use crate::expr::{BoundExpr, ColumnResolver, UdfRegistry};

/// One table scan with pushed-down filters and a pruned column projection.
pub struct ScanNode {
    /// The table being scanned.
    pub table: Arc<TableMeta>,
    /// Alias used in the query, if any.
    pub alias: Option<String>,
    /// Original column indices read from the table, in ascending order.
    pub projection: Vec<usize>,
    /// Schema of the scan output (the projected columns).
    pub projected_schema: Schema,
    /// Filters bound against the projected schema, pushed down from WHERE.
    pub filters: Vec<BoundExpr>,
}

/// One equi-join step: joins the rows accumulated so far with the output of
/// scan `right_scan`.
pub struct JoinNode {
    /// Join key over the accumulated (left) schema.
    pub left_key: BoundExpr,
    /// Join key over the right scan's projected schema.
    pub right_key: BoundExpr,
    /// Index of the right scan in [`QueryPlan::scans`].
    pub right_scan: usize,
}

/// How one output column of an aggregation is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputRef {
    /// The i-th GROUP BY expression.
    Group(usize),
    /// The i-th aggregate expression.
    Agg(usize),
}

/// The aggregation step of a plan.
pub struct AggregateNode {
    /// Grouping expressions over the combined (post-join) schema.
    pub group_exprs: Vec<BoundExpr>,
    /// Aggregate expressions over the combined schema.
    pub aggs: Vec<AggExpr>,
    /// How each output column maps to a group key or aggregate.
    pub output: Vec<OutputRef>,
    /// HAVING predicate over the *internal* layout
    /// (`group values ++ aggregate values`).
    pub having_internal: Option<BoundExpr>,
}

/// A fully analyzed query.
pub struct QueryPlan {
    /// The table scans, in FROM/JOIN order.
    pub scans: Vec<ScanNode>,
    /// Join steps; `joins[i]` joins the accumulated rows with `scans[i + 1]`.
    pub joins: Vec<JoinNode>,
    /// Residual WHERE predicate over the combined schema (conjuncts that
    /// could not be pushed to a single scan).
    pub residual_filter: Option<BoundExpr>,
    /// Aggregation, if the query groups or uses aggregate functions.
    pub aggregate: Option<AggregateNode>,
    /// Final projections over the combined schema (only when there is no
    /// aggregation).
    pub projections: Vec<BoundExpr>,
    /// Schema of the query result.
    pub output_schema: Schema,
    /// ORDER BY as (output column, descending) pairs.
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// Output column the result should be hash-partitioned by
    /// (`DISTRIBUTE BY`, used by CTAS).
    pub distribute_by: Option<usize>,
}

impl QueryPlan {
    /// The combined (post-join, pre-aggregation) schema.
    pub fn combined_schema(&self) -> Schema {
        let mut schema = Schema::default();
        for scan in &self.scans {
            schema = schema.join(&scan.projected_schema);
        }
        schema
    }

    /// Whether the LIMIT can be applied inside each partition (the paper's
    /// "pushing LIMIT down to individual partitions" rule).
    pub fn limit_pushdown_allowed(&self) -> bool {
        self.limit.is_some() && self.order_by.is_empty() && self.aggregate.is_none()
    }

    /// A short human-readable description of the plan (for notes and tests).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for s in &self.scans {
            parts.push(format!(
                "scan({}, cols={}, filters={})",
                s.table.name,
                s.projection.len(),
                s.filters.len()
            ));
        }
        if !self.joins.is_empty() {
            parts.push(format!("joins={}", self.joins.len()));
        }
        if self.residual_filter.is_some() {
            parts.push("filter".into());
        }
        if let Some(agg) = &self.aggregate {
            parts.push(format!(
                "aggregate(groups={}, aggs={})",
                agg.group_exprs.len(),
                agg.aggs.len()
            ));
        } else {
            parts.push(format!("project({})", self.projections.len()));
        }
        if !self.order_by.is_empty() {
            parts.push("sort".into());
        }
        if let Some(n) = self.limit {
            parts.push(format!("limit({n})"));
        }
        parts.join(" -> ")
    }
}

// ---------------------------------------------------------------------------
// Name resolution
// ---------------------------------------------------------------------------

struct ScanBinding {
    qualifier: String,
    table: Arc<TableMeta>,
    alias: Option<String>,
    /// Columns referenced (original indices).
    referenced: Vec<usize>,
}

/// Resolves `[qualifier.]column` to `(scan index, original column index)`.
struct NameResolver<'a> {
    scans: &'a [ScanBinding],
}

impl NameResolver<'_> {
    fn resolve(&self, name: &str) -> Result<(usize, usize)> {
        if let Some((qual, col)) = name.split_once('.') {
            for (si, scan) in self.scans.iter().enumerate() {
                if scan.qualifier.eq_ignore_ascii_case(qual) {
                    let ci = scan.table.schema.resolve(col)?;
                    return Ok((si, ci));
                }
            }
            return Err(SharkError::Analysis(format!(
                "unknown table alias '{qual}' in column '{name}'"
            )));
        }
        let mut found = None;
        for (si, scan) in self.scans.iter().enumerate() {
            if let Some(ci) = scan.table.schema.index_of(name) {
                if found.is_some() {
                    return Err(SharkError::Analysis(format!(
                        "ambiguous column '{name}': qualify it with a table alias"
                    )));
                }
                found = Some((si, ci));
            }
        }
        found.ok_or_else(|| SharkError::Analysis(format!("unknown column '{name}'")))
    }
}

/// Resolver used when binding expressions against the *combined* projected
/// schema.
struct CombinedResolver<'a> {
    resolver: &'a NameResolver<'a>,
    /// (scan, original column) -> combined index.
    combined_index: &'a dyn Fn(usize, usize) -> Option<usize>,
}

impl ColumnResolver for CombinedResolver<'_> {
    fn resolve_column(&self, name: &str) -> Result<usize> {
        let (si, ci) = self.resolver.resolve(name)?;
        (self.combined_index)(si, ci).ok_or_else(|| {
            SharkError::Analysis(format!("column '{name}' was pruned from the plan"))
        })
    }
}

/// Resolver used when binding a pushed-down filter against one scan's
/// projected schema.
struct ScanLocalResolver<'a> {
    resolver: &'a NameResolver<'a>,
    scan: usize,
    projection: &'a [usize],
}

impl ColumnResolver for ScanLocalResolver<'_> {
    fn resolve_column(&self, name: &str) -> Result<usize> {
        let (si, ci) = self.resolver.resolve(name)?;
        if si != self.scan {
            return Err(SharkError::Analysis(format!(
                "column '{name}' does not belong to this scan"
            )));
        }
        self.projection
            .iter()
            .position(|&c| c == ci)
            .ok_or_else(|| SharkError::Analysis(format!("column '{name}' not projected")))
    }
}

// ---------------------------------------------------------------------------
// The planner
// ---------------------------------------------------------------------------

/// Analyze a parsed SELECT against one pinned catalog snapshot and produce
/// a [`QueryPlan`]. Every table the statement references resolves *once*,
/// against the same immutable snapshot — concurrent DDL cannot change (or
/// tear) what the resulting plan reads.
pub fn plan_select(
    stmt: &SelectStmt,
    catalog: &CatalogSnapshot,
    udfs: &UdfRegistry,
) -> Result<QueryPlan> {
    let from = stmt.from.as_ref().ok_or_else(|| {
        SharkError::Plan("queries without a FROM clause are not supported".into())
    })?;

    // Resolve tables.
    let mut scans: Vec<ScanBinding> = Vec::new();
    let mut add_scan = |tref: &crate::ast::TableRef| -> Result<()> {
        let table = catalog.get(&tref.name)?;
        scans.push(ScanBinding {
            qualifier: tref
                .alias
                .clone()
                .unwrap_or_else(|| tref.name.to_lowercase()),
            table,
            alias: tref.alias.clone(),
            referenced: Vec::new(),
        });
        Ok(())
    };
    add_scan(from)?;
    for j in &stmt.joins {
        add_scan(&j.table)?;
    }

    let has_wildcard = stmt
        .projections
        .iter()
        .any(|p| matches!(p, SelectItem::Wildcard));
    let is_aggregate = !stmt.group_by.is_empty()
        || stmt.projections.iter().any(|p| match p {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        });
    if has_wildcard && is_aggregate {
        return Err(SharkError::Plan(
            "SELECT * cannot be combined with GROUP BY / aggregates".into(),
        ));
    }

    // ----- collect referenced columns per scan -------------------------------
    {
        let mut names: Vec<String> = Vec::new();
        for item in &stmt.projections {
            if let SelectItem::Expr { expr, .. } = item {
                expr.referenced_columns(&mut names);
            }
        }
        for j in &stmt.joins {
            j.on.referenced_columns(&mut names);
        }
        if let Some(w) = &stmt.selection {
            w.referenced_columns(&mut names);
        }
        for g in &stmt.group_by {
            g.referenced_columns(&mut names);
        }
        if let Some(h) = &stmt.having {
            h.referenced_columns(&mut names);
        }
        for (o, _) in &stmt.order_by {
            o.referenced_columns(&mut names);
        }
        let resolver = NameResolver { scans: &scans };
        let mut resolved: Vec<(usize, usize)> = Vec::new();
        for name in &names {
            // Names that do not resolve here may be output aliases (e.g. in
            // ORDER BY); genuinely unknown columns are caught when the
            // expressions are bound.
            if let Ok(rc) = resolver.resolve(name) {
                resolved.push(rc);
            }
        }
        for (si, ci) in resolved {
            if !scans[si].referenced.contains(&ci) {
                scans[si].referenced.push(ci);
            }
        }
    }
    if has_wildcard {
        for scan in scans.iter_mut() {
            scan.referenced = (0..scan.table.schema.len()).collect();
        }
    }
    for scan in scans.iter_mut() {
        if scan.referenced.is_empty() {
            // Always scan at least one column so row counts are preserved.
            scan.referenced.push(0);
        }
        scan.referenced.sort_unstable();
    }

    // Combined-schema offsets.
    let offsets: Vec<usize> = {
        let mut offs = Vec::with_capacity(scans.len());
        let mut acc = 0usize;
        for scan in &scans {
            offs.push(acc);
            acc += scan.referenced.len();
        }
        offs
    };
    let combined_index = |si: usize, ci: usize| -> Option<usize> {
        scans[si]
            .referenced
            .iter()
            .position(|&c| c == ci)
            .map(|p| offsets[si] + p)
    };

    let resolver = NameResolver { scans: &scans };
    let combined_resolver = CombinedResolver {
        resolver: &resolver,
        combined_index: &combined_index,
    };

    // Build scan nodes (filters filled below).
    let mut scan_nodes: Vec<ScanNode> = scans
        .iter()
        .map(|s| ScanNode {
            table: s.table.clone(),
            alias: s.alias.clone(),
            projection: s.referenced.clone(),
            projected_schema: s.table.schema.project(&s.referenced),
            filters: Vec::new(),
        })
        .collect();

    // ----- WHERE: split, push down, keep residual -----------------------------
    let mut residual: Vec<Expr> = Vec::new();
    let mut join_candidates: Vec<Expr> = Vec::new();
    if let Some(selection) = stmt.selection.clone() {
        for conjunct in selection.split_conjuncts() {
            let mut names = Vec::new();
            conjunct.referenced_columns(&mut names);
            let mut scans_touched: Vec<usize> = Vec::new();
            for n in &names {
                let (si, _) = resolver.resolve(n)?;
                if !scans_touched.contains(&si) {
                    scans_touched.push(si);
                }
            }
            match scans_touched.len() {
                0 | 1 => {
                    let si = scans_touched.first().copied().unwrap_or(0);
                    let local = ScanLocalResolver {
                        resolver: &resolver,
                        scan: si,
                        projection: &scans[si].referenced,
                    };
                    let bound = BoundExpr::bind(&conjunct, &local, udfs)?;
                    scan_nodes[si].filters.push(bound);
                }
                2 => {
                    // Potential implicit join condition (FROM a, b WHERE a.x = b.y).
                    join_candidates.push(conjunct);
                }
                _ => residual.push(conjunct),
            }
        }
    }

    // ----- joins ---------------------------------------------------------------
    let mut join_nodes: Vec<JoinNode> = Vec::new();
    for (ji, clause) in stmt.joins.iter().enumerate() {
        let right_scan = ji + 1;
        let mut on = clause.on.clone();
        if matches!(on, Expr::Literal(Value::Bool(true))) {
            // Comma join: find an implicit equality condition in WHERE.
            let pos = join_candidates
                .iter()
                .position(|e| {
                    let mut names = Vec::new();
                    e.referenced_columns(&mut names);
                    names.iter().any(|n| {
                        resolver
                            .resolve(n)
                            .map(|(si, _)| si == right_scan)
                            .unwrap_or(false)
                    })
                })
                .ok_or_else(|| {
                    SharkError::Plan(format!(
                        "no join condition found for table '{}'",
                        clause.table.name
                    ))
                })?;
            on = join_candidates.remove(pos);
        }
        let (left_expr, right_expr) = match &on {
            Expr::Binary {
                left,
                op: crate::ast::BinaryOp::Eq,
                right,
            } => (left.as_ref().clone(), right.as_ref().clone()),
            other => {
                return Err(SharkError::Plan(format!(
                    "only equi-joins are supported, found {other:?}"
                )))
            }
        };
        // Figure out which side belongs to the right scan.
        let side_of = |e: &Expr| -> Result<bool> {
            let mut names = Vec::new();
            e.referenced_columns(&mut names);
            let mut right = false;
            let mut left = false;
            for n in &names {
                let (si, _) = resolver.resolve(n)?;
                if si == right_scan {
                    right = true;
                } else {
                    left = true;
                }
            }
            if right && left {
                return Err(SharkError::Plan(
                    "join keys must reference only one side each".into(),
                ));
            }
            Ok(right)
        };
        let (left_ast, right_ast) = if side_of(&left_expr)? {
            (right_expr, left_expr)
        } else {
            (left_expr, right_expr)
        };
        let left_key = BoundExpr::bind(&left_ast, &combined_resolver, udfs)?;
        let right_key = {
            let local = ScanLocalResolver {
                resolver: &resolver,
                scan: right_scan,
                projection: &scans[right_scan].referenced,
            };
            BoundExpr::bind(&right_ast, &local, udfs)?
        };
        join_nodes.push(JoinNode {
            left_key,
            right_key,
            right_scan,
        });
    }
    // Any remaining cross-scan conjuncts become residual filters.
    residual.extend(join_candidates);
    let residual_filter = match residual.len() {
        0 => None,
        _ => {
            let combined = residual
                .into_iter()
                .reduce(|a, b| Expr::binary(a, crate::ast::BinaryOp::And, b))
                .unwrap();
            Some(BoundExpr::bind(&combined, &combined_resolver, udfs)?)
        }
    };

    // ----- aggregation / projection -------------------------------------------
    let mut output_fields: Vec<Field> = Vec::new();
    let mut order_source_exprs: Vec<Expr> = Vec::new(); // AST of each output column
    let combined_schema = {
        let mut s = Schema::default();
        for node in &scan_nodes {
            s = s.join(&node.projected_schema);
        }
        s
    };

    let (aggregate, projections) = if is_aggregate {
        let normalized_group_by: Vec<Expr> = stmt
            .group_by
            .iter()
            .map(|g| normalize_expr(g, &resolver))
            .collect();
        let mut group_exprs = Vec::new();
        for g in &stmt.group_by {
            group_exprs.push(BoundExpr::bind(g, &combined_resolver, udfs)?);
        }
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut agg_asts: Vec<Expr> = Vec::new();
        let mut output = Vec::new();

        for (i, item) in stmt.projections.iter().enumerate() {
            let (expr, alias) = match item {
                SelectItem::Expr { expr, alias } => (expr, alias.clone()),
                SelectItem::Wildcard => unreachable!("checked above"),
            };
            if expr.contains_aggregate() {
                let (func, arg_ast, distinct) = match expr {
                    Expr::Function {
                        name,
                        args,
                        distinct,
                    } => (
                        AggFunc::from_name(name).ok_or_else(|| {
                            SharkError::Plan(format!("unsupported aggregate '{name}'"))
                        })?,
                        args.first().cloned(),
                        *distinct,
                    ),
                    other => {
                        return Err(SharkError::Plan(format!(
                            "aggregate expressions must be plain function calls, found {other:?}"
                        )))
                    }
                };
                let func = if distinct && func == AggFunc::Count {
                    AggFunc::CountDistinct
                } else {
                    func
                };
                let arg = match &arg_ast {
                    None | Some(Expr::Star) => None,
                    Some(a) => Some(BoundExpr::bind(a, &combined_resolver, udfs)?),
                };
                let agg_index = aggs.len();
                aggs.push(AggExpr { func, arg });
                agg_asts.push(expr.clone());
                output.push(OutputRef::Agg(agg_index));
                let name = alias.unwrap_or_else(|| format!("{}_{i}", func.display_name()));
                let dtype = match func {
                    AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
                    AggFunc::Sum | AggFunc::Avg => DataType::Float,
                    AggFunc::Min | AggFunc::Max => DataType::Float,
                };
                output_fields.push(Field::new(name, dtype));
                order_source_exprs.push(expr.clone());
            } else {
                // Must match one of the GROUP BY expressions (compared after
                // normalizing qualified vs. unqualified column names).
                let normalized = normalize_expr(expr, &resolver);
                let gi = normalized_group_by
                    .iter()
                    .position(|g| *g == normalized)
                    .ok_or_else(|| {
                        SharkError::Plan(format!(
                            "projection {expr:?} is neither an aggregate nor a GROUP BY expression"
                        ))
                    })?;
                output.push(OutputRef::Group(gi));
                let name = alias.unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
                    _ => format!("group_{i}"),
                });
                let dtype = group_exprs[gi].data_type(&combined_schema);
                output_fields.push(Field::new(name, dtype));
                order_source_exprs.push(expr.clone());
            }
        }

        // HAVING over the internal layout (group values ++ agg values).
        let having_internal = match &stmt.having {
            None => None,
            Some(h) => Some(bind_having(
                h,
                &stmt.group_by,
                &mut aggs,
                &mut agg_asts,
                &combined_resolver,
                udfs,
            )?),
        };

        (
            Some(AggregateNode {
                group_exprs,
                aggs,
                output,
                having_internal,
            }),
            Vec::new(),
        )
    } else {
        let mut projections = Vec::new();
        for (i, item) in stmt.projections.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for (si, node) in scan_nodes.iter().enumerate() {
                        for (pi, field) in node.projected_schema.fields().iter().enumerate() {
                            projections.push(BoundExpr::Column(offsets[si] + pi));
                            output_fields.push(field.clone());
                            order_source_exprs.push(Expr::Column(field.name.clone()));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = BoundExpr::bind(expr, &combined_resolver, udfs)?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
                        _ => format!("col_{i}"),
                    });
                    output_fields.push(Field::new(name, bound.data_type(&combined_schema)));
                    projections.push(bound);
                    order_source_exprs.push(expr.clone());
                }
            }
        }
        (None, projections)
    };

    let output_schema = Schema::new(output_fields);

    // ----- ORDER BY ------------------------------------------------------------
    let mut order_by = Vec::new();
    for (expr, desc) in &stmt.order_by {
        let idx = resolve_output_column(expr, &output_schema, &order_source_exprs)?;
        order_by.push((idx, *desc));
    }

    // ----- DISTRIBUTE BY --------------------------------------------------------
    let distribute_by = match &stmt.distribute_by {
        None => None,
        Some(col) => Some(output_schema.resolve(col).map_err(|_| {
            SharkError::Plan(format!(
                "DISTRIBUTE BY column '{col}' is not part of the query output"
            ))
        })?),
    };

    Ok(QueryPlan {
        scans: scan_nodes,
        joins: join_nodes,
        residual_filter,
        aggregate,
        projections,
        output_schema,
        order_by,
        limit: stmt.limit,
        distribute_by,
    })
}

/// Rewrite every column reference in an expression into its canonical
/// `(scan, column)` form so that `sourceip` and `uv.sourceip` compare equal
/// when matching SELECT items against GROUP BY expressions.
fn normalize_expr(expr: &Expr, resolver: &NameResolver<'_>) -> Expr {
    match expr {
        Expr::Column(name) => match resolver.resolve(name) {
            Ok((si, ci)) => Expr::Column(format!("#{si}.{ci}")),
            Err(_) => expr.clone(),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(normalize_expr(left, resolver)),
            op: *op,
            right: Box::new(normalize_expr(right, resolver)),
        },
        Expr::Not(e) => Expr::Not(Box::new(normalize_expr(e, resolver))),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(normalize_expr(expr, resolver)),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(normalize_expr(expr, resolver)),
            low: Box::new(normalize_expr(low, resolver)),
            high: Box::new(normalize_expr(high, resolver)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(normalize_expr(expr, resolver)),
            list: list.iter().map(|e| normalize_expr(e, resolver)).collect(),
            negated: *negated,
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|e| normalize_expr(e, resolver)).collect(),
            distinct: *distinct,
        },
        Expr::Literal(_) | Expr::Star => expr.clone(),
    }
}

/// Bind a HAVING predicate against the internal aggregation layout
/// (`group values ++ aggregate values`), adding aggregates it references
/// that are not already computed.
fn bind_having(
    having: &Expr,
    group_by: &[Expr],
    aggs: &mut Vec<AggExpr>,
    agg_asts: &mut Vec<Expr>,
    combined_resolver: &dyn ColumnResolver,
    udfs: &UdfRegistry,
) -> Result<BoundExpr> {
    match having {
        Expr::Function { name, args, .. } if AggFunc::from_name(name).is_some() => {
            // Reuse an existing aggregate if the AST matches, else add one.
            let idx = match agg_asts.iter().position(|a| a == having) {
                Some(i) => i,
                None => {
                    let func = AggFunc::from_name(name).unwrap();
                    let arg = match args.first() {
                        None | Some(Expr::Star) => None,
                        Some(a) => Some(BoundExpr::bind(a, combined_resolver, udfs)?),
                    };
                    aggs.push(AggExpr { func, arg });
                    agg_asts.push(having.clone());
                    aggs.len() - 1
                }
            };
            Ok(BoundExpr::Column(group_by.len() + idx))
        }
        Expr::Column(_) => {
            let gi = group_by.iter().position(|g| g == having).ok_or_else(|| {
                SharkError::Plan("HAVING may only reference GROUP BY columns and aggregates".into())
            })?;
            Ok(BoundExpr::Column(gi))
        }
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
            left: Box::new(bind_having(
                left,
                group_by,
                aggs,
                agg_asts,
                combined_resolver,
                udfs,
            )?),
            op: *op,
            right: Box::new(bind_having(
                right,
                group_by,
                aggs,
                agg_asts,
                combined_resolver,
                udfs,
            )?),
        }),
        Expr::Not(e) => Ok(BoundExpr::Not(Box::new(bind_having(
            e,
            group_by,
            aggs,
            agg_asts,
            combined_resolver,
            udfs,
        )?))),
        other => Err(SharkError::Plan(format!(
            "unsupported HAVING expression {other:?}"
        ))),
    }
}

/// Resolve an ORDER BY expression to an output column index.
fn resolve_output_column(
    expr: &Expr,
    output_schema: &Schema,
    output_sources: &[Expr],
) -> Result<usize> {
    // Positional reference (1-based).
    if let Expr::Literal(Value::Int(n)) = expr {
        let idx = *n as usize;
        if idx >= 1 && idx <= output_schema.len() {
            return Ok(idx - 1);
        }
        return Err(SharkError::Plan(format!(
            "ORDER BY position {n} out of range"
        )));
    }
    // By output column name / alias.
    if let Expr::Column(name) = expr {
        let bare = name.rsplit('.').next().unwrap_or(name);
        if let Some(i) = output_schema.index_of(bare) {
            return Ok(i);
        }
    }
    // By structural match with a select item.
    if let Some(i) = output_sources.iter().position(|s| s == expr) {
        return Ok(i);
    }
    Err(SharkError::Plan(format!(
        "ORDER BY expression {expr:?} must reference an output column"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::parser::parse_select;
    use shark_common::row;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(TableMeta::new(
            "rankings",
            Schema::from_pairs(&[
                ("pageurl", DataType::Str),
                ("pagerank", DataType::Int),
                ("avgduration", DataType::Int),
            ]),
            4,
            |_| vec![row!["u", 1i64, 2i64]],
        ));
        c.register(TableMeta::new(
            "uservisits",
            Schema::from_pairs(&[
                ("sourceip", DataType::Str),
                ("desturl", DataType::Str),
                ("visitdate", DataType::Date),
                ("adrevenue", DataType::Float),
            ]),
            4,
            |_| vec![row!["ip", "u", Value::Date(1), 5.0f64]],
        ));
        c
    }

    fn plan(sql: &str) -> QueryPlan {
        plan_select(
            &parse_select(sql).unwrap(),
            &catalog().snapshot(),
            &UdfRegistry::new(),
        )
        .unwrap()
    }

    #[test]
    fn selection_pushes_predicate_and_prunes_columns() {
        let p = plan("SELECT pageURL, pageRank FROM rankings WHERE pageRank > 300");
        assert_eq!(p.scans.len(), 1);
        assert_eq!(p.scans[0].projection, vec![0, 1]); // avgduration pruned
        assert_eq!(p.scans[0].filters.len(), 1);
        assert!(p.residual_filter.is_none());
        assert!(p.aggregate.is_none());
        assert_eq!(p.output_schema.names(), vec!["pageurl", "pagerank"]);
        assert!(p.describe().contains("scan(rankings"));
    }

    #[test]
    fn aggregation_plan_maps_outputs() {
        let p = plan(
            "SELECT sourceIP, SUM(adRevenue) AS rev FROM uservisits GROUP BY sourceIP ORDER BY rev DESC LIMIT 5",
        );
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.group_exprs.len(), 1);
        assert_eq!(agg.aggs.len(), 1);
        assert_eq!(agg.output, vec![OutputRef::Group(0), OutputRef::Agg(0)]);
        assert_eq!(p.output_schema.names(), vec!["sourceip", "rev"]);
        assert_eq!(p.order_by, vec![(1, true)]);
        assert_eq!(p.limit, Some(5));
        assert!(!p.limit_pushdown_allowed());
    }

    #[test]
    fn join_plan_with_implicit_condition_and_pushdown() {
        let p = plan(
            "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) FROM rankings R, uservisits UV \
             WHERE R.pageURL = UV.destURL AND UV.visitDate BETWEEN 10 AND 20 GROUP BY UV.sourceIP",
        );
        assert_eq!(p.scans.len(), 2);
        assert_eq!(p.joins.len(), 1);
        // The date filter was pushed to the uservisits scan.
        assert_eq!(p.scans[1].filters.len(), 1);
        assert!(p.residual_filter.is_none());
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.aggs.len(), 2);
    }

    #[test]
    fn explicit_join_and_wildcard() {
        let p = plan(
            "SELECT * FROM rankings r JOIN uservisits u ON r.pageURL = u.destURL WHERE r.pageRank > 10",
        );
        assert_eq!(p.joins.len(), 1);
        // Wildcard: all columns of both tables.
        assert_eq!(p.output_schema.len(), 7);
        assert_eq!(p.projections.len(), 7);
        assert_eq!(p.scans[0].filters.len(), 1);
    }

    #[test]
    fn count_star_and_global_aggregate() {
        let p = plan("SELECT COUNT(*) FROM rankings");
        let agg = p.aggregate.as_ref().unwrap();
        assert!(agg.group_exprs.is_empty());
        assert_eq!(agg.aggs.len(), 1);
        assert!(agg.aggs[0].arg.is_none());
        assert_eq!(p.output_schema.len(), 1);
    }

    #[test]
    fn having_adds_hidden_aggregates() {
        let p =
            plan("SELECT sourceIP FROM uservisits GROUP BY sourceIP HAVING SUM(adRevenue) > 100");
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.output.len(), 1);
        assert_eq!(agg.aggs.len(), 1, "hidden aggregate for HAVING");
        assert!(agg.having_internal.is_some());
    }

    #[test]
    fn limit_pushdown_and_order_by_position() {
        let p = plan("SELECT pageURL FROM rankings LIMIT 7");
        assert!(p.limit_pushdown_allowed());
        let p = plan("SELECT pageURL, pageRank FROM rankings ORDER BY 2 DESC LIMIT 3");
        assert_eq!(p.order_by, vec![(1, true)]);
        assert!(!p.limit_pushdown_allowed());
    }

    #[test]
    fn planner_errors() {
        let snap = catalog().snapshot();
        let udfs = UdfRegistry::new();
        let bad = |sql: &str| plan_select(&parse_select(sql).unwrap(), &snap, &udfs);
        assert!(bad("SELECT x FROM missing_table").is_err());
        assert!(bad("SELECT nosuchcol FROM rankings").is_err());
        assert!(bad("SELECT pageURL, SUM(pageRank) FROM rankings").is_err()); // non-grouped column
        assert!(
            bad("SELECT * FROM rankings r JOIN uservisits u ON r.pageRank > u.adRevenue").is_err()
        );
    }

    #[test]
    fn distribute_by_resolves_to_output_column() {
        let p = plan("SELECT pageURL, pageRank FROM rankings DISTRIBUTE BY pageURL");
        assert_eq!(p.distribute_by, Some(0));
        let c = catalog();
        let bad = parse_select("SELECT pageRank FROM rankings DISTRIBUTE BY pageURL").unwrap();
        assert!(plan_select(&bad, &c.snapshot(), &UdfRegistry::new()).is_err());
    }
}
