//! Recursive-descent parser for the HiveQL subset used by the paper's
//! workloads: `SELECT`/`FROM`/`JOIN ... ON`/`WHERE`/`GROUP BY`/`HAVING`/
//! `ORDER BY`/`LIMIT`, `CREATE TABLE ... TBLPROPERTIES (...) AS SELECT ...
//! DISTRIBUTE BY col`, and `DROP TABLE`.

use shark_common::{Result, SharkError, Value};

use crate::ast::{BinaryOp, Expr, JoinClause, SelectItem, SelectStmt, Statement, TableRef};
use crate::lexer::{tokenize, Token};

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    // Allow a trailing semicolon.
    if p.peek_is(&Token::Semicolon) {
        p.advance();
    }
    if p.pos != p.tokens.len() {
        return Err(SharkError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(stmt)
}

/// Parse a SQL string that must be a `SELECT`.
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    match parse(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(SharkError::Parse(format!(
            "expected a SELECT statement, found {other:?}"
        ))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_is(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.peek_keyword(kw) {
            self.advance();
            Ok(())
        } else {
            Err(SharkError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.peek_is(t) {
            self.advance();
            Ok(())
        } else {
            Err(SharkError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn parse_identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.to_lowercase()),
            Some(Token::StringLit(s)) => Ok(s),
            other => Err(SharkError::Parse(format!(
                "expected an identifier, found {other:?}"
            ))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_keyword("select") {
            return Ok(Statement::Select(self.parse_select()?));
        }
        if self.consume_keyword("explain") {
            let analyze = self.consume_keyword("analyze");
            if !self.peek_keyword("select") {
                return Err(SharkError::Parse(
                    "EXPLAIN supports only SELECT queries".into(),
                ));
            }
            let query = self.parse_select()?;
            return Ok(Statement::Explain { analyze, query });
        }
        if self.consume_keyword("drop") {
            self.expect_keyword("table")?;
            let name = self.parse_identifier()?;
            return Ok(Statement::DropTable { name });
        }
        if self.consume_keyword("create") {
            self.expect_keyword("table")?;
            let name = self.parse_identifier()?;
            let mut properties = Vec::new();
            if self.consume_keyword("tblproperties") {
                self.expect(&Token::LParen)?;
                loop {
                    let key = self.parse_identifier()?;
                    self.expect(&Token::Eq)?;
                    let value = match self.advance() {
                        Some(Token::StringLit(s)) => s,
                        Some(Token::Ident(s)) => s,
                        Some(Token::Number(s)) => s,
                        other => {
                            return Err(SharkError::Parse(format!(
                                "expected a property value, found {other:?}"
                            )))
                        }
                    };
                    properties.push((key.to_lowercase(), value));
                    if self.peek_is(&Token::Comma) {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            self.expect_keyword("as")?;
            let query = self.parse_select()?;
            return Ok(Statement::CreateTableAs {
                name,
                properties,
                query,
            });
        }
        Err(SharkError::Parse(format!(
            "unsupported statement starting with {:?}",
            self.peek()
        )))
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("select")?;
        let mut stmt = SelectStmt::default();

        // Projection list.
        loop {
            if self.peek_is(&Token::Star) {
                self.advance();
                stmt.projections.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.consume_keyword("as")
                    || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s))
                {
                    Some(self.parse_identifier()?)
                } else {
                    None
                };
                stmt.projections.push(SelectItem::Expr { expr, alias });
            }
            if self.peek_is(&Token::Comma) {
                self.advance();
            } else {
                break;
            }
        }

        // FROM + JOINs.
        if self.consume_keyword("from") {
            stmt.from = Some(self.parse_table_ref()?);
            loop {
                let inner = self.consume_keyword("inner");
                if self.consume_keyword("join") {
                    let table = self.parse_table_ref()?;
                    self.expect_keyword("on")?;
                    let on = self.parse_expr()?;
                    stmt.joins.push(JoinClause { table, on });
                } else if inner {
                    return Err(SharkError::Parse("expected JOIN after INNER".into()));
                } else if self.peek_is(&Token::Comma) {
                    // Implicit cross-join syntax `FROM a, b` — the join
                    // condition must appear in WHERE; record the table and a
                    // TRUE condition, the planner rewrites equi-conditions.
                    self.advance();
                    let table = self.parse_table_ref()?;
                    stmt.joins.push(JoinClause {
                        table,
                        on: Expr::Literal(Value::Bool(true)),
                    });
                } else {
                    break;
                }
            }
        }

        if self.consume_keyword("where") {
            stmt.selection = Some(self.parse_expr()?);
        }
        if self.consume_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if self.peek_is(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        if self.consume_keyword("having") {
            stmt.having = Some(self.parse_expr()?);
        }
        if self.consume_keyword("distribute") {
            self.expect_keyword("by")?;
            stmt.distribute_by = Some(self.parse_identifier()?);
        }
        if self.consume_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.consume_keyword("desc") {
                    true
                } else {
                    self.consume_keyword("asc");
                    false
                };
                stmt.order_by.push((e, desc));
                if self.peek_is(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        if self.consume_keyword("limit") {
            match self.advance() {
                Some(Token::Number(n)) => {
                    stmt.limit = Some(
                        n.parse::<usize>()
                            .map_err(|_| SharkError::Parse(format!("invalid LIMIT value '{n}'")))?,
                    )
                }
                other => {
                    return Err(SharkError::Parse(format!(
                        "expected a number after LIMIT, found {other:?}"
                    )))
                }
            }
        }
        // DISTRIBUTE BY may also come last (Hive allows either position).
        if self.consume_keyword("distribute") {
            self.expect_keyword("by")?;
            stmt.distribute_by = Some(self.parse_identifier()?);
        }
        Ok(stmt)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let name = self.parse_identifier()?;
        let alias = if self.consume_keyword("as")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s))
        {
            Some(self.parse_identifier()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // ----- expressions, by precedence ----------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_keyword("or") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_keyword("and") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.consume_keyword("not") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.peek_keyword("is") {
            self.advance();
            let negated = self.consume_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN a AND b / [NOT] IN (...)
        let negated = if self.peek_keyword("not") {
            // Look ahead for BETWEEN / IN.
            let next = self.tokens.get(self.pos + 1);
            match next {
                Some(Token::Ident(s))
                    if s.eq_ignore_ascii_case("between") || s.eq_ignore_ascii_case("in") =>
                {
                    self.advance();
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if self.consume_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.consume_keyword("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if self.peek_is(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Plus,
                Some(Token::Minus) => BinaryOp::Minus,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Multiply,
                Some(Token::Slash) => BinaryOp::Divide,
                Some(Token::Percent) => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.peek_is(&Token::Minus) {
            self.advance();
            let inner = self.parse_unary()?;
            return Ok(Expr::binary(Expr::lit(0i64), BinaryOp::Minus, inner));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Some(Token::Number(n)) => {
                if n.contains('.') {
                    n.parse::<f64>()
                        .map(Expr::lit)
                        .map_err(|_| SharkError::Parse(format!("invalid number '{n}'")))
                } else {
                    n.parse::<i64>()
                        .map(Expr::lit)
                        .map_err(|_| SharkError::Parse(format!("invalid number '{n}'")))
                }
            }
            Some(Token::StringLit(s)) => Ok(Expr::lit(s)),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Star) => Ok(Expr::Star),
            Some(Token::Ident(id)) => {
                let lower = id.to_lowercase();
                match lower.as_str() {
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    "null" => return Ok(Expr::Literal(Value::Null)),
                    _ => {}
                }
                if is_reserved(&lower) {
                    return Err(SharkError::Parse(format!(
                        "unexpected keyword '{id}' in expression"
                    )));
                }
                // Function call?
                if self.peek_is(&Token::LParen) {
                    self.advance();
                    let distinct = self.consume_keyword("distinct");
                    let mut args = Vec::new();
                    if !self.peek_is(&Token::RParen) {
                        loop {
                            if self.peek_is(&Token::Star) {
                                self.advance();
                                args.push(Expr::Star);
                            } else {
                                args.push(self.parse_expr()?);
                            }
                            if self.peek_is(&Token::Comma) {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Function {
                        name: lower,
                        args,
                        distinct,
                    });
                }
                // Qualified column `alias.col`?
                if self.peek_is(&Token::Dot) {
                    self.advance();
                    let col = self.parse_identifier()?;
                    return Ok(Expr::Column(format!("{lower}.{col}")));
                }
                Ok(Expr::Column(lower))
            }
            other => Err(SharkError::Parse(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

/// Keywords that terminate an implicit alias.
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select",
        "from",
        "where",
        "group",
        "by",
        "having",
        "order",
        "limit",
        "join",
        "inner",
        "on",
        "and",
        "or",
        "not",
        "as",
        "between",
        "in",
        "is",
        "null",
        "desc",
        "asc",
        "distribute",
        "create",
        "table",
        "tblproperties",
        "drop",
        "union",
    ];
    RESERVED.contains(&word.to_lowercase().as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_pavlo_selection_query() {
        let s =
            parse_select("SELECT pageURL, pageRank FROM rankings WHERE pageRank > 300").unwrap();
        assert_eq!(s.projections.len(), 2);
        assert_eq!(
            s.from,
            Some(TableRef {
                name: "rankings".into(),
                alias: None
            })
        );
        assert!(s.selection.is_some());
    }

    #[test]
    fn parses_aggregation_with_substr_and_group_by() {
        let s = parse_select(
            "SELECT SUBSTR(sourceIP, 1, 7), SUM(adRevenue) FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 7)",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        match &s.projections[1] {
            SelectItem::Expr { expr, .. } => assert!(expr.contains_aggregate()),
            _ => panic!("expected expression"),
        }
    }

    #[test]
    fn parses_the_pavlo_join_query() {
        let s = parse_select(
            "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) as totalRevenue \
             FROM rankings AS R, uservisits AS UV \
             WHERE R.pageURL = UV.destURL \
             AND UV.visitDate BETWEEN 10971 AND 10978 \
             GROUP BY UV.sourceIP",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.alias.as_deref(), Some("uv"));
        assert_eq!(s.group_by.len(), 1);
        match &s.projections[2] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("totalrevenue")),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_create_table_as_with_properties_and_distribute_by() {
        let stmt = parse(
            "CREATE TABLE l_mem TBLPROPERTIES (\"shark.cache\" = \"true\", \"copartition\" = \"o_mem\") \
             AS SELECT * FROM lineitem DISTRIBUTE BY l_orderkey",
        )
        .unwrap();
        match stmt {
            Statement::CreateTableAs {
                name,
                properties,
                query,
            } => {
                assert_eq!(name, "l_mem");
                assert_eq!(properties.len(), 2);
                assert_eq!(properties[0].0, "shark.cache");
                assert_eq!(query.distribute_by.as_deref(), Some("l_orderkey"));
            }
            _ => panic!("expected CTAS"),
        }
    }

    #[test]
    fn parses_explicit_join_order_by_and_limit() {
        let s = parse_select(
            "SELECT l.l_orderkey, s.s_name FROM lineitem l JOIN supplier s ON l.l_suppkey = s.s_suppkey \
             WHERE s.s_acctbal >= 0 ORDER BY l.l_orderkey DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1, "DESC flag");
    }

    #[test]
    fn parses_count_star_count_distinct_in_and_not() {
        let s = parse_select(
            "SELECT country, COUNT(*), COUNT(DISTINCT customer_id) FROM sessions \
             WHERE country NOT IN ('US', 'CA') AND NOT exit_early GROUP BY country",
        )
        .unwrap();
        assert_eq!(s.projections.len(), 3);
        match &s.projections[2] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, .. },
                ..
            } => assert!(*distinct),
            _ => panic!(),
        }
        match s.selection.unwrap() {
            Expr::Binary { op, .. } => assert_eq!(op, BinaryOp::And),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_drop_table_and_rejects_garbage() {
        assert_eq!(
            parse("DROP TABLE logs").unwrap(),
            Statement::DropTable {
                name: "logs".into()
            }
        );
        assert!(parse("DELETE FROM t").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t extra garbage tokens ???").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * 2 FROM t").unwrap();
        match &s.projections[0] {
            SelectItem::Expr {
                expr: Expr::Binary { op, right, .. },
                ..
            } => {
                assert_eq!(*op, BinaryOp::Plus);
                assert!(matches!(
                    right.as_ref(),
                    Expr::Binary {
                        op: BinaryOp::Multiply,
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }
}
