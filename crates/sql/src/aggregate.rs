//! Aggregate functions and their distributed partial states.
//!
//! Aggregations execute in two phases, as in Hive and Shark: map-side
//! partial aggregation (an [`AggStates`] per group per map task) followed by
//! a shuffle and a reduce-side merge of the partial states. `AggStates`
//! therefore implements cheap cloning, merging and size estimation so it can
//! flow through the RDD shuffle machinery.

use std::collections::BTreeSet;

use shark_common::{EstimateSize, Value};

use crate::expr::BoundExpr;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(x)` / `COUNT(*)`
    Count,
    /// `COUNT(DISTINCT x)`
    CountDistinct,
    /// `SUM(x)`
    Sum,
    /// `AVG(x)`
    Avg,
    /// `MIN(x)`
    Min,
    /// `MAX(x)`
    Max,
}

impl AggFunc {
    /// Resolve an aggregate function by name (returns `None` for scalar
    /// functions).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" | "mean" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }

    /// Default output column name, e.g. `sum(revenue)` → `"sum"`.
    pub fn display_name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// A bound aggregate expression: the function plus its (optional) argument
/// expression over the pre-aggregation row layout. `COUNT(*)` has no
/// argument.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` for `COUNT(*)`).
    pub arg: Option<BoundExpr>,
}

impl AggExpr {
    /// Evaluate the argument for one input row (`None` for `COUNT(*)`).
    pub fn arg_value(&self, row: &shark_common::Row) -> Option<Value> {
        self.arg.as_ref().map(|e| e.eval(row))
    }
}

/// The partial state of one aggregate for one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Row / value count.
    Count(u64),
    /// Distinct values seen so far.
    CountDistinct(BTreeSet<Value>),
    /// Running sum (`seen` distinguishes SUM of no rows = NULL).
    Sum {
        /// Accumulated sum.
        sum: f64,
        /// Whether any non-null value has been observed.
        seen: bool,
    },
    /// Running sum + count for AVG.
    Avg {
        /// Accumulated sum.
        sum: f64,
        /// Number of non-null values.
        count: u64,
    },
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
}

impl AggState {
    /// Initial state for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(BTreeSet::new()),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Fold one input value into the state. `value = None` means `COUNT(*)`
    /// semantics (count the row regardless of nulls).
    pub fn update(&mut self, value: Option<&Value>) {
        match self {
            AggState::Count(c) => {
                match value {
                    Some(v) if v.is_null() => {}
                    _ => *c += 1,
                };
            }
            AggState::CountDistinct(set) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        set.insert(v.clone());
                    }
                }
            }
            AggState::Sum { sum, seen } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        *sum += f;
                        *seen = true;
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
            AggState::Min(m) => {
                if let Some(v) = value {
                    if !v.is_null() && m.as_ref().map(|cur| v < cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(v) = value {
                    if !v.is_null() && m.as_ref().map(|cur| v > cur).unwrap_or(true) {
                        *m = Some(v.clone());
                    }
                }
            }
        }
    }

    /// Merge another partial state into this one (reduce side).
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b.iter().cloned()),
            (AggState::Sum { sum: a, seen: sa }, AggState::Sum { sum: b, seen: sb }) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::Avg { sum: a, count: ca }, AggState::Avg { sum: b, count: cb }) => {
                *a += b;
                *ca += cb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().map(|av| bv < av).unwrap_or(true) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().map(|av| bv > av).unwrap_or(true) {
                        *a = Some(bv.clone());
                    }
                }
            }
            _ => panic!("cannot merge mismatched aggregate states"),
        }
    }

    /// Produce the final SQL value of the aggregate.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c as i64),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::Sum { sum, seen } => {
                if *seen {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count > 0 {
                    Value::Float(*sum / *count as f64)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

impl EstimateSize for AggState {
    fn estimated_size(&self) -> usize {
        match self {
            AggState::Count(_) => 9,
            AggState::CountDistinct(set) => {
                9 + set.iter().map(|v| v.estimated_size()).sum::<usize>()
            }
            AggState::Sum { .. } => 10,
            AggState::Avg { .. } => 17,
            AggState::Min(v) | AggState::Max(v) => {
                1 + v.as_ref().map(|v| v.estimated_size()).unwrap_or(0)
            }
        }
    }
}

/// The partial states of every aggregate in a query, for one group.
#[derive(Debug, Clone, PartialEq)]
pub struct AggStates(pub Vec<AggState>);

impl AggStates {
    /// Initial states for a list of aggregate expressions.
    pub fn new(aggs: &[AggExpr]) -> AggStates {
        AggStates(aggs.iter().map(|a| AggState::new(a.func)).collect())
    }

    /// Fold one input row into all states.
    pub fn update_row(&mut self, aggs: &[AggExpr], row: &shark_common::Row) {
        for (state, agg) in self.0.iter_mut().zip(aggs) {
            let v = agg.arg_value(row);
            state.update(v.as_ref());
        }
    }

    /// Merge another group state into this one.
    pub fn merge(mut self, other: &AggStates) -> AggStates {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            a.merge(b);
        }
        self
    }

    /// Finalize all aggregates.
    pub fn finalize(&self) -> Vec<Value> {
        self.0.iter().map(AggState::finalize).collect()
    }
}

impl EstimateSize for AggStates {
    fn estimated_size(&self) -> usize {
        4 + self.0.iter().map(|s| s.estimated_size()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_avg_min_max() {
        let mut count = AggState::new(AggFunc::Count);
        let mut sum = AggState::new(AggFunc::Sum);
        let mut avg = AggState::new(AggFunc::Avg);
        let mut min = AggState::new(AggFunc::Min);
        let mut max = AggState::new(AggFunc::Max);
        for v in [1i64, 5, 3] {
            let val = Value::Int(v);
            count.update(Some(&val));
            sum.update(Some(&val));
            avg.update(Some(&val));
            min.update(Some(&val));
            max.update(Some(&val));
        }
        assert_eq!(count.finalize(), Value::Int(3));
        assert_eq!(sum.finalize(), Value::Float(9.0));
        assert_eq!(avg.finalize(), Value::Float(3.0));
        assert_eq!(min.finalize(), Value::Int(1));
        assert_eq!(max.finalize(), Value::Int(5));
    }

    #[test]
    fn nulls_are_ignored_except_count_star() {
        let mut count_star = AggState::new(AggFunc::Count);
        let mut sum = AggState::new(AggFunc::Sum);
        count_star.update(None); // COUNT(*) counts rows
        count_star.update(None);
        sum.update(Some(&Value::Null));
        assert_eq!(count_star.finalize(), Value::Int(2));
        assert_eq!(sum.finalize(), Value::Null);

        let mut count_col = AggState::new(AggFunc::Count);
        count_col.update(Some(&Value::Null));
        count_col.update(Some(&Value::Int(1)));
        assert_eq!(count_col.finalize(), Value::Int(1));
    }

    #[test]
    fn count_distinct_and_merge() {
        let mut a = AggState::new(AggFunc::CountDistinct);
        let mut b = AggState::new(AggFunc::CountDistinct);
        for v in ["x", "y", "x"] {
            a.update(Some(&Value::str(v)));
        }
        for v in ["y", "z"] {
            b.update(Some(&Value::str(v)));
        }
        a.merge(&b);
        assert_eq!(a.finalize(), Value::Int(3));
    }

    #[test]
    fn merge_partial_states_equals_single_pass() {
        let aggs = vec![
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(BoundExpr::Column(0)),
            },
            AggExpr {
                func: AggFunc::Count,
                arg: None,
            },
        ];
        let rows: Vec<shark_common::Row> = (0..10)
            .map(|i| shark_common::Row::new(vec![Value::Int(i)]))
            .collect();
        // Single pass.
        let mut single = AggStates::new(&aggs);
        for r in &rows {
            single.update_row(&aggs, r);
        }
        // Two partial passes, merged.
        let mut p1 = AggStates::new(&aggs);
        let mut p2 = AggStates::new(&aggs);
        for r in &rows[..4] {
            p1.update_row(&aggs, r);
        }
        for r in &rows[4..] {
            p2.update_row(&aggs, r);
        }
        let merged = p1.merge(&p2);
        assert_eq!(single.finalize(), merged.finalize());
        assert_eq!(merged.finalize(), vec![Value::Float(45.0), Value::Int(10)]);
    }

    #[test]
    fn from_name_distinguishes_aggregates_from_scalars() {
        assert_eq!(AggFunc::from_name("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("substr"), None);
        assert_eq!(AggFunc::Count.display_name(), "count");
    }
}
