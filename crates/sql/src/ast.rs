//! Abstract syntax tree for the HiveQL subset Shark's experiments use.

use shark_common::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Select(SelectStmt),
    /// `CREATE TABLE name [TBLPROPERTIES(...)] AS SELECT ... [DISTRIBUTE BY col]`
    /// — the statement Shark uses to load tables into the memstore and to
    /// co-partition tables (§2, §3.4).
    CreateTableAs {
        /// Name of the table being created.
        name: String,
        /// `TBLPROPERTIES` key/value pairs (e.g. `"shark.cache" = "true"`).
        properties: Vec<(String, String)>,
        /// The defining query.
        query: SelectStmt,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// `EXPLAIN [ANALYZE] SELECT …` — render the query plan; with
    /// `ANALYZE`, execute the query under tracing and annotate each
    /// operator with recorded times, rows, bytes and cache activity.
    Explain {
        /// Whether to execute the query and annotate the plan with the
        /// recorded trace (`EXPLAIN ANALYZE`) or only render it.
        analyze: bool,
        /// The query being explained.
        query: SelectStmt,
    },
}

impl Statement {
    /// Lower-cased names of every table the statement reads (not the table a
    /// `CREATE TABLE … AS` writes). Used by the server layer to touch the
    /// right cache entries before execution.
    pub fn referenced_tables(&self) -> Vec<String> {
        match self {
            Statement::Select(stmt) => stmt.referenced_tables(),
            Statement::CreateTableAs { query, .. } => query.referenced_tables(),
            Statement::DropTable { .. } => Vec::new(),
            Statement::Explain { query, .. } => query.referenced_tables(),
        }
    }
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// The projection list.
    pub projections: Vec<SelectItem>,
    /// The primary table.
    pub from: Option<TableRef>,
    /// `JOIN ... ON ...` clauses, applied left to right.
    pub joins: Vec<JoinClause>,
    /// The `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` expressions with a descending flag.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
    /// `DISTRIBUTE BY column` (hash partitioning of the result, §3.4).
    pub distribute_by: Option<String>,
}

impl SelectStmt {
    /// Lower-cased names of the tables in `FROM` and every `JOIN`, deduped
    /// in first-appearance order.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut names = Vec::new();
        let mut push = |name: &str| {
            let lower = name.to_lowercase();
            if !names.contains(&lower) {
                names.push(lower);
            }
        };
        if let Some(from) = &self.from {
            push(&from.name);
        }
        for join in &self.joins {
            push(&join.table.name);
        }
        names
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// One `JOIN table [alias] ON condition` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The `ON` condition (must be an equality between two columns for the
    /// supported equi-joins).
    pub on: Expr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Multiply,
    /// `/`
    Divide,
    /// `%`
    Modulo,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// Whether the operator is a comparison producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A possibly qualified column reference (`col` or `alias.col`).
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// A function call (scalar function, aggregate, or registered UDF).
    Function {
        /// Function name, lower-cased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `DISTINCT` inside an aggregate, e.g. `COUNT(DISTINCT x)`.
        distinct: bool,
    },
    /// `*` inside `COUNT(*)`.
    Star,
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Convenience constructor for column references.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Convenience constructor for literals.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Whether the expression contains an aggregate function call
    /// (`count`, `sum`, `avg`, `min`, `max`).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                crate::aggregate::AggFunc::from_name(name).is_some()
                    || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            _ => false,
        }
    }

    /// Collect all column names referenced by the expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => out.push(name.clone()),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) => e.referenced_columns(out),
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Literal(_) | Expr::Star => {}
        }
    }

    /// Split a predicate into its top-level `AND` conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut out = left.split_conjuncts();
                out.extend(right.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_conjuncts_flattens_ands() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(1i64)),
            BinaryOp::And,
            Expr::binary(
                Expr::binary(Expr::col("b"), BinaryOp::Eq, Expr::lit("x")),
                BinaryOp::And,
                Expr::binary(Expr::col("c"), BinaryOp::Lt, Expr::lit(2i64)),
            ),
        );
        assert_eq!(e.split_conjuncts().len(), 3);
    }

    #[test]
    fn referenced_columns_and_aggregates() {
        let e = Expr::Function {
            name: "sum".into(),
            args: vec![Expr::binary(
                Expr::col("revenue"),
                BinaryOp::Multiply,
                Expr::col("rate"),
            )],
            distinct: false,
        };
        assert!(e.contains_aggregate());
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["revenue".to_string(), "rate".to_string()]);
        assert!(!Expr::col("a").contains_aggregate());
    }
}
