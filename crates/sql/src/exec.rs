//! The physical executor: turns a [`QueryPlan`] into RDD operations and runs
//! them on the simulated cluster.
//!
//! Three execution modes reproduce the three systems compared throughout the
//! paper's evaluation:
//!
//! * **Shark** ([`ExecConfig::shark`]) — columnar memstore scans with map
//!   pruning, Partial DAG Execution for join-strategy selection and reducer
//!   coalescing, broadcast (map) joins, co-partitioned joins.
//! * **Shark (disk)** ([`ExecConfig::shark_disk`]) — the same engine reading
//!   the base data from the simulated DFS instead of the memstore.
//! * **Hive** ([`ExecConfig::hive`]) — static plans, fixed reducer counts, no
//!   broadcast decisions, run under the Hadoop cost profile (high task
//!   launch overhead, sort-based disk shuffle, inter-job DFS
//!   materialization).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shark_cluster::{DfsModel, OutputSink};
use shark_columnar::ColumnarPartition;
use shark_common::size::estimate_slice;
use shark_common::{Result, Row, Schema, SharkError, Value};
use shark_rdd::{Aggregator, PipelinedJob, Rdd, RddContext, StreamingJob, TaskMetrics};

use crate::aggregate::{AggExpr, AggStates};
use crate::catalog::{CatalogSnapshot, TableMeta};
use crate::expr::BoundExpr;
use crate::pde::{choose_join_strategy, coalesce_buckets, JoinStrategy};
use crate::plan::{AggregateNode, OutputRef, QueryPlan, ScanNode};
use crate::scan::{prune_partitions, DfsScanRdd, MemAggScanRdd, MemTableScanRdd};

/// Which engine the executor should emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// The Shark engine.
    Shark {
        /// Enable Partial DAG Execution (run-time join selection, reducer
        /// coalescing). Disabling it gives the "static plan" ablation.
        pde: bool,
        /// Read cached tables from the columnar memstore. Disabling it gives
        /// the "Shark (disk)" series.
        use_memstore: bool,
    },
    /// The Hive/Hadoop baseline: static plans, fixed reducers, no memstore.
    Hive,
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Engine mode.
    pub mode: ExecutionMode,
    /// Reducer count used by static plans (Hive is very sensitive to this,
    /// §6.3).
    pub default_reducers: usize,
    /// Number of fine-grained map-output buckets PDE materializes before
    /// deciding the reduce-side plan.
    pub fine_buckets: usize,
    /// Broadcast threshold in (in-process) bytes for map-join selection.
    pub broadcast_threshold: u64,
    /// Target (in-process) bytes per coalesced reduce task.
    pub target_partition_bytes: u64,
    /// Upper bound on the number of reduce tasks.
    pub max_reducers: usize,
    /// §6.3.2 "static + adaptive": pre-shuffle only the side the static
    /// optimizer predicts to be small, avoiding map tasks on the large table
    /// when a map join is chosen.
    pub pde_prioritize_small_side: bool,
    /// How many result partitions a [`QueryStream`] may execute ahead of the
    /// consumer (0 = serial: each partition runs inside `next_batch`).
    pub stream_prefetch: usize,
    /// Batch-at-a-time execution over the compressed columnar encodings
    /// (selection vectors, run skipping, dictionary-coded group-by keys,
    /// late materialization). Off falls back to the decode-then-filter row
    /// path; both produce byte-identical results.
    pub vectorized: bool,
}

impl ExecConfig {
    /// Full Shark configuration (memstore + PDE + static analysis).
    pub fn shark() -> ExecConfig {
        ExecConfig {
            mode: ExecutionMode::Shark {
                pde: true,
                use_memstore: true,
            },
            default_reducers: 64,
            fine_buckets: 256,
            broadcast_threshold: 4 * 1024 * 1024,
            target_partition_bytes: 256 * 1024,
            max_reducers: 1000,
            pde_prioritize_small_side: true,
            stream_prefetch: 2,
            vectorized: true,
        }
    }

    /// Shark reading from disk (no memstore).
    pub fn shark_disk() -> ExecConfig {
        ExecConfig {
            mode: ExecutionMode::Shark {
                pde: true,
                use_memstore: false,
            },
            ..ExecConfig::shark()
        }
    }

    /// Shark with PDE disabled (static plans) — the ablation baseline of
    /// Figure 8.
    pub fn shark_static() -> ExecConfig {
        ExecConfig {
            mode: ExecutionMode::Shark {
                pde: false,
                use_memstore: true,
            },
            ..ExecConfig::shark()
        }
    }

    /// The Hive baseline.
    pub fn hive() -> ExecConfig {
        ExecConfig {
            mode: ExecutionMode::Hive,
            default_reducers: 64,
            fine_buckets: 64,
            broadcast_threshold: 0,
            target_partition_bytes: 256 * 1024,
            max_reducers: 1000,
            pde_prioritize_small_side: false,
            stream_prefetch: 0,
            // Hive's scans are row-oriented from the DFS; the flag only
            // affects memstore scans and is kept off for fidelity.
            vectorized: false,
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::shark()
    }
}

/// The result of executing a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result schema.
    pub schema: Schema,
    /// Result rows (ordered if the query had ORDER BY).
    pub rows: Vec<Row>,
    /// Simulated execution time in seconds.
    pub sim_seconds: f64,
    /// Wall-clock execution time of the scaled-down run.
    pub real_seconds: f64,
    /// Human-readable description of the plan.
    pub plan: String,
    /// Run-time decisions taken (join strategy, pruning, coalescing, …).
    pub notes: Vec<String>,
}

/// A query result left as an RDD (the `sql2rdd` API of §4.1).
pub struct TableRdd {
    /// The rows of the query result.
    pub rdd: Rdd<Row>,
    /// Their schema.
    pub schema: Schema,
    /// Run-time decisions taken while building the pipeline.
    pub notes: Vec<String>,
    /// When the whole pipeline is a narrow chain over one memstore scan
    /// (result partition `i` is exactly scan partition `selected[i]`), the
    /// scan's identity — what top-k pushdown needs to consult partition
    /// statistics.
    pub(crate) single_scan: Option<SingleScanInfo>,
    /// The catalog snapshot the plan was resolved against, pinned so that
    /// deferred reclamation of dropped tables waits for this pipeline
    /// (`sql2rdd` results may be consumed long after planning).
    pub(crate) snapshot: Option<Arc<CatalogSnapshot>>,
}

/// Identity of the lone memstore scan feeding a narrow result pipeline.
pub(crate) struct SingleScanInfo {
    table: Arc<TableMeta>,
    /// Original table-partition indices, aligned with result partitions.
    selected: Vec<usize>,
    /// Original column index of each projected column.
    projection: Vec<usize>,
}

/// Report of loading a table into the memstore (§3.3, §6.2.4).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Table name.
    pub table: String,
    /// Simulated load time in seconds.
    pub sim_seconds: f64,
    /// Uncompressed input bytes (in-process scale).
    pub input_bytes: u64,
    /// Columnar, compressed bytes stored in the memstore.
    pub stored_bytes: u64,
    /// Rows loaded.
    pub rows: u64,
    /// Partitions this call actually loaded (0 means everything was already
    /// resident — a pure cache hit).
    pub newly_loaded_partitions: usize,
}

/// Estimate the in-process serialized size of a table by sampling its first
/// partition (used by the static side of join planning and the Hive
/// intermediate-materialization charge).
pub fn estimate_table_bytes(table: &TableMeta) -> u64 {
    let sample = (table.base)(0);
    let per = estimate_slice(&sample) as u64;
    per * table.num_partitions as u64
}

/// Load a cached table's partitions into its memstore, charging the
/// simulated cluster for the load stage. Safe to call repeatedly (already
/// loaded partitions are skipped).
pub fn load_table(ctx: &RddContext, table: &Arc<TableMeta>) -> Result<LoadReport> {
    let mem = table.cached.clone().ok_or_else(|| {
        SharkError::Execution(format!("table '{}' is not marked as cached", table.name))
    })?;
    let scale = ctx.config().sim_scale;
    let cost_model = ctx.cost_model().clone();
    let mut specs = Vec::new();
    let mut input_bytes = 0u64;
    let mut rows_total = 0u64;
    let mut newly_loaded = 0usize;
    for p in 0..table.num_partitions {
        if mem.is_loaded(p) {
            continue;
        }
        let rows = (table.base)(p);
        let bytes = estimate_slice(&rows) as u64;
        input_bytes += bytes;
        rows_total += rows.len() as u64;
        let columnar = Arc::new(ColumnarPartition::from_rows(&table.schema, &rows));
        let cost = shark_cluster::TaskCostInput::new(
            (rows.len() as f64 * scale) as u64,
            (bytes as f64 * scale) as u64,
            (rows.len() as f64 * scale) as u64,
            (columnar.memory_bytes() as f64 * scale) as u64,
            shark_cluster::InputSource::Dfs,
            shark_cluster::OutputSink::Memory,
            4.0,
        );
        specs.push(shark_cluster::TaskSpec::on_node(
            cost_model.task_duration(&cost),
            mem.placement(p),
        ));
        mem.put(p, columnar);
        newly_loaded += 1;
    }
    let before = ctx.simulated_time();
    if !specs.is_empty() {
        ctx.simulate_external_stage(&specs);
    }
    Ok(LoadReport {
        table: table.name.clone(),
        sim_seconds: ctx.simulated_time() - before,
        input_bytes,
        stored_bytes: mem.memory_bytes(),
        rows: rows_total,
        newly_loaded_partitions: newly_loaded,
    })
}

/// Execute a plan fully: run the pipeline, collect, sort and limit.
pub fn execute(ctx: &RddContext, plan: &QueryPlan, cfg: &ExecConfig) -> Result<QueryResult> {
    let wall = std::time::Instant::now();
    let sim_start = ctx.simulated_time();
    let table_rdd = {
        let _span = shark_obs::span("optimize");
        build_pipeline(ctx, plan, cfg)?
    };
    let rows_span = shark_obs::span("stage-launch");
    let mut rows = table_rdd.rdd.collect()?;
    if let Some(span) = &rows_span {
        span.set_rows(rows.len() as u64);
    }
    drop(rows_span);

    // Driver-side ORDER BY / LIMIT (result sets at this point are small).
    if !plan.order_by.is_empty() {
        let _span = shark_obs::span("sort-merge");
        let keys = plan.order_by.clone();
        rows.sort_by(|a, b| compare_rows(a, b, &keys));
    }
    if let Some(n) = plan.limit {
        rows.truncate(n);
    }

    Ok(QueryResult {
        schema: plan.output_schema.clone(),
        rows,
        sim_seconds: ctx.simulated_time() - sim_start,
        real_seconds: wall.elapsed().as_secs_f64(),
        plan: plan.describe(),
        notes: table_rdd.notes,
    })
}

/// Default number of rows per batch emitted by a [`QueryStream`].
pub const DEFAULT_STREAM_BATCH_ROWS: usize = 1024;

/// What a [`QueryStream`] has delivered so far.
#[derive(Debug, Clone, Default)]
pub struct StreamProgress {
    /// Rows handed to the consumer.
    pub rows_streamed: u64,
    /// Result-stage partitions actually executed.
    pub partitions_streamed: usize,
    /// Partitions the full result stage has (a LIMIT stream may finish
    /// having executed fewer).
    pub partitions_total: usize,
    /// Wall-clock time from opening the stream until the first row was
    /// delivered. `None` until then.
    pub time_to_first_row: Option<Duration>,
    /// Simulated cluster seconds charged up to the first delivered row.
    pub sim_seconds_to_first_row: Option<f64>,
    /// Batch deliveries that found their partition already computed by a
    /// prefetch worker (the consumer never waited for the task to start).
    pub prefetch_hits: u64,
}

/// A cursor over a query's result: row batches are delivered as partitions
/// finish instead of materializing the whole result set on the driver — the
/// paper's interactivity story (§2) taken to its conclusion.
///
/// * Without ORDER BY, partitions deliver in order, each producing one
///   batch; a LIMIT terminates the stream — and stops launching partition
///   tasks — as soon as enough rows have been delivered.
/// * With ORDER BY, every partition is sorted inside its own task (the sort
///   is charged to that task's simulated cost) and the driver k-way-merges
///   the sorted runs, emitting batches of at most `batch_size` rows; LIMIT
///   stops the merge after the first `k` rows.
/// * With ORDER BY **and** LIMIT `k` — top-k pushdown: each partition task
///   keeps only its `k` best rows in a bounded buffer instead of sorting
///   everything, and when the scan's partition statistics cover the sort
///   key, partitions execute best-bound first and the stream stops
///   launching partitions once `k` delivered rows provably beat every
///   unexecuted partition's bound.
///
/// Independently of the delivery mode, a prefetch depth `n ≥ 1` (see
/// [`ExecConfig::stream_prefetch`] / [`QueryStream::with_prefetch`]) lets a
/// bounded worker pool execute up to `n` partitions ahead of the consumer;
/// delivery order, results and simulated timings are identical to the
/// serial path, only wall-clock time changes.
pub struct QueryStream {
    /// Trace context captured at stream creation: batch deliveries (which
    /// happen later, often from another thread) re-attach it so their
    /// spans join the query's trace.
    trace: Option<shark_obs::TraceContext>,
    job: PipelinedJob<Row, Vec<Row>>,
    schema: Schema,
    plan_desc: String,
    notes: Vec<String>,
    order_by: Vec<(usize, bool)>,
    /// Rows still to emit under LIMIT (`None` = unlimited).
    remaining: Option<usize>,
    /// Sorted runs gathered for the ORDER BY path, as
    /// `(partition, rows, cursor)`, kept sorted by partition index so the
    /// merge breaks ties exactly like the blocking path's stable sort.
    runs: Vec<(usize, Vec<Row>, usize)>,
    /// ORDER BY only: whether every needed run has been gathered.
    gathered: bool,
    /// Top-k skip rule: per planned-position key bound (the partition's
    /// stat min for ASC / max for DESC). `None` disables partition
    /// skipping.
    skip_bounds: Option<Vec<Value>>,
    batch_size: usize,
    wall: Instant,
    progress: StreamProgress,
    /// Whether the effective prefetch depth has been noted (deferred to the
    /// first batch because a serving layer may clamp the depth after
    /// construction).
    prefetch_noted: bool,
    /// The catalog snapshot this cursor's plan was resolved against. Held
    /// until the stream closes, so a table dropped mid-stream keeps its
    /// memstore resident (deferred reclamation) and the cursor drains
    /// byte-identical to a snapshot-time blocking query.
    snapshot: Option<Arc<CatalogSnapshot>>,
    /// When the pipeline is a narrow chain over one memstore scan: the
    /// scanned table's name plus, aligned with result partitions, the
    /// original table partition each result partition reads. Lets serving
    /// layers pin only the partitions a cursor has actually consumed.
    scan_pin: Option<(String, Vec<usize>)>,
    /// Original table partitions whose result partition has been executed
    /// and delivered to this cursor, in delivery order.
    delivered_scan: Vec<usize>,
    done: bool,
}

/// Compare two rows under an ORDER BY key list.
fn compare_rows(a: &Row, b: &Row, keys: &[(usize, bool)]) -> std::cmp::Ordering {
    for (col, desc) in keys {
        let ord = a.get(*col).total_cmp(b.get(*col));
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

impl QueryStream {
    /// The result schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Human-readable plan description.
    pub fn plan(&self) -> &str {
        &self.plan_desc
    }

    /// Run-time decisions taken while building and running the pipeline.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Delivery progress so far.
    pub fn progress(&self) -> &StreamProgress {
        &self.progress
    }

    /// Whether the stream has delivered everything it will deliver.
    pub fn is_exhausted(&self) -> bool {
        self.done
    }

    /// Simulated cluster seconds charged by this query's own stages so far
    /// (a per-job sum, not a delta of the shared cluster clock — concurrent
    /// queries on the same context do not leak into it).
    pub fn sim_seconds(&self) -> f64 {
        self.job.sim_seconds()
    }

    /// Set the maximum rows per merged batch (ORDER BY path; unordered
    /// streams emit one batch per partition).
    pub fn with_batch_size(mut self, rows: usize) -> QueryStream {
        self.batch_size = rows.max(1);
        self
    }

    /// Override the prefetch depth ([`ExecConfig::stream_prefetch`] is the
    /// default): how many result partitions may execute ahead of the
    /// consumer. 0 = serial. Only honored before the first batch.
    pub fn with_prefetch(mut self, depth: usize) -> QueryStream {
        self.job.set_prefetch(depth);
        self
    }

    /// The effective prefetch depth.
    pub fn prefetch(&self) -> usize {
        self.job.prefetch()
    }

    /// Attach the pinned catalog snapshot this stream's plan was resolved
    /// against (set by `SqlSession`; released when the stream closes).
    pub(crate) fn with_snapshot(mut self, snapshot: Arc<CatalogSnapshot>) -> QueryStream {
        self.snapshot = Some(snapshot);
        self
    }

    /// The table this stream scans, when the whole pipeline is a narrow
    /// chain over a single memstore scan. Serving layers use this with
    /// [`QueryStream::delivered_scan_partitions`] to pin at partition
    /// granularity instead of holding the whole table for the cursor's
    /// lifetime.
    pub fn single_scan_table(&self) -> Option<&str> {
        self.scan_pin.as_ref().map(|(name, _)| name.as_str())
    }

    /// Original table partitions (of [`QueryStream::single_scan_table`])
    /// whose result partition has been executed and delivered, in delivery
    /// order. Empty for multi-table or aggregated pipelines.
    pub fn delivered_scan_partitions(&self) -> &[usize] {
        &self.delivered_scan
    }

    /// Advance the underlying job and record which original table
    /// partition the delivered result partition read.
    fn job_next(&mut self) -> Result<Option<(usize, Vec<Row>)>> {
        let next = self.job.next()?;
        if let (Some((partition, _)), Some((_, selected))) = (&next, &self.scan_pin) {
            if let Some(&original) = selected.get(*partition) {
                self.delivered_scan.push(original);
            }
        }
        Ok(next)
    }

    /// Produce the next batch of rows, or `None` when the stream is
    /// exhausted. Empty partitions are skipped, so a returned batch is
    /// never empty.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        let _attach = if shark_obs::active() {
            self.trace.as_ref().map(|t| t.attach())
        } else {
            None
        };
        let deliver_span = shark_obs::span("stream-deliver");
        if !self.prefetch_noted {
            self.prefetch_noted = true;
            if self.job.prefetch() > 0 {
                self.notes.push(format!(
                    "prefetch: up to {} partitions ahead of the cursor",
                    self.job.prefetch()
                ));
            }
        }
        if self.remaining == Some(0) {
            self.finish_stream();
            return Ok(None);
        }
        let batch = if self.order_by.is_empty() {
            self.next_unordered_batch()
        } else {
            self.next_merged_batch()
        };
        let batch = match batch {
            Ok(batch) => batch,
            Err(err) => {
                // Latch the failure: a retried next_batch() must not resume
                // past the failed partition (silently dropping its rows) or
                // re-materialize every ORDER BY run from scratch.
                self.done = true;
                self.job.finish();
                return Err(err);
            }
        };
        self.progress.prefetch_hits = self.job.prefetch_hits();
        match batch {
            Some(rows) => {
                if let Some(span) = &deliver_span {
                    span.set_rows(rows.len() as u64);
                }
                if self.progress.time_to_first_row.is_none() {
                    self.progress.time_to_first_row = Some(self.wall.elapsed());
                    self.progress.sim_seconds_to_first_row = Some(self.sim_seconds());
                }
                self.progress.rows_streamed += rows.len() as u64;
                if let Some(remaining) = self.remaining.as_mut() {
                    *remaining -= rows.len().min(*remaining);
                    if *remaining == 0 {
                        self.finish_stream();
                    }
                }
                Ok(Some(rows))
            }
            None => {
                self.finish_stream();
                Ok(None)
            }
        }
    }

    /// Stop the stream now: cancel any prefetch workers still running, join
    /// them (so no task outlives the call), and record the job report.
    /// Subsequent [`QueryStream::next_batch`] calls return `Ok(None)`.
    /// Idempotent; dropping the stream does the same.
    pub fn cancel(&mut self) {
        self.finish_stream();
    }

    /// Drain the stream into a fully materialized [`QueryResult`].
    pub fn into_result(mut self) -> Result<QueryResult> {
        let mut rows = Vec::new();
        while let Some(batch) = self.next_batch()? {
            rows.extend(batch);
        }
        Ok(QueryResult {
            schema: self.schema.clone(),
            rows,
            sim_seconds: self.sim_seconds(),
            real_seconds: self.wall.elapsed().as_secs_f64(),
            plan: self.plan_desc.clone(),
            notes: self.notes.clone(),
        })
    }

    /// One batch from the unordered path: the next non-empty partition's
    /// rows, truncated to the remaining LIMIT budget.
    fn next_unordered_batch(&mut self) -> Result<Option<Vec<Row>>> {
        while let Some((_partition, rows)) = self.job_next()? {
            self.progress.partitions_streamed += 1;
            if rows.is_empty() {
                continue;
            }
            let mut rows = rows;
            if let Some(remaining) = self.remaining {
                rows.truncate(remaining);
            }
            return Ok(Some(rows));
        }
        Ok(None)
    }

    /// Rows buffered so far whose first sort key sorts strictly before
    /// `bound` — the certificate the top-k skip rule needs.
    fn buffered_rows_beating(&self, bound: &Value) -> usize {
        let (col, desc) = self.order_by[0];
        self.runs
            .iter()
            .flat_map(|(_, rows, _)| rows.iter())
            .filter(|row| {
                let ord = row.get(col).total_cmp(bound);
                if desc {
                    ord == std::cmp::Ordering::Greater
                } else {
                    ord == std::cmp::Ordering::Less
                }
            })
            .count()
    }

    /// One batch from the ORDER BY path: gather per-partition sorted runs
    /// (stopping early when the top-k skip rule proves the rest can never
    /// contribute), then merge up to `batch_size` rows.
    fn next_merged_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if !self.gathered {
            loop {
                if let (Some(bounds), Some(k)) = (&self.skip_bounds, self.remaining) {
                    let pos = self.job.delivered();
                    // Planned order is sorted by bound, so beating the next
                    // partition's bound k times beats every later one too.
                    if pos < bounds.len() && k > 0 && self.buffered_rows_beating(&bounds[pos]) >= k
                    {
                        self.notes.push(format!(
                            "top-k pushdown: skipped {} result partitions via partition statistics",
                            self.job.planned() - pos
                        ));
                        if shark_obs::active() {
                            shark_obs::event(
                                "top-k-skip",
                                &[("skipped", &(self.job.planned() - pos).to_string())],
                            );
                        }
                        break;
                    }
                }
                let Some((partition, rows)) = self.job_next()? else {
                    break;
                };
                self.progress.partitions_streamed += 1;
                if rows.is_empty() {
                    continue;
                }
                // Keep runs ordered by partition index: the merge's tie-break
                // must match the stable driver sort of the blocking path.
                let at = self
                    .runs
                    .partition_point(|(existing, _, _)| *existing < partition);
                self.runs.insert(at, (partition, rows, 0usize));
            }
            self.gathered = true;
        }
        let budget = self
            .remaining
            .unwrap_or(usize::MAX)
            .min(self.batch_size)
            .max(1);
        let mut out = Vec::new();
        while out.len() < budget {
            // Pick the run whose head row sorts first (k is small: the
            // linear scan beats heap bookkeeping at simulation scale). Ties
            // go to the earliest partition, matching the stable sort.
            let mut best: Option<usize> = None;
            for (i, (_, rows, cursor)) in self.runs.iter().enumerate() {
                if *cursor >= rows.len() {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(j) => {
                        let (_, jrows, jcur) = &self.runs[j];
                        if compare_rows(&rows[*cursor], &jrows[*jcur], &self.order_by)
                            == std::cmp::Ordering::Less
                        {
                            Some(i)
                        } else {
                            Some(j)
                        }
                    }
                };
            }
            match best {
                Some(i) => {
                    let (_, rows, cursor) = &mut self.runs[i];
                    out.push(rows[*cursor].clone());
                    *cursor += 1;
                }
                None => break,
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }

    /// Mark the stream exhausted, note an early stop if one happened, and
    /// record the job report.
    fn finish_stream(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.progress.prefetch_hits = self.job.prefetch_hits();
        let total = self.progress.partitions_total;
        if self.progress.partitions_streamed < total {
            // Only claim "limit satisfied" when the limit actually ran out;
            // streams also stop early on statistics-proven top-k skips,
            // empty partitions left out of the plan, or cancellation.
            let reason = if self.remaining == Some(0) {
                " (limit satisfied)"
            } else {
                ""
            };
            self.notes.push(format!(
                "stream: stopped after {}/{} partitions{reason}",
                self.progress.partitions_streamed, total
            ));
        }
        self.job.finish();
        // Release the catalog snapshot pin: a table version dropped while
        // this cursor was open becomes reclaimable once no other snapshot
        // references it.
        self.snapshot = None;
    }
}

/// Keep only the `k` first rows of `rows` under the stable ordering given by
/// `keys`, using a bounded buffer of at most `2k` rows (the per-partition
/// heap of top-k pushdown). Produces exactly the first `k` rows a full
/// stable sort would.
fn topk_rows(rows: Vec<Row>, k: usize, keys: &[(usize, bool)], m: &mut TaskMetrics) -> Vec<Row> {
    if k == 0 {
        return Vec::new();
    }
    let cap = 2 * k;
    let mut buf: Vec<Row> = Vec::with_capacity(cap.min(rows.len()));
    for row in rows {
        buf.push(row);
        if buf.len() >= cap {
            m.add_sort(buf.len() as u64);
            buf.sort_by(|a, b| compare_rows(a, b, keys));
            buf.truncate(k);
        }
    }
    m.add_sort(buf.len() as u64);
    buf.sort_by(|a, b| compare_rows(a, b, keys));
    buf.truncate(k);
    buf
}

/// Plan a statistics-driven execution order for a top-k stream over a
/// single memstore scan: result partitions sorted by their sort-key bound
/// (stat min for ASC, max for DESC), each paired with that bound so the
/// driver can stop launching partitions once `k` delivered rows strictly
/// beat the next bound. Returns `None` — disabling skipping, not
/// correctness — whenever the statistics cannot bound the key:
/// never-loaded partitions (statistics survive policy evictions, so a
/// partially evicted table still gets the ordered launch), NULLs in the
/// key column (NULL sorts outside the min/max range), or a computed sort
/// key.
fn topk_partition_order(
    plan: &QueryPlan,
    info: &SingleScanInfo,
) -> Option<(Vec<usize>, Vec<Value>)> {
    plan.limit?;
    let (col, desc) = *plan.order_by.first()?;
    let expr = plan.projections.get(col)?;
    let BoundExpr::Column(projected_col) = expr else {
        return None;
    };
    let table_col = *info.projection.get(*projected_col)?;
    let mem = info.table.cached.as_ref()?;
    let mut keyed: Vec<(usize, Value)> = Vec::new();
    for (pos, &partition) in info.selected.iter().enumerate() {
        let stats = mem.stats(partition)?;
        let col_stats = stats.column(table_col);
        if col_stats.null_count > 0 {
            return None;
        }
        if stats.num_rows == 0 {
            // An empty partition contributes nothing: leave it out of the
            // planned order entirely.
            continue;
        }
        let bound = if desc {
            col_stats.max.clone()?
        } else {
            col_stats.min.clone()?
        };
        keyed.push((pos, bound));
    }
    keyed.sort_by(|a, b| {
        let ord = a.1.total_cmp(&b.1);
        let ord = if desc { ord.reverse() } else { ord };
        ord.then(a.0.cmp(&b.0))
    });
    let (order, bounds) = keyed.into_iter().unzip();
    Some((order, bounds))
}

/// Execute a plan incrementally: build the pipeline, run its shuffle
/// dependencies, and return a [`QueryStream`] cursor that executes result
/// partitions on demand (ahead of demand, with a prefetch depth ≥ 1). The
/// counterpart of [`execute`] for serving layers that care about
/// time-to-first-row.
pub fn execute_stream(ctx: &RddContext, plan: &QueryPlan, cfg: &ExecConfig) -> Result<QueryStream> {
    let wall = Instant::now();
    let table_rdd = {
        let _span = shark_obs::span("optimize");
        build_pipeline(ctx, plan, cfg)?
    };
    let mut notes = table_rdd.notes;
    notes.push("result streaming: partitions delivered incrementally".into());
    let streaming = {
        // Stage launch: runs every shuffle map stage the plan depends on.
        let _span = shark_obs::span("stage-launch");
        StreamingJob::new(ctx, &table_rdd.rdd, "sql-stream")?
    };
    let partitions_total = streaming.num_partitions();

    // Pick the per-partition task transformation and the execution order.
    let keys = plan.order_by.clone();
    let limit = plan.limit;
    let mut skip_bounds = None;
    let order: Vec<usize>;
    if keys.is_empty() {
        order = (0..partitions_total).collect();
    } else if let Some((planned, bounds)) = (limit.is_some())
        .then_some(table_rdd.single_scan.as_ref())
        .flatten()
        .and_then(|info| topk_partition_order(plan, info))
    {
        notes.push(format!(
            "top-k pushdown: per-partition bounded heaps (k={}), partitions ordered by statistics",
            limit.unwrap_or(0)
        ));
        order = planned;
        skip_bounds = Some(bounds);
    } else {
        if limit.is_some() {
            notes.push(format!(
                "top-k pushdown: per-partition bounded heaps (k={})",
                limit.unwrap_or(0)
            ));
        }
        order = (0..partitions_total).collect();
    }
    let task_keys = keys.clone();
    let mut job = streaming.pipelined(order, OutputSink::Collect, move |mut rows, m| {
        if task_keys.is_empty() {
            return rows;
        }
        match limit {
            Some(k) => {
                let span = shark_obs::span("top-k");
                let out = topk_rows(rows, k, &task_keys, m);
                if let Some(span) = &span {
                    span.set_rows(out.len() as u64);
                    span.annotate("k", &k.to_string());
                }
                out
            }
            None => {
                let span = shark_obs::span("sort-merge");
                m.add_sort(rows.len() as u64);
                rows.sort_by(|a, b| compare_rows(a, b, &task_keys));
                if let Some(span) = &span {
                    span.set_rows(rows.len() as u64);
                }
                rows
            }
        }
    });
    job.set_prefetch(cfg.stream_prefetch);
    let scan_pin = table_rdd
        .single_scan
        .as_ref()
        .map(|info| (info.table.name.clone(), info.selected.clone()));
    Ok(QueryStream {
        trace: shark_obs::current(),
        job,
        schema: plan.output_schema.clone(),
        plan_desc: plan.describe(),
        notes,
        order_by: keys,
        remaining: limit,
        runs: Vec::new(),
        gathered: false,
        skip_bounds,
        batch_size: DEFAULT_STREAM_BATCH_ROWS,
        wall,
        progress: StreamProgress {
            partitions_total,
            ..StreamProgress::default()
        },
        prefetch_noted: false,
        snapshot: None,
        scan_pin,
        delivered_scan: Vec::new(),
        done: false,
    })
}

/// Build the RDD pipeline for a plan without collecting it (the `sql2rdd`
/// path). ORDER BY and LIMIT-with-ORDER-BY are not applied; per-partition
/// LIMIT pushdown is.
pub fn build_pipeline(ctx: &RddContext, plan: &QueryPlan, cfg: &ExecConfig) -> Result<TableRdd> {
    let mut notes = Vec::new();

    // ----- fused vectorized scan + partial aggregate ----------------------------
    // A single-table memstore aggregation keeps the batch columnar from the
    // cache straight into the per-group partial states: no intermediate
    // `Row`s, dictionary-coded group-by keys aggregate by code.
    if let Some(rdd) = build_fused_aggregation(ctx, plan, cfg, &mut notes)? {
        return Ok(TableRdd {
            rdd,
            schema: plan.output_schema.clone(),
            notes,
            single_scan: None,
            snapshot: None,
        });
    }

    // ----- scans ---------------------------------------------------------------
    let mut scan_rdds: Vec<Rdd<Row>> = Vec::new();
    let mut scan_all_partitions: Vec<bool> = Vec::new();
    let mut scan_infos: Vec<Option<SingleScanInfo>> = Vec::new();
    for scan in &plan.scans {
        let (rdd, full, info) = build_scan(ctx, scan, cfg, &mut notes)?;
        scan_rdds.push(rdd);
        scan_all_partitions.push(full);
        scan_infos.push(info);
    }
    // Result partitions map 1:1 onto the scan's partitions only while the
    // pipeline stays narrow: one scan, no joins, no aggregation.
    let single_scan = if plan.scans.len() == 1 && plan.joins.is_empty() && plan.aggregate.is_none()
    {
        scan_infos.pop().flatten()
    } else {
        None
    };

    // ----- joins ---------------------------------------------------------------
    let mut combined = scan_rdds[0].clone();
    for (ji, join) in plan.joins.iter().enumerate() {
        let right = scan_rdds[join.right_scan].clone();
        combined = build_join(
            ctx,
            plan,
            cfg,
            &mut notes,
            combined,
            right,
            ji,
            scan_all_partitions[0] && scan_all_partitions[join.right_scan],
        )?;
    }

    // ----- residual filter ------------------------------------------------------
    if let Some(pred) = &plan.residual_filter {
        let p = pred.clone();
        let ops = pred.op_count();
        combined = combined.map_partitions_named("filter", ops, move |_, rows| {
            rows.into_iter().filter(|r| p.eval_predicate(r)).collect()
        });
    }

    // ----- aggregation or projection --------------------------------------------
    let output = if let Some(agg) = &plan.aggregate {
        build_aggregation(ctx, cfg, &mut notes, combined, agg)?
    } else {
        let projections = plan.projections.clone();
        let ops: f64 = projections.iter().map(BoundExpr::op_count).sum();
        let limit_push = if plan.limit_pushdown_allowed() {
            plan.limit
        } else {
            None
        };
        if let Some(n) = limit_push {
            notes.push(format!("limit pushed down to partitions (limit={n})"));
        }
        combined.map_partitions_named("project", ops.max(0.5), move |_, rows| {
            let mut out: Vec<Row> = rows
                .iter()
                .map(|r| Row::new(projections.iter().map(|p| p.eval(r)).collect()))
                .collect();
            if let Some(n) = limit_push {
                out.truncate(n);
            }
            out
        })
    };

    Ok(TableRdd {
        rdd: output,
        schema: plan.output_schema.clone(),
        notes,
        single_scan,
        snapshot: None,
    })
}

/// Build a scan RDD; returns the RDD, whether it covers every partition of
/// the table (needed for the co-partitioned join fast path), and — for
/// memstore scans — the scan identity top-k pushdown needs.
fn build_scan(
    ctx: &RddContext,
    scan: &ScanNode,
    cfg: &ExecConfig,
    notes: &mut Vec<String>,
) -> Result<(Rdd<Row>, bool, Option<SingleScanInfo>)> {
    let use_memstore = matches!(
        cfg.mode,
        ExecutionMode::Shark {
            use_memstore: true,
            ..
        }
    );
    if use_memstore && scan.table.is_cached() {
        let mem = scan.table.cached.as_ref().unwrap();
        let (selected, pruned) =
            prune_partitions(&scan.table, mem, &scan.filters, &scan.projection);
        if pruned > 0 {
            notes.push(format!(
                "map pruning: skipped {pruned}/{} partitions of {}",
                scan.table.num_partitions, scan.table.name
            ));
        }
        let full = selected.len() == scan.table.num_partitions;
        let rdd = MemTableScanRdd::create(
            ctx,
            scan.table.clone(),
            selected.clone(),
            scan.projection.clone(),
            scan.filters.clone(),
            cfg.vectorized,
        )?;
        let info = SingleScanInfo {
            table: scan.table.clone(),
            selected,
            projection: scan.projection.clone(),
        };
        Ok((rdd, full, Some(info)))
    } else {
        let rdd = DfsScanRdd::create(
            ctx,
            scan.table.clone(),
            scan.projection.clone(),
            scan.filters.clone(),
        );
        Ok((rdd, true, None))
    }
}

/// Whether the i-th join can use the co-partitioned fast path (§3.4).
fn copartition_applicable(plan: &QueryPlan, join_index: usize, scans_full: bool) -> bool {
    if join_index != 0 || plan.joins.len() != 1 || !scans_full {
        return false;
    }
    let join = &plan.joins[0];
    let left = &plan.scans[0];
    let right = &plan.scans[join.right_scan];
    let (lk, rk) = (&join.left_key, &join.right_key);
    let (lcol, rcol) = match (lk, rk) {
        (BoundExpr::Column(l), BoundExpr::Column(r)) => (*l, *r),
        _ => return false,
    };
    let l_orig = left.projection.get(lcol).copied();
    let r_orig = right.projection.get(rcol).copied();
    let co_declared = left
        .table
        .copartitioned_with
        .as_deref()
        .map(|n| n == right.table.name)
        .unwrap_or(false)
        || right
            .table
            .copartitioned_with
            .as_deref()
            .map(|n| n == left.table.name)
            .unwrap_or(false);
    co_declared
        && left.table.is_cached()
        && right.table.is_cached()
        && left.table.num_partitions == right.table.num_partitions
        && left.table.distribute_by.is_some()
        && right.table.distribute_by.is_some()
        && l_orig == left.table.distribute_by
        && r_orig == right.table.distribute_by
}

#[allow(clippy::too_many_arguments)]
fn build_join(
    ctx: &RddContext,
    plan: &QueryPlan,
    cfg: &ExecConfig,
    notes: &mut Vec<String>,
    left: Rdd<Row>,
    right: Rdd<Row>,
    join_index: usize,
    scans_full: bool,
) -> Result<Rdd<Row>> {
    let join = &plan.joins[join_index];
    let left_key = join.left_key.clone();
    let right_key = join.right_key.clone();

    // ----- co-partitioned map join (§3.4) --------------------------------------
    if matches!(cfg.mode, ExecutionMode::Shark { .. })
        && copartition_applicable(plan, join_index, scans_full)
    {
        notes.push(format!(
            "co-partitioned join between {} and {} (no shuffle)",
            plan.scans[0].table.name, plan.scans[join.right_scan].table.name
        ));
        let lk = left_key.clone();
        let rk = right_key.clone();
        let joined = left.zip_partitions(&right, move |lrows, rrows| {
            let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
            for r in &rrows {
                table.entry(rk.eval(r)).or_default().push(r.clone());
            }
            let mut out = Vec::new();
            for l in &lrows {
                if let Some(matches) = table.get(&lk.eval(l)) {
                    for r in matches {
                        out.push(l.concat(r));
                    }
                }
            }
            out
        });
        return Ok(joined);
    }

    let left_pairs = {
        let k = left_key.clone();
        let ops = k.op_count();
        left.map_partitions_named("join-key(left)", ops, move |_, rows| {
            rows.into_iter().map(|r| (k.eval(&r), r)).collect()
        })
    };
    let right_pairs = {
        let k = right_key.clone();
        let ops = k.op_count();
        right.map_partitions_named("join-key(right)", ops, move |_, rows| {
            rows.into_iter().map(|r| (k.eval(&r), r)).collect()
        })
    };

    let pde = matches!(cfg.mode, ExecutionMode::Shark { pde: true, .. });
    if !pde {
        // Static shuffle join (Hive and the no-PDE ablation).
        notes.push(format!(
            "static shuffle join with {} reduce tasks",
            cfg.default_reducers
        ));
        let joined = left_pairs
            .join(&right_pairs, cfg.default_reducers)
            .map(|(_, (l, r))| l.concat(&r));
        if matches!(cfg.mode, ExecutionMode::Hive) {
            charge_hive_intermediate(ctx, plan, notes);
        }
        return Ok(joined);
    }

    // ----- Partial DAG Execution join selection (§3.1.1) ------------------------
    // Static prior: which side does the optimizer expect to be small?
    let left_hint = plan.scans[0]
        .table
        .row_count_hint
        .unwrap_or(u64::MAX / 2)
        .saturating_add(if plan.scans[0].filters.is_empty() {
            0
        } else {
            1
        });
    let right_scan = &plan.scans[join.right_scan];
    let right_hint = right_scan.table.row_count_hint.unwrap_or(u64::MAX / 2);
    let right_filtered = !right_scan.filters.is_empty();
    let right_predicted_small = right_filtered || right_hint <= left_hint;

    if cfg.pde_prioritize_small_side {
        // "Static + adaptive": pre-shuffle only the predicted-small side.
        let (small_pairs, small_is_right) = if right_predicted_small {
            (right_pairs.clone(), true)
        } else {
            (left_pairs.clone(), false)
        };
        let pre = small_pairs.pre_shuffle(cfg.fine_buckets)?;
        let small_bytes = pre.summary().total_bytes;
        if small_bytes <= cfg.broadcast_threshold {
            notes.push(format!(
                "map join: broadcast {} side ({} bytes observed at run time), large table never pre-shuffled",
                if small_is_right { "build (right)" } else { "build (left)" },
                small_bytes
            ));
            let small_rows = pre.collect_all()?;
            ctx.charge_broadcast(estimate_slice(&small_rows) as u64);
            return Ok(broadcast_join(
                if small_is_right {
                    left_pairs
                } else {
                    right_pairs
                },
                small_rows,
                small_is_right,
            ));
        }
        // Too large to broadcast: pre-shuffle the other side and do an
        // aligned shuffle join.
        let other_pre = if small_is_right {
            left_pairs.pre_shuffle(cfg.fine_buckets)?
        } else {
            right_pairs.pre_shuffle(cfg.fine_buckets)?
        };
        let (lpre, rpre) = if small_is_right {
            (other_pre, pre)
        } else {
            (pre, other_pre)
        };
        return Ok(aligned_shuffle_join(cfg, notes, lpre, rpre));
    }

    // "Adaptive": pre-shuffle both sides, then decide from observed sizes.
    let lpre = left_pairs.pre_shuffle(cfg.fine_buckets)?;
    let rpre = right_pairs.pre_shuffle(cfg.fine_buckets)?;
    let strategy = choose_join_strategy(
        lpre.summary().total_bytes,
        rpre.summary().total_bytes,
        cfg.broadcast_threshold,
    );
    match strategy {
        JoinStrategy::BroadcastLeft => {
            notes.push(format!(
                "map join: broadcast left side ({} bytes observed)",
                lpre.summary().total_bytes
            ));
            let rows = lpre.collect_all()?;
            ctx.charge_broadcast(estimate_slice(&rows) as u64);
            Ok(broadcast_join(right_pairs, rows, false))
        }
        JoinStrategy::BroadcastRight => {
            notes.push(format!(
                "map join: broadcast right side ({} bytes observed)",
                rpre.summary().total_bytes
            ));
            let rows = rpre.collect_all()?;
            ctx.charge_broadcast(estimate_slice(&rows) as u64);
            Ok(broadcast_join(left_pairs, rows, true))
        }
        JoinStrategy::Shuffle => Ok(aligned_shuffle_join(cfg, notes, lpre, rpre)),
    }
}

/// Map-side (broadcast) join: the `stream` side keeps its partitioning; the
/// broadcast rows are hashed and probed in place. `broadcast_is_right`
/// controls output column order (left columns must precede right columns).
fn broadcast_join(
    stream: Rdd<(Value, Row)>,
    broadcast: Vec<(Value, Row)>,
    broadcast_is_right: bool,
) -> Rdd<Row> {
    let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
    for (k, r) in broadcast {
        table.entry(k).or_default().push(r);
    }
    let table = Arc::new(table);
    stream.map_partitions_named("map-join", 3.0, move |_, rows| {
        let mut out = Vec::new();
        for (k, row) in rows {
            if let Some(matches) = table.get(&k) {
                for m in matches {
                    out.push(if broadcast_is_right {
                        row.concat(m)
                    } else {
                        m.concat(&row)
                    });
                }
            }
        }
        out
    })
}

/// Shuffle join over two pre-shuffled sides: coalesce buckets by combined
/// size, read both sides with the same assignment, and hash-join per
/// partition.
fn aligned_shuffle_join(
    cfg: &ExecConfig,
    notes: &mut Vec<String>,
    left: shark_rdd::PreShuffledRdd<Value, Row>,
    right: shark_rdd::PreShuffledRdd<Value, Row>,
) -> Rdd<Row> {
    let combined_bytes: Vec<u64> = left
        .summary()
        .bucket_bytes
        .iter()
        .zip(&right.summary().bucket_bytes)
        .map(|(a, b)| a + b)
        .collect();
    let assignment = coalesce_buckets(
        &combined_bytes,
        cfg.target_partition_bytes,
        cfg.max_reducers,
    );
    notes.push(format!(
        "shuffle join: {} fine buckets coalesced into {} reduce tasks (skew factor {:.2})",
        combined_bytes.len(),
        assignment.len(),
        left.summary()
            .skew_factor()
            .max(right.summary().skew_factor())
    ));
    let left_rdd = left.read(assignment.clone());
    let right_rdd = right.read(assignment);
    left_rdd.zip_partitions(&right_rdd, |lrows, rrows| {
        let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
        for (k, r) in rrows {
            table.entry(k).or_default().push(r);
        }
        let mut out = Vec::new();
        for (k, l) in lrows {
            if let Some(matches) = table.get(&k) {
                for r in matches {
                    out.push(l.concat(r));
                }
            }
        }
        out
    })
}

/// Charge the Hive baseline for materializing intermediate results to the
/// replicated DFS between MapReduce jobs (§7 "intermediate outputs").
fn charge_hive_intermediate(ctx: &RddContext, plan: &QueryPlan, notes: &mut Vec<String>) {
    let bytes: u64 = plan
        .scans
        .iter()
        .map(|s| estimate_table_bytes(&s.table))
        .max()
        .unwrap_or(0)
        / 2;
    let scaled = (bytes as f64 * ctx.config().sim_scale) as u64;
    let dfs = DfsModel::default();
    let secs = dfs.write_seconds(&ctx.config().cluster, scaled)
        + dfs.read_seconds(&ctx.config().cluster, scaled);
    ctx.advance_simulation(secs);
    notes.push(format!(
        "hive: materialized intermediate job output to DFS (+{secs:.1}s simulated)"
    ));
}

/// Per-row expression cost of the partial-aggregation step (group keys plus
/// aggregate arguments) — charged identically by the row path's
/// `partial-aggregate` operator and the fused vectorized scan.
fn partial_agg_ops(agg: &AggregateNode) -> f64 {
    agg.group_exprs.iter().map(BoundExpr::op_count).sum::<f64>()
        + agg
            .aggs
            .iter()
            .filter_map(|a| a.arg.as_ref().map(BoundExpr::op_count))
            .sum::<f64>()
        + 2.0
}

/// When the whole plan is `scan → filter → aggregate` over one cached table
/// and vectorized execution is on, fuse the scan and the partial aggregation
/// into a single columnar operator and return the finished pipeline.
fn build_fused_aggregation(
    ctx: &RddContext,
    plan: &QueryPlan,
    cfg: &ExecConfig,
    notes: &mut Vec<String>,
) -> Result<Option<Rdd<Row>>> {
    let use_memstore = matches!(
        cfg.mode,
        ExecutionMode::Shark {
            use_memstore: true,
            ..
        }
    );
    let Some(agg) = &plan.aggregate else {
        return Ok(None);
    };
    if !cfg.vectorized
        || !use_memstore
        || plan.scans.len() != 1
        || !plan.joins.is_empty()
        || plan.residual_filter.is_some()
        || !plan.scans[0].table.is_cached()
    {
        return Ok(None);
    }
    let scan = &plan.scans[0];
    let mem = scan.table.cached.as_ref().unwrap();
    let (selected, pruned) = prune_partitions(&scan.table, mem, &scan.filters, &scan.projection);
    if pruned > 0 {
        notes.push(format!(
            "map pruning: skipped {pruned}/{} partitions of {}",
            scan.table.num_partitions, scan.table.name
        ));
    }
    let pairs = MemAggScanRdd::create(
        ctx,
        scan.table.clone(),
        selected,
        scan.projection.clone(),
        scan.filters.clone(),
        agg.group_exprs.clone(),
        agg.aggs.clone(),
        partial_agg_ops(agg),
    )?;
    notes.push("vectorized: fused scan + partial aggregation over columnar batches".into());
    Ok(Some(finish_aggregation(cfg, notes, pairs, agg)?))
}

/// Build the aggregation stage.
fn build_aggregation(
    _ctx: &RddContext,
    cfg: &ExecConfig,
    notes: &mut Vec<String>,
    input: Rdd<Row>,
    agg: &AggregateNode,
) -> Result<Rdd<Row>> {
    let group_exprs = agg.group_exprs.clone();
    let agg_exprs: Vec<AggExpr> = agg.aggs.clone();
    let ops = partial_agg_ops(agg);

    // Map each row to (group key, single-row partial state).
    let agg_for_map = agg_exprs.clone();
    let pairs = input.map_partitions_named("partial-aggregate", ops, move |_, rows| {
        rows.into_iter()
            .map(|r| {
                let key = Row::new(group_exprs.iter().map(|g| g.eval(&r)).collect());
                let mut state = AggStates::new(&agg_for_map);
                state.update_row(&agg_for_map, &r);
                (key, state)
            })
            .collect::<Vec<(Row, AggStates)>>()
    });
    finish_aggregation(cfg, notes, pairs, agg)
}

/// Shuffle the `(group key, partial state)` pairs, merge states per key, and
/// finalize output rows in SELECT order (applying HAVING). Shared by the
/// row-at-a-time and fused vectorized aggregation paths.
fn finish_aggregation(
    cfg: &ExecConfig,
    notes: &mut Vec<String>,
    pairs: Rdd<(Row, AggStates)>,
    agg: &AggregateNode,
) -> Result<Rdd<Row>> {
    let aggregator: Aggregator<AggStates, AggStates> = Aggregator::new(
        |s| s,
        |c: AggStates, s: AggStates| c.merge(&s),
        |a: AggStates, b: AggStates| a.merge(&b),
    );

    let pde = matches!(cfg.mode, ExecutionMode::Shark { pde: true, .. });
    let aggregated: Rdd<(Row, AggStates)> = if pde {
        let pre = pairs.pre_shuffle_combined(cfg.fine_buckets, aggregator.clone())?;
        let assignment = coalesce_buckets(
            &pre.summary().bucket_bytes,
            cfg.target_partition_bytes,
            cfg.max_reducers,
        );
        notes.push(format!(
            "aggregation: {} fine buckets coalesced into {} reduce tasks",
            pre.num_buckets(),
            assignment.len()
        ));
        pre.read_aggregated(assignment, aggregator)
    } else {
        notes.push(format!(
            "aggregation with {} (static) reduce tasks",
            cfg.default_reducers
        ));
        pairs.combine_by_key(cfg.default_reducers, aggregator)
    };

    // Finalize: build output rows in SELECT order, applying HAVING.
    let output_refs = agg.output.clone();
    let having = agg.having_internal.clone();
    let num_groups = agg.group_exprs.len();
    let final_ops = 2.0 + output_refs.len() as f64;
    Ok(
        aggregated.map_partitions_named("finalize-aggregate", final_ops, move |_, groups| {
            let mut out = Vec::with_capacity(groups.len());
            for (key, states) in groups {
                let finalized = states.finalize();
                // Internal layout: group values ++ aggregate values.
                let mut internal = key.into_values();
                internal.extend(finalized);
                let internal = Row::new(internal);
                if let Some(h) = &having {
                    if !h.eval_predicate(&internal) {
                        continue;
                    }
                }
                let row = Row::new(
                    output_refs
                        .iter()
                        .map(|r| match r {
                            OutputRef::Group(i) => internal.get(*i).clone(),
                            OutputRef::Agg(i) => internal.get(num_groups + *i).clone(),
                        })
                        .collect(),
                );
                out.push(row);
            }
            out
        }),
    )
}
