//! Bound (executable) expressions.
//!
//! The analyzer converts parsed [`ast::Expr`](crate::ast::Expr) trees into
//! [`BoundExpr`] trees whose column references are resolved to positions in
//! a concrete row layout. Bound expressions are cheap to clone, `Send +
//! Sync`, and are captured inside RDD closures for evaluation on every row
//! (Shark's compiled-closure analogue of Hive's interpreted evaluators, §5).

use std::sync::Arc;

use shark_common::{DataType, Result, Row, Schema, SharkError, Value};

use crate::ast::{BinaryOp, Expr};

/// A user-defined scalar function.
pub type UdfFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// Registry of user-defined scalar functions, looked up by lower-case name.
#[derive(Default, Clone)]
pub struct UdfRegistry {
    funcs: std::collections::HashMap<String, UdfFn>,
}

impl UdfRegistry {
    /// Create an empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Register a UDF under `name` (case-insensitive).
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        self.funcs.insert(name.to_lowercase(), Arc::new(f));
    }

    /// Look up a UDF.
    pub fn get(&self, name: &str) -> Option<UdfFn> {
        self.funcs.get(&name.to_lowercase()).cloned()
    }

    /// Number of registered UDFs.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `SUBSTR(str, start[, len])`, 1-based start like Hive.
    Substr,
    /// `UPPER(str)`
    Upper,
    /// `LOWER(str)`
    Lower,
    /// `LENGTH(str)`
    Length,
    /// `CONCAT(a, b, ...)`
    Concat,
    /// `ABS(x)`
    Abs,
    /// `ROUND(x)`
    Round,
    /// `YEAR(date)` — days-since-epoch to an approximate year.
    Year,
    /// `COALESCE(a, b, ...)`
    Coalesce,
    /// `IF(cond, a, b)`
    If,
}

impl ScalarFunc {
    /// Resolve a function name to a built-in scalar function.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_lowercase().as_str() {
            "substr" | "substring" => ScalarFunc::Substr,
            "upper" => ScalarFunc::Upper,
            "lower" => ScalarFunc::Lower,
            "length" => ScalarFunc::Length,
            "concat" => ScalarFunc::Concat,
            "abs" => ScalarFunc::Abs,
            "round" => ScalarFunc::Round,
            "year" => ScalarFunc::Year,
            "coalesce" => ScalarFunc::Coalesce,
            "if" => ScalarFunc::If,
            _ => return None,
        })
    }
}

/// An executable expression bound to a row layout.
#[derive(Clone)]
pub enum BoundExpr {
    /// A resolved column position.
    Column(usize),
    /// A literal.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Logical NOT.
    Not(Box<BoundExpr>),
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `[NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidate values.
        list: Vec<BoundExpr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// Built-in scalar function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
    /// User-defined function call.
    Udf {
        /// Name (for plan display).
        name: String,
        /// The function.
        f: UdfFn,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
}

impl std::fmt::Debug for BoundExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundExpr::Column(i) => write!(f, "#{i}"),
            BoundExpr::Literal(v) => write!(f, "{v}"),
            BoundExpr::Binary { left, op, right } => write!(f, "({left:?} {op:?} {right:?})"),
            BoundExpr::Not(e) => write!(f, "NOT {e:?}"),
            BoundExpr::IsNull { expr, negated } => {
                write!(f, "{expr:?} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr:?} {}BETWEEN {low:?} AND {high:?}",
                if *negated { "NOT " } else { "" }
            ),
            BoundExpr::InList { expr, list, .. } => write!(f, "{expr:?} IN {list:?}"),
            BoundExpr::Func { func, args } => write!(f, "{func:?}({args:?})"),
            BoundExpr::Udf { name, args, .. } => write!(f, "{name}({args:?})"),
        }
    }
}

/// Resolves column names to row positions during binding.
pub trait ColumnResolver {
    /// Resolve a possibly qualified column name to its position.
    fn resolve_column(&self, name: &str) -> Result<usize>;
}

/// A resolver over a plain schema (unqualified and `alias.col` suffix match).
pub struct SchemaResolver<'a> {
    /// The schema describing the row layout.
    pub schema: &'a Schema,
}

impl ColumnResolver for SchemaResolver<'_> {
    fn resolve_column(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.schema.index_of(name) {
            return Ok(i);
        }
        // Qualified name: try the bare column part.
        if let Some((_, col)) = name.split_once('.') {
            if let Some(i) = self.schema.index_of(col) {
                return Ok(i);
            }
        }
        Err(SharkError::Analysis(format!(
            "unknown column '{name}' in {}",
            self.schema
        )))
    }
}

impl BoundExpr {
    /// Bind an AST expression against a column resolver. Aggregate function
    /// calls are rejected here — the planner handles them separately.
    pub fn bind(
        expr: &Expr,
        resolver: &dyn ColumnResolver,
        udfs: &UdfRegistry,
    ) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Column(name) => BoundExpr::Column(resolver.resolve_column(name)?),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Binary { left, op, right } => BoundExpr::Binary {
                left: Box::new(Self::bind(left, resolver, udfs)?),
                op: *op,
                right: Box::new(Self::bind(right, resolver, udfs)?),
            },
            Expr::Not(e) => BoundExpr::Not(Box::new(Self::bind(e, resolver, udfs)?)),
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(Self::bind(expr, resolver, udfs)?),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(Self::bind(expr, resolver, udfs)?),
                low: Box::new(Self::bind(low, resolver, udfs)?),
                high: Box::new(Self::bind(high, resolver, udfs)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(Self::bind(expr, resolver, udfs)?),
                list: list
                    .iter()
                    .map(|e| Self::bind(e, resolver, udfs))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            },
            Expr::Function {
                name,
                args,
                distinct: _,
            } => {
                if crate::aggregate::AggFunc::from_name(name).is_some() {
                    return Err(SharkError::Analysis(format!(
                        "aggregate function {name} is not allowed in this context"
                    )));
                }
                let bound_args = args
                    .iter()
                    .map(|e| Self::bind(e, resolver, udfs))
                    .collect::<Result<Vec<_>>>()?;
                if let Some(func) = ScalarFunc::from_name(name) {
                    BoundExpr::Func {
                        func,
                        args: bound_args,
                    }
                } else if let Some(f) = udfs.get(name) {
                    BoundExpr::Udf {
                        name: name.clone(),
                        f,
                        args: bound_args,
                    }
                } else {
                    return Err(SharkError::Analysis(format!("unknown function '{name}'")));
                }
            }
            Expr::Star => {
                return Err(SharkError::Analysis(
                    "'*' is only allowed inside COUNT(*) or as a projection".into(),
                ))
            }
        })
    }

    /// Evaluate the expression against a row.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            BoundExpr::Column(i) => row.get(*i).clone(),
            BoundExpr::Literal(v) => v.clone(),
            BoundExpr::Binary { left, op, right } => {
                eval_binary(&left.eval(row), *op, &right.eval(row))
            }
            BoundExpr::Not(e) => match e.eval(row) {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                _ => Value::Bool(false),
            },
            BoundExpr::IsNull { expr, negated } => {
                Value::Bool(expr.eval(row).is_null() != *negated)
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                let within = v >= low.eval(row) && v <= high.eval(row);
                Value::Bool(within != *negated)
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                let found = list.iter().any(|e| e.eval(row) == v);
                Value::Bool(found != *negated)
            }
            BoundExpr::Func { func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect();
                eval_scalar(*func, &vals)
            }
            BoundExpr::Udf { f, args, .. } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect();
                f(&vals)
            }
        }
    }

    /// Evaluate as a predicate: NULL and non-boolean results count as false.
    pub fn eval_predicate(&self, row: &Row) -> bool {
        self.eval(row).is_truthy()
    }

    /// Approximate number of primitive operations one evaluation performs
    /// (drives the cost model's per-row expression charge).
    pub fn op_count(&self) -> f64 {
        match self {
            BoundExpr::Column(_) | BoundExpr::Literal(_) => 0.5,
            BoundExpr::Binary { left, right, .. } => 1.0 + left.op_count() + right.op_count(),
            BoundExpr::Not(e) => 1.0 + e.op_count(),
            BoundExpr::IsNull { expr, .. } => 1.0 + expr.op_count(),
            BoundExpr::Between {
                expr, low, high, ..
            } => 2.0 + expr.op_count() + low.op_count() + high.op_count(),
            BoundExpr::InList { expr, list, .. } => {
                1.0 + expr.op_count() + list.iter().map(BoundExpr::op_count).sum::<f64>()
            }
            BoundExpr::Func { args, .. } => 2.0 + args.iter().map(BoundExpr::op_count).sum::<f64>(),
            BoundExpr::Udf { args, .. } => 5.0 + args.iter().map(BoundExpr::op_count).sum::<f64>(),
        }
    }

    /// Rough output type inference, used to name/typed the output schema.
    pub fn data_type(&self, input: &Schema) -> DataType {
        match self {
            BoundExpr::Column(i) => {
                if *i < input.len() {
                    input.field(*i).data_type
                } else {
                    DataType::Null
                }
            }
            BoundExpr::Literal(v) => v.data_type(),
            BoundExpr::Binary { left, op, right } => {
                if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                    DataType::Bool
                } else {
                    left.data_type(input).widen(right.data_type(input))
                }
            }
            BoundExpr::Not(_)
            | BoundExpr::IsNull { .. }
            | BoundExpr::Between { .. }
            | BoundExpr::InList { .. } => DataType::Bool,
            BoundExpr::Func { func, args } => match func {
                ScalarFunc::Substr | ScalarFunc::Upper | ScalarFunc::Lower | ScalarFunc::Concat => {
                    DataType::Str
                }
                ScalarFunc::Length | ScalarFunc::Year | ScalarFunc::Round => DataType::Int,
                ScalarFunc::Abs => args
                    .first()
                    .map(|a| a.data_type(input))
                    .unwrap_or(DataType::Float),
                ScalarFunc::Coalesce | ScalarFunc::If => args
                    .last()
                    .map(|a| a.data_type(input))
                    .unwrap_or(DataType::Null),
            },
            BoundExpr::Udf { .. } => DataType::Str,
        }
    }

    /// Collect the row positions this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Column(i) => out.push(*i),
            BoundExpr::Literal(_) => {}
            BoundExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            BoundExpr::Not(e) => e.referenced_columns(out),
            BoundExpr::IsNull { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::Func { args, .. } | BoundExpr::Udf { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// If this predicate is a simple range/equality condition on a single
    /// column (`col op literal`, `col BETWEEN a AND b`, `col IN (...)`),
    /// return `(column, lower_bound, upper_bound, equalities)` for use by
    /// map pruning. Bounds are inclusive.
    #[allow(clippy::type_complexity)]
    pub fn as_column_range(&self) -> Option<(usize, Option<Value>, Option<Value>, Vec<Value>)> {
        match self {
            BoundExpr::Binary { left, op, right } => {
                let (col, lit, flipped) = match (left.as_ref(), right.as_ref()) {
                    (BoundExpr::Column(c), BoundExpr::Literal(v)) => (*c, v.clone(), false),
                    (BoundExpr::Literal(v), BoundExpr::Column(c)) => (*c, v.clone(), true),
                    _ => return None,
                };
                let op = if flipped { flip(*op) } else { *op };
                match op {
                    BinaryOp::Eq => Some((col, Some(lit.clone()), Some(lit.clone()), vec![lit])),
                    BinaryOp::Gt | BinaryOp::GtEq => Some((col, Some(lit), None, vec![])),
                    BinaryOp::Lt | BinaryOp::LtEq => Some((col, None, Some(lit), vec![])),
                    _ => None,
                }
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated: false,
            } => match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (BoundExpr::Column(c), BoundExpr::Literal(l), BoundExpr::Literal(h)) => {
                    Some((*c, Some(l.clone()), Some(h.clone()), vec![]))
                }
                _ => None,
            },
            BoundExpr::InList {
                expr,
                list,
                negated: false,
            } => {
                if let BoundExpr::Column(c) = expr.as_ref() {
                    let mut vals = Vec::new();
                    for e in list {
                        if let BoundExpr::Literal(v) = e {
                            vals.push(v.clone());
                        } else {
                            return None;
                        }
                    }
                    let min = vals.iter().min().cloned();
                    let max = vals.iter().max().cloned();
                    Some((*c, min, max, vals))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

pub(crate) fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Evaluate a binary operation with SQL-ish NULL propagation.
pub fn eval_binary(left: &Value, op: BinaryOp, right: &Value) -> Value {
    use BinaryOp::*;
    match op {
        And => match (left, right) {
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
            (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        Or => match (left, right) {
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
            (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ if left.is_null() || right.is_null() => Value::Null,
        Eq => Value::Bool(left == right),
        NotEq => Value::Bool(left != right),
        Lt => Value::Bool(left < right),
        LtEq => Value::Bool(left <= right),
        Gt => Value::Bool(left > right),
        GtEq => Value::Bool(left >= right),
        Plus | Minus | Multiply | Divide | Modulo => eval_arithmetic(left, op, right),
    }
}

fn eval_arithmetic(left: &Value, op: BinaryOp, right: &Value) -> Value {
    use BinaryOp::*;
    // String concatenation with '+' is not SQL; ignore.
    let both_int = matches!(left, Value::Int(_) | Value::Date(_))
        && matches!(right, Value::Int(_) | Value::Date(_));
    if both_int {
        let a = left.as_int().unwrap_or(0);
        let b = right.as_int().unwrap_or(0);
        return match op {
            Plus => Value::Int(a + b),
            Minus => Value::Int(a - b),
            Multiply => Value::Int(a * b),
            Divide => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            Modulo => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
            _ => Value::Null,
        };
    }
    let a = left.as_float();
    let b = right.as_float();
    match (a, b) {
        (Some(a), Some(b)) => match op {
            Plus => Value::Float(a + b),
            Minus => Value::Float(a - b),
            Multiply => Value::Float(a * b),
            Divide => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
            Modulo => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a % b)
                }
            }
            _ => Value::Null,
        },
        _ => Value::Null,
    }
}

/// Evaluate a built-in scalar function.
pub fn eval_scalar(func: ScalarFunc, args: &[Value]) -> Value {
    match func {
        ScalarFunc::Substr => {
            let s = match args.first().and_then(|v| v.as_str()) {
                Some(s) => s,
                None => return Value::Null,
            };
            let start = args.get(1).and_then(|v| v.as_int()).unwrap_or(1).max(1) as usize;
            let len = args.get(2).and_then(|v| v.as_int());
            let chars: Vec<char> = s.chars().collect();
            let begin = (start - 1).min(chars.len());
            let end = match len {
                Some(l) => (begin + l.max(0) as usize).min(chars.len()),
                None => chars.len(),
            };
            Value::str(chars[begin..end].iter().collect::<String>())
        }
        ScalarFunc::Upper => match args.first().and_then(|v| v.as_str()) {
            Some(s) => Value::str(s.to_uppercase()),
            None => Value::Null,
        },
        ScalarFunc::Lower => match args.first().and_then(|v| v.as_str()) {
            Some(s) => Value::str(s.to_lowercase()),
            None => Value::Null,
        },
        ScalarFunc::Length => match args.first().and_then(|v| v.as_str()) {
            Some(s) => Value::Int(s.chars().count() as i64),
            None => Value::Null,
        },
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                if a.is_null() {
                    return Value::Null;
                }
                out.push_str(&a.render());
            }
            Value::str(out)
        }
        ScalarFunc::Abs => match args.first() {
            Some(Value::Int(v)) => Value::Int(v.abs()),
            Some(Value::Float(v)) => Value::Float(v.abs()),
            _ => Value::Null,
        },
        ScalarFunc::Round => match args.first().and_then(|v| v.as_float()) {
            Some(v) => Value::Int(v.round() as i64),
            None => Value::Null,
        },
        ScalarFunc::Year => match args.first().and_then(|v| v.as_int()) {
            // days since 1970-01-01, ignoring leap-year drift (fine for
            // grouping purposes).
            Some(days) => Value::Int(1970 + days / 365),
            None => Value::Null,
        },
        ScalarFunc::Coalesce => args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        ScalarFunc::If => {
            let cond = args.first().map(|v| v.is_truthy()).unwrap_or(false);
            if cond {
                args.get(1).cloned().unwrap_or(Value::Null)
            } else {
                args.get(2).cloned().unwrap_or(Value::Null)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use shark_common::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("pagerank", DataType::Int),
            ("pageurl", DataType::Str),
            ("revenue", DataType::Float),
        ])
    }

    fn bind(sql_predicate: &str) -> BoundExpr {
        // Parse a full statement to reuse the expression parser.
        let stmt = parse_select(&format!("SELECT 1 FROM t WHERE {sql_predicate}")).unwrap();
        let schema = schema();
        let resolver = SchemaResolver { schema: &schema };
        BoundExpr::bind(&stmt.selection.unwrap(), &resolver, &UdfRegistry::new()).unwrap()
    }

    #[test]
    fn comparison_and_arithmetic() {
        let e = bind("pagerank > 300 AND revenue * 2 >= 10.0");
        let hit = row![500i64, "u", 20.0f64];
        let miss = row![100i64, "u", 1.0f64];
        assert!(e.eval_predicate(&hit));
        assert!(!e.eval_predicate(&miss));
        assert!(e.op_count() > 2.0);
    }

    #[test]
    fn between_in_isnull() {
        let e = bind("pagerank BETWEEN 10 AND 20");
        assert!(e.eval_predicate(&row![15i64, "x", 0.0f64]));
        assert!(!e.eval_predicate(&row![25i64, "x", 0.0f64]));
        let e = bind("pageurl IN ('a', 'b')");
        assert!(e.eval_predicate(&row![1i64, "a", 0.0f64]));
        assert!(!e.eval_predicate(&row![1i64, "c", 0.0f64]));
        let e = bind("revenue IS NULL");
        assert!(e.eval_predicate(&row![1i64, "a", Value::Null]));
        assert!(!e.eval_predicate(&row![1i64, "a", 1.0f64]));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            eval_scalar(
                ScalarFunc::Substr,
                &[Value::str("10.20.30.40"), Value::Int(1), Value::Int(7)]
            ),
            Value::str("10.20.3")
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Upper, &[Value::str("air")]),
            Value::str("AIR")
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Length, &[Value::str("abc")]),
            Value::Int(3)
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Abs, &[Value::Int(-5)]),
            Value::Int(5)
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Year, &[Value::Int(10_957)]),
            Value::Int(2000)
        );
        assert_eq!(
            eval_scalar(ScalarFunc::Coalesce, &[Value::Null, Value::Int(3)]),
            Value::Int(3)
        );
        assert_eq!(
            eval_scalar(
                ScalarFunc::If,
                &[Value::Bool(true), Value::Int(1), Value::Int(2)]
            ),
            Value::Int(1)
        );
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            eval_binary(&Value::Null, BinaryOp::Plus, &Value::Int(1)),
            Value::Null
        );
        assert_eq!(
            eval_binary(&Value::Bool(false), BinaryOp::And, &Value::Null),
            Value::Bool(false)
        );
        assert_eq!(
            eval_binary(&Value::Null, BinaryOp::Or, &Value::Bool(true)),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binary(&Value::Int(1), BinaryOp::Divide, &Value::Int(0)),
            Value::Null
        );
    }

    #[test]
    fn udfs_are_callable() {
        let mut udfs = UdfRegistry::new();
        udfs.register("is_special", |args: &[Value]| {
            Value::Bool(
                args.first()
                    .and_then(|v| v.as_str())
                    .map(|s| s.contains("SPECIAL"))
                    .unwrap_or(false),
            )
        });
        let stmt = parse_select("SELECT 1 FROM t WHERE is_special(pageurl)").unwrap();
        let schema = schema();
        let resolver = SchemaResolver { schema: &schema };
        let e = BoundExpr::bind(&stmt.selection.unwrap(), &resolver, &udfs).unwrap();
        assert!(e.eval_predicate(&row![1i64, "123 SPECIAL st", 0.0f64]));
        assert!(!e.eval_predicate(&row![1i64, "plain", 0.0f64]));
    }

    #[test]
    fn column_range_extraction_for_pruning() {
        let e = bind("pagerank > 300");
        let (col, low, high, eqs) = e.as_column_range().unwrap();
        assert_eq!(col, 0);
        assert_eq!(low, Some(Value::Int(300)));
        assert_eq!(high, None);
        assert!(eqs.is_empty());

        let e = bind("pagerank BETWEEN 5 AND 9");
        let (_, low, high, _) = e.as_column_range().unwrap();
        assert_eq!(low, Some(Value::Int(5)));
        assert_eq!(high, Some(Value::Int(9)));

        let e = bind("pageurl = 'x'");
        let (col, _, _, eqs) = e.as_column_range().unwrap();
        assert_eq!(col, 1);
        assert_eq!(eqs, vec![Value::str("x")]);

        let e = bind("300 < pagerank");
        let (_, low, _, _) = e.as_column_range().unwrap();
        assert_eq!(low, Some(Value::Int(300)));

        assert!(bind("pagerank > revenue").as_column_range().is_none());
    }

    #[test]
    fn binding_errors() {
        let schema = schema();
        let resolver = SchemaResolver { schema: &schema };
        let udfs = UdfRegistry::new();
        let stmt = parse_select("SELECT 1 FROM t WHERE missing_col = 1").unwrap();
        assert!(BoundExpr::bind(&stmt.selection.unwrap(), &resolver, &udfs).is_err());
        let stmt = parse_select("SELECT 1 FROM t WHERE unknown_fn(pagerank) = 1").unwrap();
        assert!(BoundExpr::bind(&stmt.selection.unwrap(), &resolver, &udfs).is_err());
        let stmt = parse_select("SELECT 1 FROM t WHERE SUM(pagerank) > 1").unwrap();
        assert!(BoundExpr::bind(&stmt.selection.unwrap(), &resolver, &udfs).is_err());
    }

    #[test]
    fn qualified_names_resolve_via_suffix() {
        let schema = schema();
        let resolver = SchemaResolver { schema: &schema };
        assert_eq!(resolver.resolve_column("r.pagerank").unwrap(), 0);
        assert_eq!(resolver.resolve_column("pagerank").unwrap(), 0);
        assert!(resolver.resolve_column("r.missing").is_err());
    }
}
