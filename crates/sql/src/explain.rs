//! `EXPLAIN [ANALYZE]` rendering.
//!
//! `EXPLAIN` renders the optimized logical plan. `EXPLAIN ANALYZE`
//! executes the query through the streaming path under scoped tracing
//! (recording works even when the global tracer is disabled), then
//! aggregates the recorded span tree into a per-operator report: self
//! wall time, rows, bytes, partitions touched, cache hits, lineage
//! rebuilds, plus stream/top-k/prefetch statistics. Both return their
//! report as a one-column (`plan: Str`) result set, one line per row.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use shark_common::{DataType, Result, Row, Schema, Value};
use shark_obs::SpanRecord;
use shark_rdd::RddContext;

use crate::catalog::CatalogSnapshot;
use crate::exec::{self, ExecConfig, QueryResult, StreamProgress};
use crate::plan::QueryPlan;

/// Schema of an `EXPLAIN` result: a single `plan` string column.
fn explain_schema() -> Schema {
    Schema::from_pairs(&[("plan", DataType::Str)])
}

fn lines_to_result(lines: Vec<String>, plan: String, notes: Vec<String>) -> QueryResult {
    QueryResult {
        schema: explain_schema(),
        rows: lines
            .into_iter()
            .map(|line| Row::new(vec![Value::str(line)]))
            .collect(),
        sim_seconds: 0.0,
        real_seconds: 0.0,
        plan,
        notes,
    }
}

/// `EXPLAIN` (without `ANALYZE`): render the optimized plan tree.
pub fn explain_plan(plan: &QueryPlan) -> QueryResult {
    let mut lines = vec![format!("plan: {}", plan.describe())];
    for scan in &plan.scans {
        lines.push(format!(
            "scan {}: columns={} filters={}",
            scan.table.name,
            scan.projection.len(),
            scan.filters.len(),
        ));
    }
    lines_to_result(lines, format!("explain({})", plan.describe()), Vec::new())
}

/// `EXPLAIN ANALYZE`: execute the query under tracing and render the
/// annotated plan. The query runs through the streaming executor — so
/// top-k pushdown, partition skipping and prefetch behave exactly as they
/// would for a streamed client — and is drained to completion.
pub fn explain_analyze(
    ctx: &RddContext,
    plan: &QueryPlan,
    cfg: &ExecConfig,
    snapshot: Arc<CatalogSnapshot>,
) -> Result<QueryResult> {
    let wall = Instant::now();
    let tracer = shark_obs::tracer();
    // Keep recording on for the duration of this statement even when the
    // global tracer is off.
    let _interest = tracer.subscribe();
    let mut root = shark_obs::start_trace("explain-analyze");
    let trace_id = root.trace_id();

    let (delivered, sim_seconds, progress, notes) = {
        let _attach = root.context().attach();
        let mut stream = exec::execute_stream(ctx, plan, cfg)?.with_snapshot(snapshot);
        let mut delivered = 0u64;
        while let Some(batch) = stream.next_batch()? {
            delivered += batch.len() as u64;
        }
        let sim_seconds = stream.sim_seconds();
        let progress = stream.progress().clone();
        let notes = stream.notes().to_vec();
        stream.cancel();
        (delivered, sim_seconds, progress, notes)
    };
    root.add_rows(delivered);
    root.annotate("rows_delivered", &delivered.to_string());
    root.finish();

    let records = tracer.records_for(trace_id);
    let lines = render_analyze(plan, &records, &progress, &notes, delivered, trace_id);
    let mut result = lines_to_result(
        lines,
        format!("explain_analyze({})", plan.describe()),
        notes,
    );
    result.sim_seconds = sim_seconds;
    result.real_seconds = wall.elapsed().as_secs_f64();
    Ok(result)
}

/// Per-operator aggregation of the recorded spans.
struct OpAgg {
    name: String,
    partitions: BTreeSet<usize>,
    self_us: u64,
    rows: u64,
    bytes: u64,
    cache_hits: u64,
    rebuilds: u64,
}

/// Lifecycle-phase aggregation (plan / optimize / stage-launch /
/// stream-deliver).
struct PhaseAgg {
    name: String,
    count: u64,
    self_us: u64,
    rows: u64,
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    } else {
        format!("{:.3}ms", us as f64 / 1_000.0)
    }
}

fn annotation_count(record: &SpanRecord, key: &str) -> u64 {
    record.annotations.iter().filter(|(k, _)| k == key).count() as u64
}

/// Render the recorded trace of one query as an annotated plan report.
fn render_analyze(
    plan: &QueryPlan,
    records: &[SpanRecord],
    progress: &StreamProgress,
    notes: &[String],
    delivered: u64,
    trace_id: u64,
) -> Vec<String> {
    // Self time: a span's duration minus its direct children's durations,
    // so operator and phase times roughly add up to the query's wall time
    // even though spans nest.
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if r.parent_id != 0 {
            *child_us.entry(r.parent_id).or_insert(0) += r.duration_us;
        }
    }
    let self_us = |r: &SpanRecord| {
        r.duration_us
            .saturating_sub(child_us.get(&r.span_id).copied().unwrap_or(0))
    };

    // Every parent id must resolve within the trace (roots have parent 0).
    let ids: BTreeSet<u64> = records.iter().map(|r| r.span_id).collect();
    let parents_consistent = records
        .iter()
        .all(|r| r.parent_id == 0 || ids.contains(&r.parent_id));

    const PHASES: &[&str] = &["plan", "optimize", "stage-launch", "stream-deliver"];
    let mut phases: Vec<PhaseAgg> = Vec::new();
    let mut ops: Vec<OpAgg> = Vec::new();
    let mut topk_skipped = 0u64;
    let mut rdd_cache_hits = 0u64;
    let mut snapshot_pins = 0u64;
    let mut eviction_events = 0u64;
    let mut quota_eviction_events = 0u64;

    for r in records {
        if r.name == "explain-analyze" || r.name == "stage-sim" {
            continue;
        }
        if r.name == "snapshot-pin" {
            snapshot_pins += 1;
            continue;
        }
        if r.name == "eviction" {
            eviction_events += 1;
            continue;
        }
        if r.name == "quota-eviction" {
            quota_eviction_events += 1;
            continue;
        }
        if r.name == "top-k-skip" {
            topk_skipped += r
                .annotations
                .iter()
                .find(|(k, _)| k == "skipped")
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .unwrap_or(0);
            continue;
        }
        if r.name == "rdd-cache-hit" {
            rdd_cache_hits += 1;
            continue;
        }
        if PHASES.contains(&r.name.as_str()) {
            match phases.iter_mut().find(|p| p.name == r.name) {
                Some(p) => {
                    p.count += 1;
                    p.self_us += self_us(r);
                    p.rows += r.rows;
                }
                None => phases.push(PhaseAgg {
                    name: r.name.clone(),
                    count: 1,
                    self_us: self_us(r),
                    rows: r.rows,
                }),
            }
            continue;
        }
        // Everything else is an operator execution span.
        let agg = match ops.iter_mut().find(|o| o.name == r.name) {
            Some(o) => o,
            None => {
                ops.push(OpAgg {
                    name: r.name.clone(),
                    partitions: BTreeSet::new(),
                    self_us: 0,
                    rows: 0,
                    bytes: 0,
                    cache_hits: 0,
                    rebuilds: 0,
                });
                ops.last_mut().expect("just pushed")
            }
        };
        if let Some(p) = r.partition {
            agg.partitions.insert(p);
        }
        agg.self_us += self_us(r);
        agg.rows += r.rows;
        agg.bytes += r.bytes;
        agg.cache_hits += annotation_count(r, "cache");
        agg.rebuilds += annotation_count(r, "rebuild");
    }

    let mut lines = Vec::new();
    lines.push(format!(
        "EXPLAIN ANALYZE trace={} spans={} parents_consistent={}",
        trace_id,
        records.len(),
        parents_consistent,
    ));
    lines.push(format!("plan: {}", plan.describe()));
    for p in &phases {
        let mut line = format!(
            "phase {}: time={} calls={}",
            p.name,
            format_us(p.self_us),
            p.count
        );
        if p.name == "stream-deliver" {
            line.push_str(&format!(" rows={}", p.rows));
        }
        lines.push(line);
    }
    for o in &ops {
        lines.push(format!(
            "op {}: partitions={} time={} rows={} bytes={} cache_hits={} rebuilds={}",
            o.name,
            o.partitions.len(),
            format_us(o.self_us),
            o.rows,
            o.bytes,
            o.cache_hits,
            o.rebuilds,
        ));
    }
    lines.push(format!(
        "stream: rows={} partitions={}/{} topk_skipped={} prefetch_hits={} rdd_cache_hits={}",
        delivered,
        progress.partitions_streamed,
        progress.partitions_total,
        topk_skipped,
        progress.prefetch_hits,
        rdd_cache_hits,
    ));
    if snapshot_pins + eviction_events + quota_eviction_events > 0 {
        lines.push(format!(
            "events: snapshot_pins={snapshot_pins} evictions={eviction_events} quota_evictions={quota_eviction_events}",
        ));
    }
    if let Some(ttfr) = progress.time_to_first_row {
        lines.push(format!(
            "first row: {} wall",
            format_us(ttfr.as_micros() as u64)
        ));
    }
    for note in notes {
        lines.push(format!("note: {note}"));
    }
    lines
}
