//! Statement fingerprinting and the prepared-statement / plan cache.
//!
//! A serving layer that receives the same statement text thousands of times
//! (dashboards, parameterized application queries) should not pay parse +
//! plan on every execution. The cache is a two-tier structure keyed on a
//! **statement fingerprint** — an FNV-1a 64 hash of the normalized text —
//! holding the parsed [`Statement`] (epoch-independent: parsing never looks
//! at the catalog) and, for SELECTs, the compiled [`QueryPlan`] stamped with
//! the catalog epoch it was planned at.
//!
//! Invalidation is free: plans resolve tables against an epoch-versioned
//! [`crate::CatalogSnapshot`] (PR 5), and every DDL bumps the epoch, so a
//! cached plan is reusable **iff** its recorded epoch equals the epoch of
//! the snapshot the new execution pins. A stale plan is simply replanned and
//! overwritten — no DDL hook, no cross-session coordination, no epoch scan.
//!
//! Soundness notes:
//! * The fingerprint normalizes *whitespace and letter case outside quoted
//!   strings* only. Literals stay significant — two texts that could plan
//!   differently can never collide onto one cache slot (modulo the hash
//!   itself, which is 64-bit FNV over the full normalized text).
//! * Plans bind scalar UDFs at plan time, and UDF registries are
//!   per-session. Sessions with registered UDFs must bypass plan reuse
//!   ([`crate::SqlSession`] enforces this); the parse tier is still safe to
//!   share because parsing is UDF-independent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ast::Statement;
use crate::plan::QueryPlan;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fingerprint of a statement's text: FNV-1a 64 over the normalized form —
/// whitespace runs collapse to one space, letters outside single-quoted
/// string literals fold to lowercase, leading/trailing whitespace drops.
/// Literals (numeric and quoted) are preserved verbatim, so statements that
/// could produce different plans always have different normalized forms.
pub fn statement_fingerprint(text: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut in_string = false;
    let mut pending_space = false;
    let mut emitted = false;
    for ch in text.chars() {
        if in_string {
            hash = fnv_char(hash, ch);
            if ch == '\'' {
                in_string = false;
            }
            continue;
        }
        if ch.is_whitespace() {
            pending_space = emitted;
            continue;
        }
        if pending_space {
            hash = fnv_char(hash, ' ');
            pending_space = false;
        }
        if ch == '\'' {
            in_string = true;
            hash = fnv_char(hash, ch);
            continue;
        }
        for folded in ch.to_lowercase() {
            hash = fnv_char(hash, folded);
        }
        emitted = true;
    }
    hash
}

fn fnv_char(mut hash: u64, ch: char) -> u64 {
    let mut buf = [0u8; 4];
    for byte in ch.encode_utf8(&mut buf).as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One cached statement: the parse result plus (for SELECTs) the newest
/// compiled plan, stamped with the catalog epoch it resolved tables at.
pub struct CachedStatement {
    /// The parsed statement (epoch-independent — parsing never consults the
    /// catalog).
    pub statement: Arc<Statement>,
    /// `(epoch, plan)` of the newest compilation; replaced wholesale when a
    /// later execution plans at a newer epoch.
    plan: Mutex<Option<(u64, Arc<QueryPlan>)>>,
}

impl CachedStatement {
    /// The cached plan, **iff** it was compiled at exactly `epoch`. A plan
    /// from any other epoch may reference dropped/replaced table versions
    /// and is never returned.
    pub fn plan_for_epoch(&self, epoch: u64) -> Option<Arc<QueryPlan>> {
        let guard = self.plan.lock();
        match guard.as_ref() {
            Some((at, plan)) if *at == epoch => Some(plan.clone()),
            _ => None,
        }
    }

    /// Whether a plan is cached at all (any epoch) — used to distinguish a
    /// cold miss from an epoch invalidation in the counters.
    fn has_plan(&self) -> bool {
        self.plan.lock().is_some()
    }

    /// Store the plan compiled at `epoch`, superseding any older one.
    /// Last-writer-wins is sound: every stored plan was valid at its own
    /// epoch, and lookups only ever return an exact-epoch match.
    pub fn store_plan(&self, epoch: u64, plan: Arc<QueryPlan>) {
        *self.plan.lock() = Some((epoch, plan));
    }
}

/// Bounded, process-wide prepared-statement / plan cache. Shared by every
/// session of a server via `Arc`; all methods take `&self`.
pub struct PlanCache {
    /// Fingerprint → cached statement. Bounded by `capacity`; eviction is
    /// insertion-ordered (oldest fingerprint first) via `order`.
    entries: Mutex<CacheMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_plans: AtomicU64,
}

#[derive(Default)]
struct CacheMap {
    by_fp: HashMap<u64, Arc<CachedStatement>>,
    order: Vec<u64>,
}

impl PlanCache {
    /// A cache holding at most `capacity` statements (0 disables caching —
    /// every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: Mutex::new(CacheMap::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_plans: AtomicU64::new(0),
        }
    }

    /// Look up a cached statement by fingerprint (parse tier only — the
    /// plan tier is consulted per-execution via
    /// [`CachedStatement::plan_for_epoch`]).
    pub fn statement(&self, fingerprint: u64) -> Option<Arc<CachedStatement>> {
        self.entries.lock().by_fp.get(&fingerprint).cloned()
    }

    /// Insert a freshly parsed statement, evicting the oldest entry when
    /// the cache is full. Returns the cached handle (the already-present
    /// entry if another session raced the same fingerprint in first).
    pub fn insert_statement(&self, fingerprint: u64, statement: Statement) -> Arc<CachedStatement> {
        if self.capacity == 0 {
            return Arc::new(CachedStatement {
                statement: Arc::new(statement),
                plan: Mutex::new(None),
            });
        }
        let mut map = self.entries.lock();
        if let Some(existing) = map.by_fp.get(&fingerprint) {
            return existing.clone();
        }
        while map.by_fp.len() >= self.capacity {
            let oldest = map.order.remove(0);
            map.by_fp.remove(&oldest);
        }
        let entry = Arc::new(CachedStatement {
            statement: Arc::new(statement),
            plan: Mutex::new(None),
        });
        map.by_fp.insert(fingerprint, entry.clone());
        map.order.push(fingerprint);
        entry
    }

    /// Record the outcome of one SELECT plan lookup in the counters:
    /// `hit` bumps hits; a miss on an entry that *had* a plan (at another
    /// epoch) is a DDL invalidation and bumps `stale_plans` alongside
    /// misses.
    pub fn record_plan_lookup(&self, entry: Option<&CachedStatement>, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if entry.is_some_and(|e| e.has_plan()) {
                self.stale_plans.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Plan-tier hits (executions that skipped parse *and* plan).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Plan-tier misses (cold statements and epoch invalidations).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Misses caused by a DDL epoch bump invalidating a cached plan.
    pub fn stale_plans(&self) -> u64 {
        self.stale_plans.load(Ordering::Relaxed)
    }

    /// Statements currently cached.
    pub fn entries(&self) -> usize {
        self.entries.lock().by_fp.len()
    }

    /// The configured capacity (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    #[test]
    fn fingerprint_normalizes_whitespace_and_case_but_not_literals() {
        let a = statement_fingerprint("SELECT  x FROM t WHERE s = 'North'");
        let b = statement_fingerprint("select x\n\tfrom T where S = 'North'");
        let c = statement_fingerprint("select x from t where s = 'north'");
        let d = statement_fingerprint("SELECT x FROM t WHERE s = 'North' ");
        assert_eq!(a, b, "whitespace + keyword case must not matter");
        assert_eq!(a, d, "trailing whitespace must not matter");
        assert_ne!(a, c, "string literal case is significant");
        assert_ne!(
            statement_fingerprint("SELECT x FROM t WHERE v = 1"),
            statement_fingerprint("SELECT x FROM t WHERE v = 2"),
            "numeric literals are significant"
        );
    }

    #[test]
    fn cache_is_bounded_and_insertion_order_evicted() {
        let cache = PlanCache::new(2);
        let stmt = |text: &str| parser::parse(text).unwrap();
        cache.insert_statement(1, stmt("SELECT a FROM t"));
        cache.insert_statement(2, stmt("SELECT b FROM t"));
        cache.insert_statement(3, stmt("SELECT c FROM t"));
        assert_eq!(cache.entries(), 2);
        assert!(cache.statement(1).is_none(), "oldest entry evicted");
        assert!(cache.statement(2).is_some());
        assert!(cache.statement(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = PlanCache::new(0);
        cache.insert_statement(7, parser::parse("SELECT a FROM t").unwrap());
        assert_eq!(cache.entries(), 0);
        assert!(cache.statement(7).is_none());
    }

    #[test]
    fn plan_tier_is_epoch_exact() {
        let cache = PlanCache::new(4);
        let entry = cache.insert_statement(9, parser::parse("SELECT a FROM t").unwrap());
        assert!(entry.plan_for_epoch(3).is_none());
        cache.record_plan_lookup(Some(&entry), false);
        assert_eq!((cache.misses(), cache.stale_plans()), (1, 0));
        // A stored plan answers only for its own epoch.
        let plan = Arc::new(crate::plan::QueryPlan {
            scans: vec![],
            joins: vec![],
            residual_filter: None,
            aggregate: None,
            projections: vec![],
            output_schema: Default::default(),
            order_by: vec![],
            limit: None,
            distribute_by: None,
        });
        entry.store_plan(3, plan);
        assert!(entry.plan_for_epoch(3).is_some());
        assert!(entry.plan_for_epoch(4).is_none(), "DDL bumped the epoch");
        cache.record_plan_lookup(Some(&entry), true);
        cache.record_plan_lookup(Some(&entry), false);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.stale_plans(), 1);
    }
}
