//! Vectorized predicate kernels and batch-at-a-time partial aggregation.
//!
//! The row path evaluates every pushed-down filter against every decoded
//! `Row`. The vectorized path instead compiles each filter into a
//! [`FilterKernel`] that runs directly over a [`ColumnBatch`]'s compressed
//! encodings, narrowing the batch's [`Selection`] without building rows:
//!
//! * run-length columns evaluate the predicate once *per run* and skip whole
//!   runs of non-matching values;
//! * dictionary columns evaluate the predicate once *per dictionary entry*
//!   and then test each row's code against the precomputed bitmap;
//! * anything else falls back to per-selected-row evaluation, and filters
//!   that are not a simple `column <op> literal` comparison fall back to the
//!   row evaluator against a scratch row.
//!
//! All kernels produce exactly the rows `BoundExpr::eval_predicate` keeps, so
//! the vectorized scan is byte-identical to the row scan.

use std::collections::HashMap;

use shark_columnar::{ColumnBatch, EncodedColumn, Selection};
use shark_common::{DataType, Row, Value};

use crate::aggregate::{AggExpr, AggStates};
use crate::ast::BinaryOp;
use crate::expr::{eval_binary, flip, BoundExpr};

/// A pushed-down filter compiled for batch execution.
pub enum FilterKernel {
    /// `column <op> literal` (or the flipped literal-first form): the shape
    /// the encoding-aware kernels accelerate.
    Cmp {
        /// Projected column index the comparison reads.
        col: usize,
        /// Comparison operator, normalized to column-on-the-left.
        op: BinaryOp,
        /// The literal operand.
        lit: Value,
    },
    /// Any other predicate: evaluated row-by-row against a scratch row.
    Generic(BoundExpr),
}

impl FilterKernel {
    /// Compile one pushed-down filter.
    pub fn compile(filter: &BoundExpr) -> FilterKernel {
        if let BoundExpr::Binary { left, op, right } = filter {
            if op.is_comparison() {
                match (left.as_ref(), right.as_ref()) {
                    (BoundExpr::Column(c), BoundExpr::Literal(v)) => {
                        return FilterKernel::Cmp {
                            col: *c,
                            op: *op,
                            lit: v.clone(),
                        }
                    }
                    (BoundExpr::Literal(v), BoundExpr::Column(c)) => {
                        return FilterKernel::Cmp {
                            col: *c,
                            op: flip(*op),
                            lit: v.clone(),
                        }
                    }
                    _ => {}
                }
            }
        }
        FilterKernel::Generic(filter.clone())
    }

    /// Narrow `batch`'s selection to the rows this filter keeps.
    pub fn apply(&self, batch: &mut ColumnBatch<'_>) {
        match self {
            FilterKernel::Cmp { col, op, lit } => apply_cmp(batch, *col, *op, lit),
            FilterKernel::Generic(expr) => {
                let mut sel = batch.selection().clone();
                sel.retain(|i| expr.eval_predicate(&batch.scratch_row(i)));
                batch.set_selection(sel);
            }
        }
    }
}

/// Run value of an integer-family RLE column under its logical type.
fn make_int(v: i64, data_type: DataType) -> Value {
    if data_type == DataType::Date {
        Value::Date(v as i32)
    } else {
        Value::Int(v)
    }
}

/// Apply a `column <op> literal` comparison kernel.
fn apply_cmp(batch: &mut ColumnBatch<'_>, col: usize, op: BinaryOp, lit: &Value) {
    let data_type = batch.column_type(col);
    let mut sel = batch.selection().clone();
    match batch.column(col) {
        // Run-length columns: decide once per run, then sweep the selection
        // with a single forward cursor — whole non-matching runs are skipped
        // without ever decoding a value.
        EncodedColumn::IntRle { runs, nulls, .. } => {
            let keep_run: Vec<bool> = runs
                .iter()
                .map(|&(v, _)| eval_binary(&make_int(v, data_type), op, lit).is_truthy())
                .collect();
            retain_rle(&mut sel, runs.iter().map(|&(_, n)| n), &keep_run, nulls);
        }
        EncodedColumn::StrRle { runs, nulls, .. } => {
            let keep_run: Vec<bool> = runs
                .iter()
                .map(|(s, _)| eval_binary(&Value::Str(s.clone()), op, lit).is_truthy())
                .collect();
            retain_rle(&mut sel, runs.iter().map(|(_, n)| *n), &keep_run, nulls);
        }
        // Dictionary columns: evaluate the predicate over the (small)
        // dictionary once, then the per-row test is a single bitmap probe on
        // the code — no string comparisons in the row loop.
        EncodedColumn::StrDict {
            dict, codes, nulls, ..
        } => {
            let keep_code: Vec<bool> = dict
                .iter()
                .map(|s| eval_binary(&Value::Str(s.clone()), op, lit).is_truthy())
                .collect();
            sel.retain(|i| !is_null_at(nulls, i) && keep_code[codes[i] as usize]);
        }
        // Comparing NULL with anything is never truthy.
        EncodedColumn::AllNull { .. } => sel = Selection::Rows(Vec::new()),
        // O(1)-access encodings: evaluate per selected row on the decoded
        // value, still without building a scratch row.
        other => {
            sel.retain(|i| eval_binary(&other.value_at(i, data_type), op, lit).is_truthy());
        }
    }
    batch.set_selection(sel);
}

/// Sweep an ascending selection across RLE runs, keeping rows whose run
/// matched and whose null-mask bit (if any) marks them valid.
fn retain_rle(
    sel: &mut Selection,
    run_lens: impl Iterator<Item = u32>,
    keep_run: &[bool],
    nulls: &Option<Vec<bool>>,
) {
    let ends: Vec<usize> = run_lens
        .scan(0usize, |acc, n| {
            *acc += n as usize;
            Some(*acc)
        })
        .collect();
    let mut run_idx = 0usize;
    sel.retain(|i| {
        while run_idx < ends.len() && i >= ends[run_idx] {
            run_idx += 1;
        }
        !is_null_at(nulls, i) && keep_run.get(run_idx).copied().unwrap_or(false)
    });
}

fn is_null_at(mask: &Option<Vec<bool>>, i: usize) -> bool {
    mask.as_ref().map(|m| !m[i]).unwrap_or(false)
}

/// Where a group key or aggregate argument comes from in the batch.
enum ValueSource {
    /// A bare column reference: gathered once for the whole selection.
    Gathered(Vec<Value>),
    /// Any other expression: evaluated against a per-row scratch row.
    Expr(BoundExpr),
    /// `COUNT(*)` — no argument.
    Star,
}

impl ValueSource {
    fn for_expr(batch: &ColumnBatch<'_>, expr: &BoundExpr) -> ValueSource {
        match expr {
            BoundExpr::Column(c) => ValueSource::Gathered(batch.gather(*c)),
            other => ValueSource::Expr(other.clone()),
        }
    }

    fn needs_scratch(&self) -> bool {
        matches!(self, ValueSource::Expr(_))
    }

    /// Value for the `k`-th selected row (`row` is its partition index).
    fn value(&self, k: usize, scratch: Option<&Row>) -> Option<Value> {
        match self {
            ValueSource::Gathered(vals) => Some(vals[k].clone()),
            ValueSource::Expr(e) => Some(e.eval(scratch.expect("scratch row"))),
            ValueSource::Star => None,
        }
    }
}

/// Batch-at-a-time partial aggregation: fold the selected rows of `batch`
/// into per-group [`AggStates`], keyed by the evaluated group expressions.
///
/// Groups are emitted in first-seen (row) order and each group's states are
/// updated in row order, so the result is exactly what the row path's
/// per-partition partial aggregation produces for the same input.
pub fn vector_partial_aggregate(
    batch: &ColumnBatch<'_>,
    group_exprs: &[BoundExpr],
    aggs: &[AggExpr],
) -> Vec<(Row, AggStates)> {
    // Fast path: a single dictionary-encoded group column aggregates by
    // dictionary *code* — the hash map is replaced by a dense array indexed
    // by code (plus one slot for NULL) and no group key is materialized until
    // the group is first seen.
    if let [BoundExpr::Column(c)] = group_exprs {
        if let EncodedColumn::StrDict {
            dict, codes, nulls, ..
        } = batch.column(*c)
        {
            return dict_group_aggregate(batch, dict, codes, nulls, aggs);
        }
    }

    let group_sources: Vec<ValueSource> = group_exprs
        .iter()
        .map(|e| ValueSource::for_expr(batch, e))
        .collect();
    let agg_sources: Vec<ValueSource> = aggs
        .iter()
        .map(|a| match &a.arg {
            Some(e) => ValueSource::for_expr(batch, e),
            None => ValueSource::Star,
        })
        .collect();
    let needs_scratch = group_sources
        .iter()
        .chain(agg_sources.iter())
        .any(ValueSource::needs_scratch);

    let mut index: HashMap<Row, usize> = HashMap::new();
    let mut groups: Vec<(Row, AggStates)> = Vec::new();
    for (k, i) in batch.selection().iter().enumerate() {
        let scratch = needs_scratch.then(|| batch.scratch_row(i));
        let key = Row::new(
            group_sources
                .iter()
                .map(|s| s.value(k, scratch.as_ref()).expect("group value"))
                .collect(),
        );
        let slot = *index.entry(key).or_insert_with_key(|key| {
            groups.push((key.clone(), AggStates::new(aggs)));
            groups.len() - 1
        });
        let states = &mut groups[slot].1;
        for (state, source) in states.0.iter_mut().zip(agg_sources.iter()) {
            state.update(source.value(k, scratch.as_ref()).as_ref());
        }
    }
    groups
}

/// Dictionary-code group-by: one dense slot per dictionary entry.
fn dict_group_aggregate(
    batch: &ColumnBatch<'_>,
    dict: &[std::sync::Arc<str>],
    codes: &[u32],
    nulls: &Option<Vec<bool>>,
    aggs: &[AggExpr],
) -> Vec<(Row, AggStates)> {
    let agg_sources: Vec<ValueSource> = aggs
        .iter()
        .map(|a| match &a.arg {
            Some(e) => ValueSource::for_expr(batch, e),
            None => ValueSource::Star,
        })
        .collect();
    let needs_scratch = agg_sources.iter().any(ValueSource::needs_scratch);

    // Slot per code, final slot for NULL keys; `order` preserves first-seen
    // emission order so output matches the hash path exactly.
    let null_slot = dict.len();
    let mut slots: Vec<Option<AggStates>> = vec![None; dict.len() + 1];
    let mut order: Vec<usize> = Vec::new();
    for (k, i) in batch.selection().iter().enumerate() {
        let slot = if is_null_at(nulls, i) {
            null_slot
        } else {
            codes[i] as usize
        };
        let states = slots[slot].get_or_insert_with(|| {
            order.push(slot);
            AggStates::new(aggs)
        });
        let scratch = needs_scratch.then(|| batch.scratch_row(i));
        for (state, source) in states.0.iter_mut().zip(agg_sources.iter()) {
            state.update(source.value(k, scratch.as_ref()).as_ref());
        }
    }
    order
        .into_iter()
        .map(|slot| {
            let key = if slot == null_slot {
                Value::Null
            } else {
                Value::Str(dict[slot].clone())
            };
            (Row::new(vec![key]), slots[slot].take().expect("seen slot"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{SchemaResolver, UdfRegistry};
    use crate::parser::parse_select;
    use shark_columnar::ColumnarPartition;
    use shark_common::{row, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("mode", DataType::Str),
            ("price", DataType::Float),
            ("day", DataType::Date),
        ])
    }

    fn partition(n: usize) -> ColumnarPartition {
        let modes = ["AIR", "SHIP", "TRUCK"];
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                row![
                    i as i64,
                    modes[i % 3],
                    i as f64 * 0.5,
                    Value::Date(10 + (i / 40) as i32)
                ]
            })
            .collect();
        ColumnarPartition::from_rows(&schema(), &rows)
    }

    fn bind(pred: &str) -> BoundExpr {
        let stmt = parse_select(&format!("SELECT 1 FROM t WHERE {pred}")).unwrap();
        let schema = schema();
        BoundExpr::bind(
            &stmt.selection.unwrap(),
            &SchemaResolver { schema: &schema },
            &UdfRegistry::new(),
        )
        .unwrap()
    }

    fn kept(part: &ColumnarPartition, pred: &str) -> Vec<usize> {
        let projection: Vec<usize> = (0..part.num_columns()).collect();
        let mut batch = ColumnBatch::new(part, &projection);
        FilterKernel::compile(&bind(pred)).apply(&mut batch);
        batch.selection().iter().collect()
    }

    fn expected(part: &ColumnarPartition, pred: &str) -> Vec<usize> {
        let filter = bind(pred);
        part.to_rows()
            .iter()
            .enumerate()
            .filter(|(_, r)| filter.eval_predicate(r))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn kernels_match_row_evaluation_for_every_encoding() {
        let part = partition(240);
        for pred in [
            "id < 100",         // bit-packed int
            "100 > id",         // flipped literal-first form
            "mode = 'SHIP'",    // dictionary
            "mode <> 'AIR'",    // dictionary, negative
            "price >= 60.0",    // plain float
            "day > 12",         // int RLE under Date typing
            "id % 2 = 0",       // generic fallback (arithmetic left side)
            "mode = 'MISSING'", // empty result
        ] {
            assert_eq!(kept(&part, pred), expected(&part, pred), "{pred}");
        }
    }

    #[test]
    fn partial_aggregate_matches_row_fold() {
        let part = partition(240);
        let projection: Vec<usize> = (0..part.num_columns()).collect();
        let batch = ColumnBatch::new(&part, &projection);
        let group = vec![BoundExpr::Column(1)];
        let aggs = vec![
            AggExpr {
                func: crate::aggregate::AggFunc::Count,
                arg: None,
            },
            AggExpr {
                func: crate::aggregate::AggFunc::Sum,
                arg: Some(BoundExpr::Column(2)),
            },
        ];
        let result = vector_partial_aggregate(&batch, &group, &aggs);

        // Row-path reference: fold rows in order into per-key states.
        let mut index: HashMap<Row, usize> = HashMap::new();
        let mut reference: Vec<(Row, AggStates)> = Vec::new();
        for r in part.to_rows() {
            let key = Row::new(vec![group[0].eval(&r)]);
            let slot = *index.entry(key.clone()).or_insert_with(|| {
                reference.push((key.clone(), AggStates::new(&aggs)));
                reference.len() - 1
            });
            reference[slot].1.update_row(&aggs, &r);
        }
        assert_eq!(result.len(), reference.len());
        for ((kv, sv), (kr, sr)) in result.iter().zip(reference.iter()) {
            assert_eq!(kv, kr);
            assert_eq!(sv.finalize(), sr.finalize());
        }
    }
}
