//! The SQL session: parse → plan → execute, plus DDL handling.
//!
//! [`SqlSession`] ties the pieces together the way Shark's driver does:
//! it owns the catalog and UDF registry, compiles statements with the parser
//! and planner, and executes them through [`crate::exec`]. `CREATE TABLE …
//! TBLPROPERTIES("shark.cache"="true") AS SELECT … DISTRIBUTE BY …` creates
//! (and, when cached, loads) derived tables, which is how the paper's
//! memstore and co-partitioning examples are expressed (§2, §3.4).

use std::sync::Arc;

use shark_common::{Result, Row, SharkError};
use shark_rdd::RddContext;

use crate::ast::Statement;
use crate::catalog::{Catalog, CatalogSnapshot, TableMeta};
use crate::exec::{self, ExecConfig, LoadReport, QueryResult, QueryStream, TableRdd};
use crate::expr::UdfRegistry;
use crate::parser;
use crate::plan::{plan_select, QueryPlan};
use crate::plancache::{statement_fingerprint, PlanCache};

/// A SQL session: catalog + UDFs + execution configuration over an
/// [`RddContext`].
pub struct SqlSession {
    ctx: RddContext,
    catalog: Arc<Catalog>,
    udfs: UdfRegistry,
    exec: ExecConfig,
    plan_cache: Option<Arc<PlanCache>>,
}

/// A SELECT compiled (or fetched from the plan cache) against one pinned
/// catalog snapshot; holding it keeps the snapshot's tables alive until the
/// plan executes.
struct Planned {
    plan: Arc<QueryPlan>,
    snapshot: Arc<CatalogSnapshot>,
    cache_hit: bool,
}

impl SqlSession {
    /// Create a session with the given execution configuration and a
    /// private catalog.
    pub fn new(ctx: RddContext, exec: ExecConfig) -> SqlSession {
        SqlSession::with_catalog(ctx, exec, Arc::new(Catalog::new()))
    }

    /// Create a session over a *shared* catalog. Every session built from
    /// the same `Arc<Catalog>` (and a clone of the same [`RddContext`]) sees
    /// the same tables and the same memstore — the multi-user warehouse
    /// server setup, where `CREATE TABLE` in one session is immediately
    /// visible to all others. UDFs and the execution configuration stay
    /// per-session.
    pub fn with_catalog(ctx: RddContext, exec: ExecConfig, catalog: Arc<Catalog>) -> SqlSession {
        SqlSession {
            ctx,
            catalog,
            udfs: UdfRegistry::new(),
            exec,
            plan_cache: None,
        }
    }

    /// Attach a shared [`PlanCache`]. Parse results are always reusable
    /// through it; compiled plans are reused only when their recorded
    /// catalog epoch matches the executing snapshot's, and never for
    /// sessions with registered UDFs (plans bind per-session UDF closures).
    pub fn set_plan_cache(&mut self, cache: Arc<PlanCache>) {
        self.plan_cache = Some(cache);
    }

    /// The attached plan cache, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// The underlying RDD context.
    pub fn context(&self) -> &RddContext {
        &self.ctx
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The current execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec
    }

    /// Replace the execution configuration (e.g. switch between the Shark
    /// and Hive emulation for a benchmark run).
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// Set how many result partitions this session's [`QueryStream`]s may
    /// execute ahead of the consumer (0 = serial execution inside
    /// `next_batch`). Serving layers cap this under their admission budget.
    pub fn set_stream_prefetch(&mut self, depth: usize) {
        self.exec.stream_prefetch = depth;
    }

    /// The session's streaming prefetch depth.
    pub fn stream_prefetch(&self) -> usize {
        self.exec.stream_prefetch
    }

    /// Toggle the vectorized batch execution path. When disabled, scans and
    /// aggregations fall back to row-at-a-time evaluation — the two paths
    /// produce byte-identical results, so this exists for A/B comparison and
    /// regression testing.
    pub fn set_vectorized(&mut self, vectorized: bool) {
        self.exec.vectorized = vectorized;
    }

    /// Register a user-defined scalar function usable from SQL.
    pub fn register_udf<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[shark_common::Value]) -> shark_common::Value + Send + Sync + 'static,
    {
        self.udfs.register(name, f);
    }

    /// The UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Register a base table.
    pub fn register_table(&self, table: TableMeta) -> Arc<TableMeta> {
        self.catalog.register(table)
    }

    /// Load a cached table into the memstore now (otherwise the first scan
    /// loads it lazily partition by partition).
    pub fn load_table(&self, name: &str) -> Result<LoadReport> {
        let table = self.catalog.get(name)?;
        exec::load_table(&self.ctx, &table)
    }

    /// Execute any supported SQL statement.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        let statement = self.parse_cached(text)?;
        Ok(self.execute_statement_cached(text, &statement)?.0)
    }

    /// Parse a statement, reusing the plan cache's parse tier when one is
    /// attached (parsing never consults the catalog, so parse reuse is
    /// epoch-independent and safe even for UDF sessions).
    pub fn parse_cached(&self, text: &str) -> Result<Arc<Statement>> {
        match &self.plan_cache {
            Some(cache) if cache.capacity() > 0 => {
                let fingerprint = statement_fingerprint(text);
                if let Some(entry) = cache.statement(fingerprint) {
                    return Ok(entry.statement.clone());
                }
                let statement = parser::parse(text)?;
                Ok(cache
                    .insert_statement(fingerprint, statement)
                    .statement
                    .clone())
            }
            _ => Ok(Arc::new(parser::parse(text)?)),
        }
    }

    /// Execute an already-parsed statement with plan-cache participation,
    /// returning the result and whether a cached plan was reused (the
    /// serving layer reports this per query and over the wire). `text` must
    /// be the statement's original SQL — it keys the cache.
    pub fn execute_statement_cached(
        &self,
        text: &str,
        statement: &Statement,
    ) -> Result<(QueryResult, bool)> {
        match statement {
            Statement::Select(stmt) => {
                let planned = self.plan_select_cached(Some(text), stmt)?;
                let hit = planned.cache_hit;
                Ok((self.execute_planned(planned)?, hit))
            }
            other => Ok((self.execute_statement(other)?, false)),
        }
    }

    /// Execute an already-parsed statement (lets a serving layer parse once
    /// for admission/cache bookkeeping and execute the same AST).
    pub fn execute_statement(&self, statement: &Statement) -> Result<QueryResult> {
        match statement {
            Statement::Select(stmt) => {
                let planned = self.plan_select_cached(None, stmt)?;
                self.execute_planned(planned)
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(name)?;
                Ok(QueryResult {
                    schema: shark_common::Schema::default(),
                    rows: vec![],
                    sim_seconds: 0.0,
                    real_seconds: 0.0,
                    plan: format!("drop_table({name})"),
                    notes: vec![],
                })
            }
            Statement::CreateTableAs {
                name,
                properties,
                query,
            } => self.create_table_as(name, properties, query),
            Statement::Explain { analyze, query } => {
                let snapshot = self.catalog.snapshot();
                let plan = plan_select(query, &snapshot, &self.udfs)?;
                if !*analyze {
                    return Ok(crate::explain::explain_plan(&plan));
                }
                crate::explain::explain_analyze(&self.ctx, &plan, &self.exec, snapshot)
            }
        }
    }

    /// Execute a SELECT incrementally, returning a [`QueryStream`] cursor
    /// that delivers row batches as partitions finish (and, for LIMIT
    /// queries, stops launching partitions once enough rows streamed).
    pub fn sql_stream(&self, text: &str) -> Result<QueryStream> {
        if self.plan_cache.is_some() {
            if let Statement::Select(stmt) = self.parse_cached(text)?.as_ref() {
                return Ok(self.sql_to_stream_cached(text, stmt)?.0);
            }
        }
        self.sql_to_stream(&parser::parse_select(text)?)
    }

    /// Stream an already-parsed SELECT (the statement-level counterpart of
    /// [`SqlSession::sql_stream`], used by serving layers that parse once
    /// for admission/pinning bookkeeping). The returned cursor pins the
    /// catalog snapshot its plan resolved against until it closes, so a
    /// concurrent `DROP TABLE` + recreate can never change what it drains.
    pub fn sql_to_stream(&self, stmt: &crate::ast::SelectStmt) -> Result<QueryStream> {
        let planned = self.plan_select_cached(None, stmt)?;
        self.stream_planned(planned)
    }

    /// Stream an already-parsed SELECT with plan-cache participation,
    /// returning the cursor and whether a cached plan was reused. `text`
    /// must be the statement's original SQL — it keys the cache.
    pub fn sql_to_stream_cached(
        &self,
        text: &str,
        stmt: &crate::ast::SelectStmt,
    ) -> Result<(QueryStream, bool)> {
        let planned = self.plan_select_cached(Some(text), stmt)?;
        let hit = planned.cache_hit;
        Ok((self.stream_planned(planned)?, hit))
    }

    /// Pin a snapshot and produce the plan for `stmt` — from the cache when
    /// `text` is provided, a cache is attached, the session has no UDFs, and
    /// the cached plan's epoch matches the pinned snapshot's; compiled
    /// fresh (and cached for the next execution) otherwise.
    fn plan_select_cached(
        &self,
        text: Option<&str>,
        stmt: &crate::ast::SelectStmt,
    ) -> Result<Planned> {
        // Pin one snapshot for the query's whole lifetime: every table
        // resolves once against it, and a concurrent DROP TABLE can neither
        // change what the running plan sees nor reclaim the dropped
        // version's memstore before the query finishes. A cached plan is
        // only reused at the exact epoch it was compiled at, so it holds
        // the same `Arc<TableMeta>`s this snapshot resolves to.
        let snapshot = self.catalog.snapshot();
        if shark_obs::active() {
            shark_obs::event("snapshot-pin", &[("epoch", &snapshot.epoch().to_string())]);
        }
        let cacheable = match (&self.plan_cache, text) {
            (Some(cache), Some(text)) if self.udfs.is_empty() && cache.capacity() > 0 => {
                Some((cache, text))
            }
            _ => None,
        };
        if let Some((cache, text)) = cacheable {
            let fingerprint = statement_fingerprint(text);
            let entry = match cache.statement(fingerprint) {
                Some(entry) => entry,
                None => cache.insert_statement(fingerprint, Statement::Select(stmt.clone())),
            };
            if let Some(plan) = entry.plan_for_epoch(snapshot.epoch()) {
                cache.record_plan_lookup(Some(&entry), true);
                if shark_obs::active() {
                    shark_obs::event(
                        "plan-cache-hit",
                        &[("epoch", &snapshot.epoch().to_string())],
                    );
                }
                return Ok(Planned {
                    plan,
                    snapshot,
                    cache_hit: true,
                });
            }
            let plan = {
                let _span = shark_obs::span("plan");
                Arc::new(plan_select(stmt, &snapshot, &self.udfs)?)
            };
            // Record the miss before storing the fresh plan: once the plan
            // is in, `has_plan()` can no longer distinguish a cold miss
            // from a DDL-staled one.
            cache.record_plan_lookup(Some(&entry), false);
            entry.store_plan(snapshot.epoch(), plan.clone());
            return Ok(Planned {
                plan,
                snapshot,
                cache_hit: false,
            });
        }
        let plan = {
            let _span = shark_obs::span("plan");
            Arc::new(plan_select(stmt, &snapshot, &self.udfs)?)
        };
        Ok(Planned {
            plan,
            snapshot,
            cache_hit: false,
        })
    }

    /// Execute a planned SELECT while its snapshot pin is held.
    fn execute_planned(&self, planned: Planned) -> Result<QueryResult> {
        let result = exec::execute(&self.ctx, &planned.plan, &self.exec);
        drop(planned.snapshot);
        result
    }

    /// Turn a planned SELECT into a streaming cursor that keeps the
    /// snapshot pinned until it closes.
    fn stream_planned(&self, planned: Planned) -> Result<QueryStream> {
        Ok(exec::execute_stream(&self.ctx, &planned.plan, &self.exec)?
            .with_snapshot(planned.snapshot))
    }

    /// Execute a query and return its result as an RDD plus schema — the
    /// `sql2rdd` API used to feed ML algorithms (§4.1, Listing 1). The
    /// returned [`TableRdd`] pins the catalog snapshot it was planned
    /// against, since ML pipelines may run it long after planning.
    pub fn sql_to_rdd(&self, text: &str) -> Result<TableRdd> {
        let stmt = parser::parse_select(text)?;
        let snapshot = self.catalog.snapshot();
        let plan = plan_select(&stmt, &snapshot, &self.udfs)?;
        let mut table = exec::build_pipeline(&self.ctx, &plan, &self.exec)?;
        table.snapshot = Some(snapshot);
        Ok(table)
    }

    /// Kill a simulated worker node: drops its RDD-cache and memstore
    /// partitions and marks it failed on the cluster. Returns the number of
    /// memstore partitions lost (they will be recovered through lineage on
    /// the next scan).
    pub fn fail_node(&self, node: usize) -> usize {
        let lost = self.catalog.drop_node(node);
        self.ctx.fail_node(node);
        lost
    }

    fn create_table_as(
        &self,
        name: &str,
        properties: &[(String, String)],
        query: &crate::ast::SelectStmt,
    ) -> Result<QueryResult> {
        // Pin one snapshot for the whole CTAS: the source query resolves
        // every table against it once, so a concurrent drop/replace of a
        // source mid-CTAS cannot tear the new table's contents.
        let snapshot = self.catalog.snapshot();
        // Fail fast before doing any work; the authoritative (atomic) check
        // is the `register_if_absent` below, which closes the window where
        // two concurrent CTAS statements both pass this one.
        if self.catalog.contains(name) {
            return Err(SharkError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let wall = std::time::Instant::now();
        let plan = plan_select(query, &snapshot, &self.udfs)?;
        let schema = plan.output_schema.clone();

        // Stream the query and build the new table's partitions
        // incrementally — hash by the DISTRIBUTE BY column or round-robin —
        // instead of cloning a fully collected result set.
        let mut stream = exec::execute_stream(&self.ctx, &plan, &self.exec)?;
        let num_partitions = self.ctx.config().default_partitions.max(1);
        let mut partitions: Vec<Vec<Row>> = vec![Vec::new(); num_partitions];
        let mut row_count = 0u64;
        while let Some(batch) = stream.next_batch()? {
            for row in batch {
                let p = match plan.distribute_by {
                    Some(col) => shark_common::hash::hash_partition(row.get(col), num_partitions),
                    None => row_count as usize % num_partitions,
                };
                partitions[p].push(row);
                row_count += 1;
            }
        }
        let sim_seconds_exec = stream.sim_seconds();
        let stream_notes = stream.notes().to_vec();
        let plan_desc = stream.plan().to_string();

        let partitions = Arc::new(partitions);
        let gen_parts = partitions.clone();
        let mut table = TableMeta::new(name, schema.clone(), num_partitions, move |p| {
            gen_parts[p].clone()
        })
        .with_row_count_hint(row_count);

        let cache_requested = properties
            .iter()
            .any(|(k, v)| k.eq_ignore_ascii_case("shark.cache") && v.eq_ignore_ascii_case("true"));
        if cache_requested {
            table = table.with_cache(self.ctx.config().cluster.num_nodes);
        }
        if let Some(col) = plan.distribute_by {
            table = table.with_distribute_by(&schema.field(col).name)?;
        }
        if let Some((_, other)) = properties
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("copartition"))
        {
            table = table.with_copartition(other);
        }
        let built = Arc::new(table);
        let mut notes = stream_notes;
        let mut sim_seconds = sim_seconds_exec;
        if cache_requested {
            // Load the memstore *before* publishing the table: once it is
            // visible in a snapshot, no query may ever find a cached
            // partition missing and fault it in from lineage — a freshly
            // created table starts fully resident or not at all. The load
            // is invisible to budget enforcement until registration, which
            // matches the old behavior of pinning the registered-but-
            // loading target: either way the bytes become evictable only
            // once the CTAS completes.
            let load = exec::load_table(&self.ctx, &built)?;
            sim_seconds += load.sim_seconds;
            notes.push(format!(
                "loaded {} rows ({} columnar bytes) into the memstore",
                load.rows, load.stored_bytes
            ));
        }
        self.catalog.register_arc_if_absent(built)?;
        Ok(QueryResult {
            schema,
            rows: vec![],
            sim_seconds,
            real_seconds: wall.elapsed().as_secs_f64(),
            plan: format!("create_table_as({name}) <- {plan_desc}"),
            notes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType, Schema, Value};
    use shark_rdd::RddConfig;

    fn session() -> SqlSession {
        let ctx = RddContext::new(RddConfig::default());
        let session = SqlSession::new(ctx, ExecConfig::shark());
        // A small sales table: 4 partitions, clustered by day.
        let schema = Schema::from_pairs(&[
            ("day", DataType::Int),
            ("store", DataType::Str),
            ("amount", DataType::Float),
        ]);
        session.register_table(
            TableMeta::new("sales", schema, 4, |p| {
                let stores = ["north", "south", "east"];
                (0..30)
                    .map(|i| row![p as i64, stores[i % 3], (i as f64) + (p as f64) * 0.1])
                    .collect()
            })
            .with_cache(4)
            .with_row_count_hint(120),
        );
        session
    }

    #[test]
    fn select_where_projects_and_filters() {
        let s = session();
        // Load the table so partition statistics exist for map pruning.
        s.load_table("sales").unwrap();
        let r = s
            .sql("SELECT store, amount FROM sales WHERE day = 2 AND amount > 25")
            .unwrap();
        assert_eq!(r.schema.names(), vec!["store", "amount"]);
        assert!(!r.rows.is_empty());
        assert!(r.rows.iter().all(|row| row.get_float(1).unwrap() > 25.0));
        assert!(r.sim_seconds > 0.0);
        // Map pruning should have skipped the three other day-partitions.
        assert!(
            r.notes.iter().any(|n| n.contains("map pruning")),
            "notes: {:?}",
            r.notes
        );
    }

    #[test]
    fn group_by_aggregation_matches_manual_computation() {
        let s = session();
        let r = s
            .sql("SELECT store, COUNT(*) AS c, SUM(amount) AS total FROM sales GROUP BY store ORDER BY store")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.schema.names(), vec!["store", "c", "total"]);
        // 4 partitions x 30 rows / 3 stores = 40 rows per store.
        for row in &r.rows {
            assert_eq!(row.get_int(1).unwrap(), 40);
        }
        let east: f64 = r.rows[0].get_float(2).unwrap();
        assert!(east > 0.0);
    }

    #[test]
    fn order_by_and_limit() {
        let s = session();
        let r = s
            .sql("SELECT day, amount FROM sales ORDER BY amount DESC LIMIT 5")
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        let amounts: Vec<f64> = r.rows.iter().map(|r| r.get_float(1).unwrap()).collect();
        let mut sorted = amounts.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(amounts, sorted);
    }

    #[test]
    fn global_count_and_limit_pushdown() {
        let s = session();
        let r = s.sql("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(r.rows[0].get_int(0).unwrap(), 120);
        let r = s.sql("SELECT store FROM sales LIMIT 3").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert!(r.notes.iter().any(|n| n.contains("limit pushed down")));
    }

    #[test]
    fn streamed_order_by_merge_matches_collected_result() {
        let s = session();
        s.load_table("sales").unwrap();
        let query = "SELECT day, amount FROM sales ORDER BY amount DESC";
        let collected = s.sql(query).unwrap();
        let mut stream = s.sql_stream(query).unwrap().with_batch_size(7);
        let mut rows = Vec::new();
        while let Some(batch) = stream.next_batch().unwrap() {
            assert!(batch.len() <= 7);
            rows.extend(batch);
        }
        assert_eq!(rows, collected.rows);
        assert_eq!(stream.progress().rows_streamed, collected.rows.len() as u64);
        // Every partition had to run before the merge could start.
        assert_eq!(stream.progress().partitions_streamed, 4);
    }

    #[test]
    fn streamed_limit_executes_fewer_partitions() {
        let s = session();
        s.load_table("sales").unwrap();
        let mut stream = s.sql_stream("SELECT store FROM sales LIMIT 3").unwrap();
        let mut rows = Vec::new();
        while let Some(batch) = stream.next_batch().unwrap() {
            rows.extend(batch);
        }
        assert_eq!(rows.len(), 3);
        let progress = stream.progress();
        assert_eq!(progress.partitions_total, 4);
        assert!(
            progress.partitions_streamed < progress.partitions_total,
            "limit should stop partition launches early: {progress:?}"
        );
        assert_eq!(progress.rows_streamed, 3);
        assert!(stream.is_exhausted());
        assert!(stream
            .notes()
            .iter()
            .any(|n| n.contains("stream: stopped after")));
    }

    #[test]
    fn streaming_reports_first_row_before_completion() {
        let s = session();
        let mut stream = s
            .sql_stream("SELECT day, store, amount FROM sales")
            .unwrap();
        let first = stream.next_batch().unwrap().unwrap();
        assert!(!first.is_empty());
        let ttfr_sim = stream.progress().sim_seconds_to_first_row.unwrap();
        assert!(stream.progress().time_to_first_row.is_some());
        while stream.next_batch().unwrap().is_some() {}
        assert_eq!(stream.progress().partitions_streamed, 4);
        assert!(
            ttfr_sim < stream.sim_seconds(),
            "first row ({ttfr_sim}s) must arrive before the stream completes ({}s)",
            stream.sim_seconds()
        );
    }

    /// A table whose sort key is perfectly correlated with the partition
    /// index, so partition statistics can prove top-k early termination.
    fn correlated_session(partitions: usize, rows_per_partition: usize) -> SqlSession {
        let ctx = RddContext::new(RddConfig::default());
        let session = SqlSession::new(ctx, ExecConfig::shark());
        let schema = Schema::from_pairs(&[("v", DataType::Int), ("tag", DataType::Str)]);
        session.register_table(
            TableMeta::new("ordered_t", schema, partitions, move |p| {
                (0..rows_per_partition)
                    .map(|i| row![(p * rows_per_partition + i) as i64, "x"])
                    .collect()
            })
            .with_cache(4)
            .with_row_count_hint((partitions * rows_per_partition) as u64),
        );
        session
    }

    #[test]
    fn topk_stream_executes_at_most_ceil_limit_over_partition_rows_partitions() {
        for prefetch in [0usize, 2] {
            let mut s = correlated_session(4, 50);
            s.set_stream_prefetch(prefetch);
            s.load_table("ordered_t").unwrap();
            let limit = 3usize;
            let mut stream = s
                .sql_stream("SELECT v FROM ordered_t ORDER BY v LIMIT 3")
                .unwrap();
            let mut rows = Vec::new();
            while let Some(batch) = stream.next_batch().unwrap() {
                rows.extend(batch);
            }
            let got: Vec<i64> = rows.iter().map(|r| r.get_int(0).unwrap()).collect();
            assert_eq!(got, vec![0, 1, 2], "prefetch={prefetch}");
            let progress = stream.progress();
            // The whole limit fits in one partition's rows; the statistics
            // must prove the other partitions cannot contribute.
            let bound = limit.div_ceil(50);
            assert!(
                progress.partitions_streamed <= bound,
                "prefetch={prefetch}: streamed {}/{} partitions, bound {bound}",
                progress.partitions_streamed,
                progress.partitions_total
            );
            assert!(
                progress.partitions_streamed < progress.partitions_total,
                "top-k must execute fewer partitions than the table has"
            );
            assert!(
                stream.notes().iter().any(|n| n.contains("top-k pushdown")),
                "{:?}",
                stream.notes()
            );
        }
    }

    #[test]
    fn topk_stream_reaches_first_row_in_less_simulated_time_than_full_collect() {
        // More partitions than the simulated cluster has task slots, so the
        // full-collect result stage takes several waves while the top-k
        // stream's first row needs a single task.
        let mut s = correlated_session(32, 50);
        s.set_stream_prefetch(0);
        s.load_table("ordered_t").unwrap();
        let blocking = s
            .sql("SELECT v FROM ordered_t ORDER BY v DESC LIMIT 5")
            .unwrap();
        let mut stream = s
            .sql_stream("SELECT v FROM ordered_t ORDER BY v DESC LIMIT 5")
            .unwrap();
        let first = stream.next_batch().unwrap().unwrap();
        assert_eq!(first[0].get_int(0).unwrap(), 32 * 50 - 1);
        let ttfr_sim = stream.progress().sim_seconds_to_first_row.unwrap();
        assert!(
            ttfr_sim < blocking.sim_seconds,
            "top-k first row at {ttfr_sim}s vs full collect {}s",
            blocking.sim_seconds
        );
        while stream.next_batch().unwrap().is_some() {}
        let streamed_rows: u64 = stream.progress().rows_streamed;
        assert_eq!(streamed_rows, 5);
        assert_eq!(
            blocking.rows.len(),
            5,
            "blocking path returns the same result"
        );
    }

    #[test]
    fn stream_failure_latches_on_serial_and_prefetched_paths() {
        for prefetch in [0usize, 3] {
            let mut s = session();
            s.set_stream_prefetch(prefetch);
            // Partition 0 holds days < 1; the UDF explodes on any later
            // partition, so the first batch succeeds and the failure must
            // surface on the *next* next_batch call.
            s.register_udf("explode_after_p0", |args| {
                let day = args[0].as_float().unwrap_or(0.0) as i64;
                if day >= 1 {
                    panic!("boom on day {day}");
                }
                args[0].clone()
            });
            let mut stream = s
                .sql_stream("SELECT explode_after_p0(day) FROM sales")
                .unwrap();
            let first = stream
                .next_batch()
                .unwrap()
                .expect("partition 0 must deliver");
            assert_eq!(first.len(), 30, "prefetch={prefetch}");
            let err = stream.next_batch().unwrap_err();
            assert!(
                err.to_string().contains("panicked"),
                "prefetch={prefetch}: {err}"
            );
            // Latched: the stream never resumes past the failed partition.
            assert!(stream.next_batch().unwrap().is_none());
            assert!(stream.next_batch().unwrap().is_none());
            assert!(stream.is_exhausted());
        }
    }

    #[test]
    fn prefetched_stream_matches_serial_stream_and_records_hits() {
        let s = session();
        s.load_table("sales").unwrap();
        let query = "SELECT day, store, amount FROM sales";
        let serial: Vec<_> = {
            let mut stream = s.sql_stream(query).unwrap().with_prefetch(0);
            let mut rows = Vec::new();
            while let Some(batch) = stream.next_batch().unwrap() {
                rows.extend(batch);
            }
            assert_eq!(stream.progress().prefetch_hits, 0);
            rows
        };
        let mut stream = s.sql_stream(query).unwrap().with_prefetch(4);
        assert_eq!(stream.prefetch(), 4);
        let mut rows = Vec::new();
        while let Some(batch) = stream.next_batch().unwrap() {
            rows.extend(batch);
        }
        assert_eq!(rows, serial);
        assert_eq!(stream.progress().partitions_streamed, 4);
    }

    #[test]
    fn create_table_as_and_query_it() {
        let s = session();
        let r = s
            .sql(
                "CREATE TABLE big_sales TBLPROPERTIES(\"shark.cache\" = \"true\") AS \
                 SELECT day, store, amount FROM sales WHERE amount > 10 DISTRIBUTE BY store",
            )
            .unwrap();
        assert!(r.notes.iter().any(|n| n.contains("memstore")));
        assert!(s.catalog().contains("big_sales"));
        let r2 = s.sql("SELECT COUNT(*) FROM big_sales").unwrap();
        let expected = s
            .sql("SELECT COUNT(*) FROM sales WHERE amount > 10")
            .unwrap();
        assert_eq!(
            r2.rows[0].get_int(0).unwrap(),
            expected.rows[0].get_int(0).unwrap()
        );
        s.sql("DROP TABLE big_sales").unwrap();
        assert!(!s.catalog().contains("big_sales"));
    }

    #[test]
    fn udfs_usable_in_queries() {
        let mut s = session();
        s.register_udf("bucket", |args| {
            Value::Int(args[0].as_float().unwrap_or(0.0) as i64 / 10)
        });
        let r = s
            .sql("SELECT bucket(amount), COUNT(*) FROM sales GROUP BY bucket(amount)")
            .unwrap();
        assert!(r.rows.len() >= 2);
    }

    #[test]
    fn hive_mode_is_slower_than_shark_for_the_same_query() {
        let s = session();
        s.load_table("sales").unwrap();
        s.context().reset_simulation();
        let shark = s
            .sql("SELECT store, SUM(amount) FROM sales GROUP BY store")
            .unwrap();
        // Switch to the Hive emulation on a Hadoop-profile context: build a
        // fresh session to swap the cluster cost profile.
        let hive_ctx = RddContext::new(RddConfig {
            cluster: shark_cluster::ClusterConfig::small(4, 2)
                .with_profile(shark_cluster::EngineProfile::hadoop()),
            ..RddConfig::default()
        });
        let hive = SqlSession::new(hive_ctx, ExecConfig::hive());
        let schema = Schema::from_pairs(&[
            ("day", DataType::Int),
            ("store", DataType::Str),
            ("amount", DataType::Float),
        ]);
        hive.register_table(TableMeta::new("sales", schema, 4, |p| {
            let stores = ["north", "south", "east"];
            (0..30)
                .map(|i| row![p as i64, stores[i % 3], (i as f64) + (p as f64) * 0.1])
                .collect()
        }));
        let hive_result = hive
            .sql("SELECT store, SUM(amount) FROM sales GROUP BY store")
            .unwrap();
        assert_eq!(hive_result.rows.len(), shark.rows.len());
        assert!(
            hive_result.sim_seconds > shark.sim_seconds * 5.0,
            "hive {} vs shark {}",
            hive_result.sim_seconds,
            shark.sim_seconds
        );
    }

    #[test]
    fn sql_to_rdd_feeds_further_processing() {
        let s = session();
        let table = s
            .sql_to_rdd("SELECT amount FROM sales WHERE store = 'north'")
            .unwrap();
        assert_eq!(table.schema.names(), vec!["amount"]);
        let total: f64 = table
            .rdd
            .map(|r| r.get_float(0).unwrap_or(0.0))
            .reduce(|a, b| a + b)
            .unwrap()
            .unwrap_or(0.0);
        assert!(total > 0.0);
    }

    #[test]
    fn node_failure_recovers_through_lineage() {
        let s = session();
        s.load_table("sales").unwrap();
        let before = s.sql("SELECT COUNT(*) FROM sales").unwrap();
        let lost = s.fail_node(1);
        assert!(lost > 0);
        let after = s.sql("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(
            before.rows[0].get_int(0).unwrap(),
            after.rows[0].get_int(0).unwrap()
        );
    }

    #[test]
    fn sessions_sharing_a_catalog_see_each_others_tables() {
        let s1 = session();
        let s2 = SqlSession::with_catalog(
            s1.context().clone(),
            ExecConfig::shark(),
            s1.catalog().clone(),
        );
        // s2 sees the table s1 registered...
        let r = s2.sql("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(r.rows[0].get_int(0).unwrap(), 120);
        // ...and a table created through s2 is visible from s1.
        s2.sql("CREATE TABLE north AS SELECT day, amount FROM sales WHERE store = 'north'")
            .unwrap();
        assert!(s1.catalog().contains("north"));
        let r = s1.sql("SELECT COUNT(*) FROM north").unwrap();
        assert_eq!(r.rows[0].get_int(0).unwrap(), 40);
        // UDFs stay per-session.
        let mut s3 = SqlSession::with_catalog(
            s1.context().clone(),
            ExecConfig::shark(),
            s1.catalog().clone(),
        );
        s3.register_udf("twice", |args| {
            Value::Float(args[0].as_float().unwrap_or(0.0) * 2.0)
        });
        assert!(s3.sql("SELECT twice(amount) FROM sales LIMIT 1").is_ok());
        assert!(s1.sql("SELECT twice(amount) FROM sales LIMIT 1").is_err());
    }

    #[test]
    fn streaming_cursor_is_isolated_from_concurrent_ddl() {
        let s1 = session();
        s1.load_table("sales").unwrap();
        let query = "SELECT day, store, amount FROM sales";
        let expected = s1.sql(query).unwrap();
        let mut stream = s1.sql_stream(query).unwrap();
        let first = stream.next_batch().unwrap().unwrap();

        // Another session over the same catalog drops and recreates the
        // table mid-stream.
        let s2 = SqlSession::with_catalog(
            s1.context().clone(),
            ExecConfig::shark(),
            s1.catalog().clone(),
        );
        let old_version = s1.catalog().get("sales").unwrap();
        s2.sql("DROP TABLE sales").unwrap();
        let schema = Schema::from_pairs(&[("day", DataType::Int)]);
        s2.register_table(TableMeta::new("sales", schema, 1, |_| vec![row![7i64]]));

        // The dropped version stays resident (deferred) while the cursor
        // pins its snapshot, and nothing rebuilds into it.
        assert!(s1.catalog().deferred_drop_bytes() > 0);
        assert_eq!(s1.catalog().reclaim_unreferenced(), 0);

        // New queries see the one-row replacement; the cursor drains the
        // pinned version byte-identically to the pre-DDL blocking result.
        let replaced = s2.sql("SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(replaced.rows[0].get_int(0).unwrap(), 1);
        let mut rows = first;
        while let Some(batch) = stream.next_batch().unwrap() {
            rows.extend(batch);
        }
        assert_eq!(rows, expected.rows);
        assert_eq!(
            old_version.cached.as_ref().unwrap().rebuilds(),
            0,
            "no partition of a dropped table may be rebuilt"
        );

        // Exhausting the cursor released its snapshot: the old version is
        // now reclaimable, and reclamation evicts its partitions.
        assert_eq!(s1.catalog().reclaim_unreferenced(), 1);
        let records = s1.catalog().drain_reclaimed();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "sales");
        assert_eq!(old_version.cached.as_ref().unwrap().memory_bytes(), 0);
        assert_eq!(s1.catalog().deferred_drop_bytes(), 0);
    }

    #[test]
    fn statements_report_their_referenced_tables() {
        let stmt = crate::parser::parse(
            "SELECT a.x FROM alpha a JOIN beta b ON a.x = b.x JOIN Alpha c ON a.x = c.x",
        )
        .unwrap();
        assert_eq!(stmt.referenced_tables(), vec!["alpha", "beta"]);
        let ctas = crate::parser::parse("CREATE TABLE t AS SELECT x FROM source").unwrap();
        assert_eq!(ctas.referenced_tables(), vec!["source"]);
        let drop = crate::parser::parse("DROP TABLE t").unwrap();
        assert!(drop.referenced_tables().is_empty());
    }

    #[test]
    fn errors_are_reported() {
        let s = session();
        assert!(s.sql("SELECT * FROM missing").is_err());
        assert!(s.sql("SELECT missing_col FROM sales").is_err());
        assert!(s.sql("CREATE TABLE sales AS SELECT * FROM sales").is_err());
        assert!(s.sql("DROP TABLE nope").is_err());
    }
}
