//! Table-scan RDD implementations.
//!
//! Two scan paths exist, matching the "Shark", "Shark (disk)" and "Hive"
//! series of the paper's figures:
//!
//! * [`MemTableScanRdd`] reads the cached columnar memstore: it decodes only
//!   the projected columns, charges `CachedColumnar` I/O for exactly those
//!   columns' encoded bytes, applies pushed-down filters, and — if a
//!   partition was lost to a node failure — rebuilds it from the table's
//!   base generator (lineage recovery) while charging DFS I/O.
//! * [`DfsScanRdd`] reads the base generator directly ("data on HDFS"):
//!   every column's bytes are read and deserialization is charged.

use std::sync::Arc;

use shark_cluster::InputSource;
use shark_columnar::{ColumnBatch, ColumnarPartition};
use shark_common::size::estimate_slice;
use shark_common::{Result, Row};
use shark_rdd::rdd::{Lineage, RddImpl, ShuffleDepHandle};
use shark_rdd::{Rdd, RddContext, TaskMetrics};

use crate::aggregate::{AggExpr, AggStates};
use crate::catalog::{MemTable, TableMeta};
use crate::expr::BoundExpr;
use crate::vector::{vector_partial_aggregate, FilterKernel};

/// Cached unified-registry handles for the hot scan-path counters.
struct ScanMetrics {
    cache_hits: Arc<shark_obs::Counter>,
    cache_hit_bytes: Arc<shark_obs::Counter>,
    rebuilds: Arc<shark_obs::Counter>,
    promotions: Arc<shark_obs::Counter>,
}

fn scan_metrics() -> &'static ScanMetrics {
    static METRICS: std::sync::OnceLock<ScanMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = shark_obs::metrics();
        ScanMetrics {
            cache_hits: reg.counter(
                "shark_memstore_cache_hit_partitions_total",
                "Memstore scans served from the cached columnar form",
            ),
            cache_hit_bytes: reg.counter(
                "shark_memstore_cache_hit_bytes_total",
                "Projected columnar bytes served from the memstore cache",
            ),
            rebuilds: reg.counter(
                "shark_partition_rebuilds_total",
                "Evicted/lost partitions rebuilt from lineage during scans",
            ),
            promotions: reg.counter(
                "shark_partition_promotions_total",
                "Demoted partitions faulted back in from the spill tier",
            ),
        }
    })
}

/// Apply pushed-down filters, charging their expression cost.
fn apply_filters(rows: &mut Vec<Row>, filters: &[BoundExpr], metrics: &mut TaskMetrics) {
    for f in filters {
        metrics.add_ops(rows.len() as f64 * f.op_count());
        rows.retain(|r| f.eval_predicate(r));
    }
}

/// Fetch one partition of a cached table in columnar form, charging the
/// memstore-hit or lineage-rebuild cost. Shared by the row and vectorized
/// scan RDDs and by the fused aggregate scan — all three charge identically.
///
/// On a miss the partition is recomputed from the table's base generator
/// (the lineage-recovery path of Figure 9, now also the partial-eviction
/// reload path). Resident partitions are never touched. A *retired*
/// memtable — its table version was dropped from the catalog and awaits
/// deferred reclamation — is read through without repopulating it:
/// rebuilding partitions into storage that is about to be reclaimed would
/// leak bytes past the deferred-drop accounting and count rebuilds against
/// a table that no longer exists.
fn load_partition(
    table: &TableMeta,
    mem: &MemTable,
    original: usize,
    projection: &[usize],
    metrics: &mut TaskMetrics,
) -> Arc<ColumnarPartition> {
    match mem.get(original) {
        Some(c) => {
            // Charge only the projected columns' encoded bytes (§3.2).
            let bytes: usize = projection.iter().map(|&c2| c.column_bytes(c2)).sum();
            metrics.record_input(
                c.num_rows() as u64,
                bytes as u64,
                InputSource::CachedColumnar,
            );
            scan_metrics().cache_hits.inc();
            scan_metrics().cache_hit_bytes.add(bytes as u64);
            if shark_obs::active() {
                shark_obs::annotate("cache", "hit");
            }
            c
        }
        None => {
            // A demoted partition faults back in from the spill tier at pure
            // I/O cost (no recompute): promotion. Only if no spill tier is
            // installed, the partition was dropped rather than demoted, or
            // its spill file is poisoned do we fall back to lineage.
            if let Some((spilled, io_bytes)) =
                mem.spill_fetch(&table.name, original, table.version())
            {
                metrics.record_input(spilled.num_rows() as u64, io_bytes, InputSource::Dfs);
                if !mem.is_retired() {
                    mem.put(original, spilled.clone());
                    mem.record_promotion();
                    scan_metrics().promotions.inc();
                    if shark_obs::active() {
                        shark_obs::annotate("promote", "spill");
                    }
                }
                return spilled;
            }
            let rows = (table.base)(original);
            let bytes = estimate_slice(&rows) as u64;
            metrics.record_input(rows.len() as u64, bytes, InputSource::Dfs);
            metrics.add_ops(rows.len() as f64 * 4.0); // rebuild columnar form
            let rebuilt = Arc::new(ColumnarPartition::from_rows(&table.schema, &rows));
            if !mem.is_retired() {
                mem.put(original, rebuilt.clone());
                mem.record_rebuild();
                scan_metrics().rebuilds.inc();
                if shark_obs::active() {
                    shark_obs::annotate("rebuild", "lineage");
                }
            }
            rebuilt
        }
    }
}

/// Run the compiled filter kernels over a batch, charging exactly what the
/// row path's [`apply_filters`] charges (each filter pays for the rows still
/// alive when it runs), and annotate the operator span with the batch
/// selectivity.
fn apply_kernels(
    batch: &mut ColumnBatch<'_>,
    filters: &[BoundExpr],
    kernels: &[FilterKernel],
    metrics: &mut TaskMetrics,
) {
    for (f, kernel) in filters.iter().zip(kernels.iter()) {
        metrics.add_ops(batch.num_selected() as f64 * f.op_count());
        kernel.apply(batch);
    }
    if shark_obs::active() && !filters.is_empty() {
        shark_obs::annotate("batch", &format!("selected={}", batch.num_selected()));
    }
}

/// Scan of a cached, columnar table (the Shark memstore path).
pub struct MemTableScanRdd {
    id: usize,
    table: Arc<TableMeta>,
    mem: Arc<MemTable>,
    /// Original partition indices this scan reads (after map pruning).
    selected: Arc<Vec<usize>>,
    /// Original column indices to project.
    projection: Arc<Vec<usize>>,
    filters: Arc<Vec<BoundExpr>>,
    /// Batch kernels compiled from `filters` (used when `vectorized`).
    kernels: Arc<Vec<FilterKernel>>,
    /// Batch-at-a-time execution over the compressed encodings (late
    /// materialization); false falls back to decode-then-filter rows.
    vectorized: bool,
}

impl MemTableScanRdd {
    /// Build a memstore scan RDD.
    pub fn create(
        ctx: &RddContext,
        table: Arc<TableMeta>,
        selected: Vec<usize>,
        projection: Vec<usize>,
        filters: Vec<BoundExpr>,
        vectorized: bool,
    ) -> Result<Rdd<Row>> {
        let mem = table.cached.clone().ok_or_else(|| {
            shark_common::SharkError::Plan(format!("table '{}' is not cached", table.name))
        })?;
        let kernels = filters.iter().map(FilterKernel::compile).collect();
        let inner = MemTableScanRdd {
            id: ctx.next_rdd_id(),
            table,
            mem,
            selected: Arc::new(selected),
            projection: Arc::new(projection),
            filters: Arc::new(filters),
            kernels: Arc::new(kernels),
            vectorized,
        };
        Ok(Rdd::new(ctx.clone(), Arc::new(inner)))
    }
}

impl RddImpl<Row> for MemTableScanRdd {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        format!("memstore_scan({})", self.table.name)
    }
    fn num_partitions(&self) -> usize {
        self.selected.len()
    }
    fn compute(
        &self,
        _ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<Row>> {
        let original = self.selected[partition];
        let columnar = load_partition(&self.table, &self.mem, original, &self.projection, metrics);
        if self.vectorized {
            // Batch path: predicates narrow a selection vector over the
            // compressed encodings; rows are built only for survivors.
            let mut batch = ColumnBatch::new(&columnar, &self.projection);
            apply_kernels(&mut batch, &self.filters, &self.kernels, metrics);
            Ok(batch.materialize())
        } else {
            let mut rows = columnar.project_rows(&self.projection);
            apply_filters(&mut rows, &self.filters, metrics);
            Ok(rows)
        }
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        Vec::new()
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        Vec::new()
    }
    fn preferred_node(&self, _ctx: &RddContext, partition: usize) -> Option<usize> {
        Some(self.mem.placement(self.selected[partition]))
    }
}

/// Fused scan → filter → partial-aggregate over a cached table: the batch
/// stays columnar from the memstore all the way into the per-group
/// aggregation states, so group keys and aggregate inputs are never
/// materialized as intermediate `Row`s (dictionary-coded group-by keys
/// aggregate by code). Emits the same `(group key, partial state)` pairs —
/// one per group per partition, folded in row order — that the row path's
/// per-row partial-aggregate produces after its map-side combine.
pub struct MemAggScanRdd {
    id: usize,
    table: Arc<TableMeta>,
    mem: Arc<MemTable>,
    selected: Arc<Vec<usize>>,
    projection: Arc<Vec<usize>>,
    filters: Arc<Vec<BoundExpr>>,
    kernels: Arc<Vec<FilterKernel>>,
    group_exprs: Arc<Vec<BoundExpr>>,
    aggs: Arc<Vec<AggExpr>>,
    /// Expression cost per surviving row (matches the row path's
    /// partial-aggregate charge).
    agg_ops_per_row: f64,
}

impl MemAggScanRdd {
    /// Build a fused scan+aggregate RDD over a cached table.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        ctx: &RddContext,
        table: Arc<TableMeta>,
        selected: Vec<usize>,
        projection: Vec<usize>,
        filters: Vec<BoundExpr>,
        group_exprs: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        agg_ops_per_row: f64,
    ) -> Result<Rdd<(Row, AggStates)>> {
        let mem = table.cached.clone().ok_or_else(|| {
            shark_common::SharkError::Plan(format!("table '{}' is not cached", table.name))
        })?;
        let kernels = filters.iter().map(FilterKernel::compile).collect();
        let inner = MemAggScanRdd {
            id: ctx.next_rdd_id(),
            table,
            mem,
            selected: Arc::new(selected),
            projection: Arc::new(projection),
            filters: Arc::new(filters),
            kernels: Arc::new(kernels),
            group_exprs: Arc::new(group_exprs),
            aggs: Arc::new(aggs),
            agg_ops_per_row,
        };
        Ok(Rdd::new(ctx.clone(), Arc::new(inner)))
    }
}

impl RddImpl<(Row, AggStates)> for MemAggScanRdd {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        format!("memstore_scan({})", self.table.name)
    }
    fn num_partitions(&self) -> usize {
        self.selected.len()
    }
    fn compute(
        &self,
        _ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<(Row, AggStates)>> {
        let original = self.selected[partition];
        let columnar = load_partition(&self.table, &self.mem, original, &self.projection, metrics);
        let mut batch = ColumnBatch::new(&columnar, &self.projection);
        apply_kernels(&mut batch, &self.filters, &self.kernels, metrics);
        metrics.add_ops(batch.num_selected() as f64 * self.agg_ops_per_row);
        let groups = vector_partial_aggregate(&batch, &self.group_exprs, &self.aggs);
        if shark_obs::active() {
            shark_obs::annotate("fused", "partial-aggregate");
        }
        Ok(groups)
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        Vec::new()
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        Vec::new()
    }
    fn preferred_node(&self, _ctx: &RddContext, partition: usize) -> Option<usize> {
        Some(self.mem.placement(self.selected[partition]))
    }
}

/// Scan of a table straight from its base generator (the "on HDFS" path used
/// by "Shark (disk)" and the Hive baseline).
pub struct DfsScanRdd {
    id: usize,
    table: Arc<TableMeta>,
    projection: Arc<Vec<usize>>,
    filters: Arc<Vec<BoundExpr>>,
}

impl DfsScanRdd {
    /// Build a DFS scan RDD over all partitions of the table.
    pub fn create(
        ctx: &RddContext,
        table: Arc<TableMeta>,
        projection: Vec<usize>,
        filters: Vec<BoundExpr>,
    ) -> Rdd<Row> {
        let inner = DfsScanRdd {
            id: ctx.next_rdd_id(),
            table,
            projection: Arc::new(projection),
            filters: Arc::new(filters),
        };
        Rdd::new(ctx.clone(), Arc::new(inner))
    }
}

impl RddImpl<Row> for DfsScanRdd {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        format!("dfs_scan({})", self.table.name)
    }
    fn num_partitions(&self) -> usize {
        self.table.num_partitions
    }
    fn compute(
        &self,
        _ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<Row>> {
        // Prefer a demoted partition over regenerating from the base data:
        // a spill fetch is a *move*, so the fetched copy must go back into
        // the memtable (unless retired) or the demoted bytes would be lost.
        let spilled = self
            .table
            .cached
            .as_ref()
            .filter(|mem| !mem.is_loaded(partition))
            .and_then(|mem| {
                let (spilled, io_bytes) =
                    mem.spill_fetch(&self.table.name, partition, self.table.version())?;
                if !mem.is_retired() {
                    mem.put(partition, spilled.clone());
                    mem.record_promotion();
                    scan_metrics().promotions.inc();
                    if shark_obs::active() {
                        shark_obs::annotate("promote", "spill");
                    }
                }
                Some((spilled, io_bytes))
            });
        let rows = match &spilled {
            Some((spilled, io_bytes)) => {
                let rows = spilled.to_rows();
                metrics.record_input(rows.len() as u64, *io_bytes, InputSource::Dfs);
                rows
            }
            None => {
                let rows = (self.table.base)(partition);
                // Reading from the DFS pays for every column of every row.
                let bytes = estimate_slice(&rows) as u64;
                metrics.record_input(rows.len() as u64, bytes, InputSource::Dfs);
                rows
            }
        };
        metrics.add_ops(rows.len() as f64); // field extraction
                                            // Skipping the projection is only sound when it is the identity
                                            // mapping: a full-width *reorder* (e.g. [2, 0, 1]) has the same
                                            // length as the schema but must still permute every row.
        let is_identity = self.projection.len() == self.table.schema.len()
            && self.projection.iter().enumerate().all(|(i, &c)| i == c);
        let projected: Vec<Row> = if is_identity {
            rows
        } else {
            rows.iter().map(|r| r.project(&self.projection)).collect()
        };
        let mut out = projected;
        apply_filters(&mut out, &self.filters, metrics);
        Ok(out)
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        Vec::new()
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        Vec::new()
    }
}

/// Map pruning (§3.5): evaluate a scan's pushed-down filters against every
/// loaded partition's statistics and return the partitions that must still
/// be scanned, together with the number pruned.
pub fn prune_partitions(
    table: &TableMeta,
    mem: &MemTable,
    filters: &[BoundExpr],
    projection: &[usize],
) -> (Vec<usize>, usize) {
    let mut selected = Vec::new();
    let mut pruned = 0usize;
    for p in 0..table.num_partitions {
        // Statistics survive policy evictions, so an evicted-but-once-loaded
        // partition can still be pruned — saving its lineage recompute
        // entirely when the predicate rules it out.
        let keep = match mem.stats(p) {
            None => true, // never loaded: cannot prune, the scan will rebuild it
            Some(stats) => filters.iter().all(|f| {
                match f.as_column_range() {
                    None => true,
                    Some((projected_col, low, high, eqs)) => {
                        // The filter is bound against the projected schema;
                        // map back to the table column index.
                        let table_col = projection[projected_col];
                        let col_stats = stats.column(table_col);
                        if !eqs.is_empty() {
                            eqs.iter().any(|v| col_stats.might_equal(v))
                        } else {
                            col_stats.might_overlap(low.as_ref(), high.as_ref())
                        }
                    }
                }
            }),
        };
        if keep {
            selected.push(p);
        } else {
            pruned += 1;
        }
    }
    (selected, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BoundExpr, SchemaResolver, UdfRegistry};
    use crate::parser::parse_select;
    use shark_common::{row, DataType, Schema};

    fn table() -> TableMeta {
        let schema = Schema::from_pairs(&[
            ("day", DataType::Int),
            ("country", DataType::Str),
            ("metric", DataType::Float),
        ]);
        // Partition p holds day = p, country cycling over 2 values.
        TableMeta::new("sessions", schema, 6, |p| {
            let country = if p % 2 == 0 { "US" } else { "FR" };
            (0..50)
                .map(|i| row![p as i64, country, (i as f64) * 0.5])
                .collect()
        })
        .with_cache(3)
    }

    fn load(meta: &TableMeta) {
        let mem = meta.cached.as_ref().unwrap();
        for p in 0..meta.num_partitions {
            let rows = (meta.base)(p);
            mem.put(
                p,
                Arc::new(ColumnarPartition::from_rows(&meta.schema, &rows)),
            );
        }
    }

    fn bind_filter(sql_pred: &str, schema: &Schema) -> BoundExpr {
        let stmt = parse_select(&format!("SELECT 1 FROM t WHERE {sql_pred}")).unwrap();
        BoundExpr::bind(
            &stmt.selection.unwrap(),
            &SchemaResolver { schema },
            &UdfRegistry::new(),
        )
        .unwrap()
    }

    #[test]
    fn pruning_skips_partitions_outside_the_predicate_range() {
        let meta = table();
        load(&meta);
        let mem = meta.cached.as_ref().unwrap();
        let projection = vec![0usize, 1, 2];
        let projected = meta.schema.project(&projection);
        let filters = vec![bind_filter("day BETWEEN 2 AND 3", &projected)];
        let (selected, pruned) = prune_partitions(&meta, mem, &filters, &projection);
        assert_eq!(selected, vec![2, 3]);
        assert_eq!(pruned, 4);

        let filters = vec![bind_filter("country = 'US'", &projected)];
        let (selected, pruned) = prune_partitions(&meta, mem, &filters, &projection);
        assert_eq!(selected, vec![0, 2, 4]);
        assert_eq!(pruned, 3);
    }

    #[test]
    fn memstore_scan_reads_only_selected_partitions() {
        let ctx = RddContext::local();
        let meta = Arc::new(table());
        load(&meta);
        let projection = vec![0usize, 2];
        let rdd = MemTableScanRdd::create(&ctx, meta.clone(), vec![1, 4], projection, vec![], true)
            .unwrap();
        assert_eq!(rdd.num_partitions(), 2);
        let rows = rdd.collect().unwrap();
        assert_eq!(rows.len(), 100);
        // Only two columns were projected.
        assert_eq!(rows[0].len(), 2);
        let days: std::collections::HashSet<i64> =
            rows.iter().map(|r| r.get_int(0).unwrap()).collect();
        assert_eq!(days, [1i64, 4].into_iter().collect());
    }

    #[test]
    fn memstore_scan_recovers_lost_partition_from_base_data() {
        let ctx = RddContext::local();
        let meta = Arc::new(table());
        load(&meta);
        let mem = meta.cached.as_ref().unwrap();
        let before = mem.loaded_partitions();
        // Node 0 holds partitions 0 and 3 (round robin over 3 nodes).
        mem.drop_node(0);
        assert!(mem.loaded_partitions() < before);
        let rdd = MemTableScanRdd::create(
            &ctx,
            meta.clone(),
            (0..meta.num_partitions).collect(),
            vec![0, 1, 2],
            vec![],
            true,
        )
        .unwrap();
        let rows = rdd.collect().unwrap();
        assert_eq!(rows.len(), 6 * 50);
        // Recovery reloaded the lost partitions into the memstore.
        assert_eq!(mem.loaded_partitions(), 6);
    }

    #[test]
    fn retired_memtable_is_read_through_without_rebuilding() {
        let ctx = RddContext::local();
        let meta = Arc::new(table());
        load(&meta);
        let mem = meta.cached.as_ref().unwrap();
        // Evict one partition, then retire the table (as a DROP TABLE
        // would): a scan over a still-pinned snapshot must produce every
        // row, but never rebuild the missing partition into the retired
        // storage or count a rebuild against it.
        assert!(mem.evict_partition(2) > 0);
        let resident_bytes = mem.memory_bytes();
        mem.retire();
        let rdd = MemTableScanRdd::create(
            &ctx,
            meta.clone(),
            (0..meta.num_partitions).collect(),
            vec![0, 1, 2],
            vec![],
            true,
        )
        .unwrap();
        let rows = rdd.collect().unwrap();
        assert_eq!(rows.len(), 6 * 50);
        assert!(!mem.is_loaded(2), "read-through must not repopulate");
        assert_eq!(mem.rebuilds(), 0);
        assert_eq!(mem.memory_bytes(), resident_bytes);
    }

    #[test]
    fn vectorized_scan_matches_row_scan_exactly() {
        let meta = Arc::new(table());
        load(&meta);
        let projection = vec![0usize, 1, 2];
        let projected = meta.schema.project(&projection);
        for pred in ["day >= 2", "country = 'US'", "metric * 2.0 > 10.0"] {
            let filters = vec![bind_filter(pred, &projected)];
            let mut outputs = Vec::new();
            for vectorized in [false, true] {
                let ctx = RddContext::local();
                let rdd = MemTableScanRdd::create(
                    &ctx,
                    meta.clone(),
                    (0..meta.num_partitions).collect(),
                    projection.clone(),
                    filters.clone(),
                    vectorized,
                )
                .unwrap();
                outputs.push(rdd.collect().unwrap());
            }
            assert_eq!(outputs[0], outputs[1], "{pred}");
        }
    }

    #[test]
    fn fused_aggregate_scan_matches_row_pipeline_fold() {
        use crate::aggregate::AggFunc;
        let ctx = RddContext::local();
        let meta = Arc::new(table());
        load(&meta);
        let projection = vec![0usize, 1, 2];
        let projected = meta.schema.project(&projection);
        let filters = vec![bind_filter("day < 5", &projected)];
        let group = vec![BoundExpr::Column(1)];
        let aggs = vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
            },
            AggExpr {
                func: AggFunc::Avg,
                arg: Some(BoundExpr::Column(2)),
            },
        ];
        let rdd = MemAggScanRdd::create(
            &ctx,
            meta.clone(),
            (0..meta.num_partitions).collect(),
            projection.clone(),
            filters.clone(),
            group.clone(),
            aggs.clone(),
            3.0,
        )
        .unwrap();
        let fused = rdd.collect().unwrap();

        // Reference: per-partition row scan, then fold per key in row order.
        let mut reference: Vec<(Row, AggStates)> = Vec::new();
        for p in 0..meta.num_partitions {
            let mut index = std::collections::HashMap::new();
            let mut groups: Vec<(Row, AggStates)> = Vec::new();
            let rows: Vec<Row> = (meta.base)(p)
                .iter()
                .map(|r| r.project(&projection))
                .filter(|r| filters.iter().all(|f| f.eval_predicate(r)))
                .collect();
            for r in rows {
                let key = Row::new(vec![group[0].eval(&r)]);
                let slot = *index.entry(key.clone()).or_insert_with(|| {
                    groups.push((key.clone(), AggStates::new(&aggs)));
                    groups.len() - 1
                });
                groups[slot].1.update_row(&aggs, &r);
            }
            reference.extend(groups);
        }
        assert_eq!(fused.len(), reference.len());
        for ((kf, sf), (kr, sr)) in fused.iter().zip(reference.iter()) {
            assert_eq!(kf, kr);
            assert_eq!(sf.finalize(), sr.finalize());
        }
    }

    #[test]
    fn dfs_scan_applies_full_width_reorders() {
        // Regression: a projection covering every column but in a different
        // order used to be skipped entirely (the `len == schema.len()` fast
        // path), returning columns in table order.
        let ctx = RddContext::local();
        let meta = Arc::new(table());
        let rdd = DfsScanRdd::create(&ctx, meta.clone(), vec![2, 1, 0], vec![]);
        let rows = rdd.collect().unwrap();
        assert_eq!(rows.len(), 6 * 50);
        // Output order must be (metric, country, day), not table order.
        let first = &rows[0];
        assert!(first.get_float(0).is_ok(), "metric first: {first:?}");
        assert_eq!(first.get_str(1).unwrap().as_ref(), "US");
        assert_eq!(first.get_int(2).unwrap(), 0);
        // The true identity projection still passes rows through unchanged.
        let rdd = DfsScanRdd::create(&ctx, meta, vec![0, 1, 2], vec![]);
        let rows = rdd.collect().unwrap();
        assert_eq!(rows[0].get_int(0).unwrap(), 0);
    }

    #[test]
    fn dfs_scan_applies_filters_and_projections() {
        let ctx = RddContext::local();
        let meta = Arc::new(table());
        let projection = vec![0usize, 1];
        let projected = meta.schema.project(&projection);
        let filters = vec![bind_filter("country = 'US'", &projected)];
        let rdd = DfsScanRdd::create(&ctx, meta.clone(), projection, filters);
        assert_eq!(rdd.num_partitions(), 6);
        let rows = rdd.collect().unwrap();
        assert_eq!(rows.len(), 3 * 50);
        assert!(rows.iter().all(|r| r.get_str(1).unwrap().as_ref() == "US"));
    }
}
