//! The catalog / metastore and the in-memory columnar table store.
//!
//! Tables are registered with a schema, a partition count and a *base
//! generator* — a deterministic function producing the rows of each
//! partition, standing in for the files of a Hive warehouse on HDFS. Tables
//! created with `"shark.cache" = "true"` additionally get a [`MemTable`]:
//! the columnar memstore representation, with per-partition node placement
//! so simulated node failures drop exactly the partitions that lived on the
//! failed worker (recovered later through the base generator, i.e. lineage).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};
use shark_columnar::{ColumnarPartition, PartitionStats};
use shark_common::{Result, Row, Schema, SharkError};

/// Deterministic per-partition row generator (the "files" of a table).
pub type RowGenerator = Arc<dyn Fn(usize) -> Vec<Row> + Send + Sync>;

/// Process-wide last-access clock shared by every memstore partition. A
/// single clock makes ticks comparable *across* tables, which is what lets a
/// memory manager pick the globally least-recently-used partition instead of
/// guessing at table granularity.
static MEMSTORE_CLOCK: AtomicU64 = AtomicU64::new(0);

fn next_memstore_tick() -> u64 {
    MEMSTORE_CLOCK.fetch_add(1, Ordering::Relaxed) + 1
}

/// A second storage tier demoted partitions can be faulted back in from.
///
/// Eviction under memory pressure may *demote* a partition to disk instead
/// of dropping it; the scan layer then asks the installed source before
/// paying a lineage recompute. Implemented by the server's spill manager —
/// the trait lives here so the scan path stays independent of the serving
/// crate.
pub trait SpillSource: Send + Sync {
    /// Fault one demoted partition back in, returning the partition and the
    /// spill-file bytes read. `expected_version` is the requesting table's
    /// [`TableMeta::version`]; a frame written under any other version (a
    /// prior incarnation of the name, or a restore gone stale) must not be
    /// served. `None` means not demoted — or a poisoned (truncated,
    /// corrupted, version-mismatched) spill file, which degrades to the
    /// caller's lineage-recompute path, never to an error.
    fn fetch(
        &self,
        table: &str,
        partition: usize,
        expected_version: u64,
    ) -> Option<(Arc<ColumnarPartition>, u64)>;
}

/// One loaded (or evicted) partition eligible for eviction, as reported by
/// [`MemTable::lru_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionResidency {
    /// Partition index within its table.
    pub partition: usize,
    /// Resident columnar bytes.
    pub bytes: u64,
    /// Last-access tick on the process-wide memstore clock (smaller =
    /// colder).
    pub last_tick: u64,
}

/// The cached, columnar representation of a table (the memstore, §3.2).
///
/// The partition — not the table — is the unit of storage, recency tracking
/// and eviction (§3.1–3.2): each partition carries its own last-access tick
/// on a process-wide clock, can be evicted individually under memory
/// pressure, and is transparently rebuilt from the table's base generator
/// (its lineage) by the next scan that needs it. Partition *statistics* are
/// retained across policy evictions — they are tiny and stay valid because
/// the base generator is deterministic — so map pruning and top-k partition
/// ordering keep working over a partially evicted table.
pub struct MemTable {
    partitions: Vec<RwLock<Option<Arc<ColumnarPartition>>>>,
    /// Per-partition statistics, retained across policy evictions (but not
    /// across node failures, which are treated as data loss).
    stats: Vec<RwLock<Option<PartitionStats>>>,
    /// Per-partition last-access tick on [`MEMSTORE_CLOCK`].
    ticks: Vec<AtomicU64>,
    placements: Vec<usize>,
    /// Partitions rebuilt from the base generator by scans after an eviction
    /// or node failure (the lineage-recovery path).
    rebuilds: AtomicU64,
    /// Demoted partitions faulted back in from the spill tier by scans (the
    /// I/O-recovery path — cheaper than a rebuild, counted separately).
    promotions: AtomicU64,
    /// The spill tier demoted partitions of this table can be faulted back
    /// in from, installed by the memory manager on first demotion.
    spill: RwLock<Option<Arc<dyn SpillSource>>>,
    /// Set when the owning table version is dropped from (or replaced in)
    /// the catalog. Pinned snapshots may still scan the resident partitions,
    /// but rebuilding *missing* partitions into a retired memtable is
    /// forbidden: the storage is awaiting deferred reclamation, and growing
    /// it would leak bytes past the `deferred_drop_bytes` accounting.
    retired: AtomicBool,
}

impl MemTable {
    /// Create an empty memtable for `num_partitions` partitions, assigning
    /// each partition to a node round-robin.
    pub fn new(num_partitions: usize, num_nodes: usize) -> MemTable {
        MemTable {
            partitions: (0..num_partitions).map(|_| RwLock::new(None)).collect(),
            stats: (0..num_partitions).map(|_| RwLock::new(None)).collect(),
            ticks: (0..num_partitions).map(|_| AtomicU64::new(0)).collect(),
            placements: (0..num_partitions).map(|p| p % num_nodes.max(1)).collect(),
            rebuilds: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            spill: RwLock::new(None),
            retired: AtomicBool::new(false),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Fetch a cached partition if it is loaded, refreshing its LRU tick.
    pub fn get(&self, partition: usize) -> Option<Arc<ColumnarPartition>> {
        let data = self.partitions[partition].read().clone();
        if data.is_some() {
            self.touch(partition);
        }
        data
    }

    /// Whether a partition is resident (without refreshing its LRU tick —
    /// use for accounting, not for access).
    pub fn is_loaded(&self, partition: usize) -> bool {
        self.partitions[partition].read().is_some()
    }

    /// Store a loaded partition, recording its statistics and refreshing
    /// its LRU tick.
    pub fn put(&self, partition: usize, data: Arc<ColumnarPartition>) {
        *self.stats[partition].write() = Some(data.stats().clone());
        *self.partitions[partition].write() = Some(data);
        self.touch(partition);
    }

    /// Refresh a partition's last-access tick.
    pub fn touch(&self, partition: usize) {
        self.ticks[partition].store(next_memstore_tick(), Ordering::Relaxed);
    }

    /// A partition's last-access tick on the process-wide memstore clock.
    pub fn last_tick(&self, partition: usize) -> u64 {
        self.ticks[partition].load(Ordering::Relaxed)
    }

    /// The node holding a partition.
    pub fn placement(&self, partition: usize) -> usize {
        self.placements[partition]
    }

    /// Drop every partition stored on `node`, returning how many were lost.
    /// A node failure loses the data *and* the statistics derived from it
    /// (unlike a policy eviction, which keeps the statistics).
    pub fn drop_node(&self, node: usize) -> usize {
        let mut lost = 0;
        for (p, slot) in self.partitions.iter().enumerate() {
            if self.placements[p] == node {
                let mut guard = slot.write();
                if guard.is_some() {
                    *guard = None;
                    *self.stats[p].write() = None;
                    lost += 1;
                }
            }
        }
        lost
    }

    /// Number of partitions currently loaded.
    pub fn loaded_partitions(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.read().is_some())
            .count()
    }

    /// Total memory footprint of loaded partitions, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .filter_map(|p| p.read().as_ref().map(|c| c.memory_bytes() as u64))
            .sum()
    }

    /// Resident bytes of one partition (0 when evicted or never loaded).
    pub fn partition_bytes(&self, partition: usize) -> u64 {
        self.partitions[partition]
            .read()
            .as_ref()
            .map(|c| c.memory_bytes() as u64)
            .unwrap_or(0)
    }

    /// Total rows across loaded partitions.
    pub fn total_rows(&self) -> u64 {
        self.partitions
            .iter()
            .filter_map(|p| p.read().as_ref().map(|c| c.num_rows() as u64))
            .sum()
    }

    /// Evict one partition (a *policy* eviction under memory pressure, not a
    /// failure): returns the bytes freed, 0 when the partition was not
    /// resident. The partition's statistics are retained — they stay valid
    /// because the base generator is deterministic — and the data is
    /// transparently rebuilt from lineage by the next scan that needs it.
    pub fn evict_partition(&self, partition: usize) -> u64 {
        let mut guard = self.partitions[partition].write();
        match guard.take() {
            Some(columnar) => columnar.memory_bytes() as u64,
            None => 0,
        }
    }

    /// Remove one resident partition and hand its data to the caller — the
    /// *demotion* variant of [`MemTable::evict_partition`]: the memory copy
    /// is gone either way, but the caller can serialize the partition to a
    /// spill tier instead of relying on lineage recompute. Statistics are
    /// retained, exactly as for a plain eviction.
    pub fn take_partition(&self, partition: usize) -> Option<Arc<ColumnarPartition>> {
        self.partitions[partition].write().take()
    }

    /// Install the spill tier that demoted partitions of this table fault
    /// back in from (idempotent; the last source installed wins).
    pub fn set_spill_source(&self, source: Arc<dyn SpillSource>) {
        *self.spill.write() = Some(source);
    }

    /// Whether a spill source has been installed.
    pub fn has_spill_source(&self) -> bool {
        self.spill.read().is_some()
    }

    /// Ask the installed spill tier for a demoted partition, verified
    /// against the owning table's version. Returns the partition plus the
    /// spill-file bytes read, or `None` when no tier is installed, the
    /// partition was never demoted, or its spill file is poisoned or was
    /// written by a different table version (the caller then falls back to
    /// lineage recompute).
    pub fn spill_fetch(
        &self,
        table: &str,
        partition: usize,
        expected_version: u64,
    ) -> Option<(Arc<ColumnarPartition>, u64)> {
        let source = self.spill.read().clone()?;
        source.fetch(table, partition, expected_version)
    }

    /// Evict every loaded partition, returning `(partitions, bytes)` freed.
    /// The table stays registered (statistics included) and is transparently
    /// reloaded from its base generator — its lineage — on the next scan.
    pub fn evict_all(&self) -> (usize, u64) {
        let mut partitions = 0usize;
        let mut bytes = 0u64;
        for p in 0..self.partitions.len() {
            let freed = self.evict_partition(p);
            if freed > 0 {
                partitions += 1;
                bytes += freed;
            }
        }
        (partitions, bytes)
    }

    /// Every *resident* partition with its bytes and last-access tick — the
    /// candidate list a partition-granular LRU eviction policy works from.
    pub fn lru_candidates(&self) -> Vec<PartitionResidency> {
        (0..self.partitions.len())
            .filter_map(|p| {
                let bytes = self.partition_bytes(p);
                (bytes > 0).then(|| PartitionResidency {
                    partition: p,
                    bytes,
                    last_tick: self.last_tick(p),
                })
            })
            .collect()
    }

    /// Statistics of a partition. Retained across policy evictions, so this
    /// answers for evicted partitions too; `None` only for partitions never
    /// loaded (or lost to a node failure).
    pub fn stats(&self, partition: usize) -> Option<PartitionStats> {
        self.stats[partition].read().clone()
    }

    /// Record that a scan rebuilt a partition from the base generator.
    pub fn record_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Partitions rebuilt from lineage by scans (after eviction or failure).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Record one partition faulted back in from the spill tier.
    pub fn record_promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Partitions promoted from the spill tier by scans (vs. rebuilt from
    /// lineage — a promotion pays I/O cost only, not recompute cost).
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Mark this table version as dropped from the catalog. Scans running
    /// over snapshots that still reference it read the resident partitions
    /// as usual but never rebuild missing ones back into it (they read
    /// through from the base generator instead).
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Whether this table version has been dropped and awaits reclamation.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }
}

/// Metadata for one registered table.
pub struct TableMeta {
    /// Table name (lower-cased).
    pub name: String,
    /// The table schema.
    pub schema: Schema,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Base row generator (the table's "files").
    pub base: RowGenerator,
    /// The columnar memstore, if the table is cached.
    pub cached: Option<Arc<MemTable>>,
    /// Column index the table is hash-partitioned by (`DISTRIBUTE BY`).
    pub distribute_by: Option<usize>,
    /// Name of the table this one is co-partitioned with (§3.4).
    pub copartitioned_with: Option<String>,
    /// Estimated total number of rows (used by the static optimizer).
    pub row_count_hint: Option<u64>,
    /// The catalog epoch at which this table version was installed
    /// (0 = not yet registered). Spill frames are stamped with it, so a
    /// frame left behind by a dropped-and-recreated table of the same name
    /// can never be served to the new incarnation. Set once by
    /// [`Catalog::install`] — or pre-set via [`TableMeta::with_version`]
    /// when a restore replays a recorded registration.
    version: AtomicU64,
}

impl TableMeta {
    /// Create a new table backed by a generator, not cached.
    pub fn new<F>(name: &str, schema: Schema, num_partitions: usize, generator: F) -> TableMeta
    where
        F: Fn(usize) -> Vec<Row> + Send + Sync + 'static,
    {
        TableMeta {
            name: name.to_lowercase(),
            schema,
            num_partitions: num_partitions.max(1),
            base: Arc::new(generator),
            cached: None,
            distribute_by: None,
            copartitioned_with: None,
            row_count_hint: None,
            version: AtomicU64::new(0),
        }
    }

    /// Attach an (initially empty) memstore so scans cache and reuse the
    /// columnar form.
    pub fn with_cache(mut self, num_nodes: usize) -> TableMeta {
        self.cached = Some(Arc::new(MemTable::new(self.num_partitions, num_nodes)));
        self
    }

    /// Declare that the table is hash-partitioned by the given column.
    pub fn with_distribute_by(mut self, column: &str) -> Result<TableMeta> {
        let idx = self.schema.resolve(column)?;
        self.distribute_by = Some(idx);
        Ok(self)
    }

    /// Declare co-partitioning with another table.
    pub fn with_copartition(mut self, other: &str) -> TableMeta {
        self.copartitioned_with = Some(other.to_lowercase());
        self
    }

    /// Provide a row-count hint for the static optimizer.
    pub fn with_row_count_hint(mut self, rows: u64) -> TableMeta {
        self.row_count_hint = Some(rows);
        self
    }

    /// Pre-set the table version (restore replaying a recorded
    /// registration). Registration leaves a pre-set version untouched.
    pub fn with_version(self, version: u64) -> TableMeta {
        self.version.store(version, Ordering::Relaxed);
        self
    }

    /// The catalog epoch this table version was installed at (0 before
    /// registration). This — not the name — identifies the version on disk:
    /// spill frames and WAL records carry it.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Stamp the installation epoch, keeping a version pre-set by
    /// [`TableMeta::with_version`] (restore replay) intact.
    fn mark_installed(&self, epoch: u64) {
        let _ = self
            .version
            .compare_exchange(0, epoch, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Whether the table has a memstore attached.
    pub fn is_cached(&self) -> bool {
        self.cached.is_some()
    }
}

/// An immutable view of the catalog at one epoch.
///
/// Every DDL installs a new snapshot (copy-on-write table map, epoch + 1);
/// every query pins one snapshot via [`Catalog::snapshot`] and resolves all
/// of its tables against it, so a concurrent `DROP TABLE` or table
/// replacement can never change what a running plan sees. A pinned snapshot
/// also *defers* reclamation: a dropped table's memstore stays resident
/// until the last snapshot referencing that table version is released.
#[derive(Clone)]
pub struct CatalogSnapshot {
    epoch: u64,
    tables: Arc<HashMap<String, Arc<TableMeta>>>,
}

impl CatalogSnapshot {
    fn empty() -> CatalogSnapshot {
        CatalogSnapshot {
            epoch: 0,
            tables: Arc::new(HashMap::new()),
        }
    }

    /// The epoch this snapshot was taken at (bumped by every DDL).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Look up a table by name in this snapshot.
    pub fn get(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.tables
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| SharkError::Catalog(format!("table '{name}' not found")))
    }

    /// Whether a table exists in this snapshot.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_lowercase())
    }

    /// Names of all tables in this snapshot, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Every table in this snapshot that has a memstore attached, sorted by
    /// name.
    pub fn cached_tables(&self) -> Vec<Arc<TableMeta>> {
        let mut tables: Vec<Arc<TableMeta>> = self
            .tables
            .values()
            .filter(|t| t.is_cached())
            .cloned()
            .collect();
        tables.sort_by(|a, b| a.name.cmp(&b.name));
        tables
    }

    /// Total memstore footprint across this snapshot's cached tables.
    pub fn memstore_bytes(&self) -> u64 {
        self.tables
            .values()
            .filter_map(|t| t.cached.as_ref().map(|m| m.memory_bytes()))
            .sum()
    }

    /// Whether this snapshot references exactly this *version* of a table
    /// (same `Arc`, not merely the same name — a drop-then-recreate under
    /// the same name is a different version).
    fn references(&self, table: &Arc<TableMeta>) -> bool {
        self.tables
            .get(&table.name)
            .map(|t| Arc::ptr_eq(t, table))
            .unwrap_or(false)
    }
}

/// A dropped (or replaced) cached table version kept alive until the last
/// snapshot referencing it is released.
struct DeferredDrop {
    table: Arc<TableMeta>,
}

/// Record of one dropped table version whose storage has been reclaimed
/// (the last snapshot referencing it was released). Drained by the serving
/// layer's accounting via [`Catalog::drain_reclaimed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReclaimedDrop {
    /// Table name (a recreated table of the same name is a different
    /// version and unaffected).
    pub name: String,
    /// Partition indices that were still resident when reclaimed.
    pub partitions: Vec<usize>,
    /// Bytes reclaimed.
    pub bytes: u64,
    /// Lineage rebuilds the version performed while it was live (folded
    /// into the server-wide counter so it stays monotonic across drops).
    pub rebuilds: u64,
}

/// Upper bound on undrained [`ReclaimedDrop`] records: standalone users
/// never drain the log, and the serving layer drains it at every query
/// boundary, so anything beyond this is a leak, not accounting.
const RECLAIMED_LOG_CAP: usize = 4096;

/// One committed catalog mutation, as recorded in the DDL journal.
///
/// CTAS and `DROP TABLE` execute inside the SQL engine, which knows nothing
/// about durability; the catalog journals every install instead, and a
/// serving layer with a write-ahead log drains the journal at query
/// boundaries ([`Catalog::drain_ddl`]) and appends the records there. A
/// crash between the install and the drain loses only the journal tail —
/// the same contract as a torn WAL tail, and recovered the same way
/// (affected tables come back cold via their base generators).
#[derive(Clone)]
pub enum DdlRecord {
    /// A table version was registered (including a same-name replacement)
    /// at the given epoch. The `Arc` carries everything a replay needs:
    /// name, schema, partition count, hints and [`TableMeta::version`].
    Created {
        /// The epoch the registration bumped the catalog to.
        epoch: u64,
        /// The installed table version.
        table: Arc<TableMeta>,
    },
    /// A table was dropped at the given epoch.
    Dropped {
        /// The epoch the drop bumped the catalog to.
        epoch: u64,
        /// Lower-cased table name.
        name: String,
    },
}

/// Upper bound on undrained [`DdlRecord`]s, mirroring
/// [`RECLAIMED_LOG_CAP`]: standalone sessions never drain the journal, so
/// it must stay bounded. Dropping the *oldest* records is safe for them —
/// there is no WAL to miss the updates — and a serving layer drains at
/// every query boundary, far inside the cap.
const DDL_JOURNAL_CAP: usize = 4096;

/// The metastore: a registry of tables by name, rebuilt around immutable,
/// epoch-versioned snapshots.
///
/// Reads (`get`, `contains`, `cached_tables`, `drop_node`, …) load the
/// current snapshot and iterate it without holding any lock, so a DDL burst
/// can never stall them; DDL (`register`, `register_if_absent`,
/// `drop_table`) installs a new snapshot under a short write lock. Queries
/// that need a *stable* view across their whole lifetime pin one with
/// [`Catalog::snapshot`]. Dropping a cached table is deferred reclamation:
/// the version leaves the current snapshot immediately (new queries cannot
/// see it) but its memstore stays resident — and its memtable is retired,
/// forbidding partition rebuilds into it — until every pinned snapshot
/// referencing it is released. Reclamation happens opportunistically at
/// every DDL and snapshot take (so standalone sessions free dropped
/// storage without any serving layer), is appended to a log of
/// [`ReclaimedDrop`] records, and can be forced with
/// [`Catalog::reclaim_unreferenced`]; shark-server's `MemstoreManager`
/// drains the log for its byte/eviction accounting.
pub struct Catalog {
    current: RwLock<Arc<CatalogSnapshot>>,
    /// Weak handles to every snapshot pinned via [`Catalog::snapshot`].
    live: Mutex<Vec<Weak<CatalogSnapshot>>>,
    /// Dropped cached table versions awaiting their last snapshot release.
    deferred: Mutex<Vec<DeferredDrop>>,
    /// Reclamations performed but not yet drained by the serving layer.
    reclaimed: Mutex<Vec<ReclaimedDrop>>,
    /// Committed DDL not yet drained into a write-ahead log.
    ddl: Mutex<Vec<DdlRecord>>,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog {
            current: RwLock::new(Arc::new(CatalogSnapshot::empty())),
            live: Mutex::new(Vec::new()),
            deferred: Mutex::new(Vec::new()),
            reclaimed: Mutex::new(Vec::new()),
            ddl: Mutex::new(Vec::new()),
        }
    }
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The current snapshot, *unpinned*: cheap to take, does not defer
    /// reclamation. Used by the point-read delegates below.
    fn read(&self) -> Arc<CatalogSnapshot> {
        self.current.read().clone()
    }

    /// Pin the current snapshot. As long as the returned `Arc` is alive, a
    /// dropped table it references keeps its memstore resident (deferred
    /// reclamation) — this is what gives blocking queries, streaming
    /// cursors and CTAS sources a transactionally stable view of the
    /// catalog for their whole lifetime.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        // Opportunistic reclamation: the previous pin of a now-finished
        // query may have been the last reference to a dropped version.
        self.reclaim_unreferenced();
        // Hold the live-list lock *across* reading `current`: a concurrent
        // drop + reclaim between reading the map and registering the pin
        // could otherwise reclaim a version this snapshot references.
        let mut live = self.live.lock();
        let pin = Arc::new((**self.current.read()).clone());
        live.retain(|w| w.strong_count() > 0);
        live.push(Arc::downgrade(&pin));
        pin
    }

    /// The current catalog epoch (bumped by every DDL).
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Snapshots currently pinned by queries, cursors or explicit
    /// [`Catalog::snapshot`] callers.
    pub fn live_snapshots(&self) -> usize {
        let mut live = self.live.lock();
        live.retain(|w| w.strong_count() > 0);
        live.len()
    }

    /// Install a new snapshot produced by applying `mutate` to the current
    /// table map, returning whatever the mutation yields. The mutation
    /// receives the epoch the new snapshot will carry, so registrations can
    /// stamp it into the installed [`TableMeta::version`]. An `Err` from
    /// the mutation leaves the current snapshot (and epoch) untouched.
    fn install<R>(
        &self,
        mutate: impl FnOnce(&mut HashMap<String, Arc<TableMeta>>, u64) -> Result<R>,
    ) -> Result<R> {
        let mut current = self.current.write();
        let next_epoch = current.epoch + 1;
        let mut tables = (*current.tables).clone();
        let displaced = mutate(&mut tables, next_epoch)?;
        *current = Arc::new(CatalogSnapshot {
            epoch: next_epoch,
            tables: Arc::new(tables),
        });
        Ok(displaced)
    }

    /// Append one committed mutation to the DDL journal, keeping it bounded
    /// for standalone sessions that never drain it.
    fn journal(&self, record: DdlRecord) {
        let mut log = self.ddl.lock();
        log.push(record);
        if log.len() > DDL_JOURNAL_CAP {
            let excess = log.len() - DDL_JOURNAL_CAP;
            log.drain(..excess);
        }
    }

    /// Drain the journal of committed DDL. The serving layer calls this at
    /// every query boundary and appends the records to its write-ahead log;
    /// a restore drains (and discards) whatever replay itself re-journaled.
    pub fn drain_ddl(&self) -> Vec<DdlRecord> {
        std::mem::take(&mut *self.ddl.lock())
    }

    /// Restore-time epoch replay hook: advance the current epoch to `epoch`
    /// without touching the table map, so a replayed catalog ends up at the
    /// exact epoch the WAL recorded (each replayed DDL only bumps by one,
    /// and gaps — e.g. drops of tables that were never re-registered —
    /// would otherwise leave the restored epoch behind the recorded one).
    /// A smaller-or-equal `epoch` is a no-op; the epoch never moves
    /// backwards.
    pub fn advance_epoch_to(&self, epoch: u64) {
        let mut current = self.current.write();
        if current.epoch < epoch {
            *current = Arc::new(CatalogSnapshot {
                epoch,
                tables: current.tables.clone(),
            });
        }
    }

    /// Queue a table version removed from the current snapshot for deferred
    /// reclamation, then reclaim whatever is already unreferenced (a drop
    /// with no pinned snapshot frees its storage immediately). Only cached
    /// tables carry reclaimable storage; either way, pinned snapshots keep
    /// the `Arc<TableMeta>` itself alive.
    fn defer_drop(&self, table: Arc<TableMeta>) {
        if let Some(mem) = table.cached.as_ref() {
            mem.retire();
            self.deferred.lock().push(DeferredDrop { table });
        }
        self.reclaim_unreferenced();
    }

    /// Register a table, replacing any table of the same name (the old
    /// version, if cached, becomes a deferred drop).
    pub fn register(&self, table: TableMeta) -> Arc<TableMeta> {
        let arc = Arc::new(table);
        let registered = arc.clone();
        let mut installed_epoch = 0;
        let replaced = self
            .install(|tables, epoch| {
                arc.mark_installed(epoch);
                installed_epoch = epoch;
                Ok(tables.insert(arc.name.clone(), arc))
            })
            .expect("plain registration is infallible");
        self.journal(DdlRecord::Created {
            epoch: installed_epoch,
            table: registered.clone(),
        });
        if let Some(old) = replaced {
            self.defer_drop(old);
        }
        registered
    }

    /// Register a table only if no table of that name exists yet, checking
    /// and installing under one write lock. This is the atomic path CTAS
    /// needs on a shared catalog: with a separate `contains` + `register`,
    /// two concurrent `CREATE TABLE t AS …` both pass the check and the
    /// loser silently clobbers the winner's table.
    pub fn register_if_absent(&self, table: TableMeta) -> Result<Arc<TableMeta>> {
        self.register_arc_if_absent(Arc::new(table))
    }

    /// [`Catalog::register_if_absent`] for a pre-built `Arc<TableMeta>` —
    /// this is what lets CTAS load a cached table's memstore *before*
    /// publishing it, so no concurrent query can ever observe a
    /// registered-but-still-empty cached table (and fault its partitions
    /// in from lineage mid-registration).
    pub fn register_arc_if_absent(&self, arc: Arc<TableMeta>) -> Result<Arc<TableMeta>> {
        let registered = arc.clone();
        let mut installed_epoch = 0;
        self.install(|tables, epoch| {
            if tables.contains_key(&arc.name) {
                return Err(SharkError::Catalog(format!(
                    "table '{}' already exists",
                    arc.name
                )));
            }
            arc.mark_installed(epoch);
            installed_epoch = epoch;
            tables.insert(arc.name.clone(), arc);
            Ok(())
        })?;
        self.journal(DdlRecord::Created {
            epoch: installed_epoch,
            table: registered.clone(),
        });
        Ok(registered)
    }

    /// Look up a table by name (in the current snapshot).
    pub fn get(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.read().get(name)
    }

    /// Whether a table exists (in the current snapshot).
    pub fn contains(&self, name: &str) -> bool {
        self.read().contains(name)
    }

    /// Drop a table. New snapshots no longer contain it; if it is cached,
    /// its memstore stays resident until the last already-pinned snapshot
    /// referencing it is released (a drop with no pinned snapshots frees
    /// it immediately — see [`Catalog::reclaim_unreferenced`]).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let lowered = name.to_lowercase();
        let mut installed_epoch = 0;
        let removed = self.install(|tables, epoch| {
            installed_epoch = epoch;
            tables
                .remove(&lowered)
                .ok_or_else(|| SharkError::Catalog(format!("table '{name}' not found")))
        })?;
        self.journal(DdlRecord::Dropped {
            epoch: installed_epoch,
            name: lowered,
        });
        self.defer_drop(removed);
        Ok(())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.read().table_names()
    }

    /// Drop the cached partitions of every current table that lived on
    /// `node` (called when a simulated worker dies). Returns partitions
    /// lost. Iterates a snapshot, not the live map: a long DDL burst can
    /// neither stall nor deadlock failure simulation.
    pub fn drop_node(&self, node: usize) -> usize {
        self.read()
            .cached_tables()
            .iter()
            .filter_map(|t| t.cached.as_ref().map(|m| m.drop_node(node)))
            .sum()
    }

    /// Every registered table that has a memstore attached, sorted by name
    /// (the tables a memory manager can account for and evict). Deferred
    /// drops are excluded: their storage is pinned by old snapshots and
    /// must not confuse eviction accounting.
    pub fn cached_tables(&self) -> Vec<Arc<TableMeta>> {
        self.read().cached_tables()
    }

    /// Total memstore footprint across all current cached tables (deferred
    /// drops excluded — see [`Catalog::deferred_drop_bytes`]).
    pub fn memstore_bytes(&self) -> u64 {
        self.read().memstore_bytes()
    }

    /// Reclaim every dropped cached table version whose last referencing
    /// snapshot has been released: evict its resident partitions and append
    /// a [`ReclaimedDrop`] record to the log for the serving layer's
    /// accounting ([`Catalog::drain_reclaimed`]). Runs opportunistically at
    /// every DDL and [`Catalog::snapshot`], so standalone sessions free
    /// dropped storage without ever calling this. Returns how many versions
    /// were reclaimed by this call.
    pub fn reclaim_unreferenced(&self) -> usize {
        if self.deferred.lock().is_empty() {
            return 0;
        }
        let live: Vec<Arc<CatalogSnapshot>> = {
            let mut live = self.live.lock();
            live.retain(|w| w.strong_count() > 0);
            live.iter().filter_map(Weak::upgrade).collect()
        };
        let mut freed = Vec::new();
        self.deferred.lock().retain(|d| {
            // New snapshots are copies of the current map, which no longer
            // contains this version — so once unreferenced, always
            // unreferenced.
            if live.iter().any(|s| s.references(&d.table)) {
                true
            } else {
                freed.push(d.table.clone());
                false
            }
        });
        if freed.is_empty() {
            return 0;
        }
        let mut records = Vec::with_capacity(freed.len());
        for table in &freed {
            let Some(mem) = table.cached.as_ref() else {
                continue;
            };
            let partitions: Vec<usize> = (0..mem.num_partitions())
                .filter(|&p| mem.is_loaded(p))
                .collect();
            let rebuilds = mem.rebuilds();
            let (_count, bytes) = mem.evict_all();
            records.push(ReclaimedDrop {
                name: table.name.clone(),
                partitions,
                bytes,
                rebuilds,
            });
        }
        let reclaimed = records.len();
        let mut log = self.reclaimed.lock();
        log.extend(records);
        // Standalone sessions never drain the log; keep it bounded.
        if log.len() > RECLAIMED_LOG_CAP {
            let excess = log.len() - RECLAIMED_LOG_CAP;
            log.drain(..excess);
        }
        reclaimed
    }

    /// Drain the log of reclaimed drops (the serving layer turns these into
    /// eviction events and byte/rebuild accounting).
    pub fn drain_reclaimed(&self) -> Vec<ReclaimedDrop> {
        std::mem::take(&mut *self.reclaimed.lock())
    }

    /// Resident columnar bytes of dropped-but-still-referenced table
    /// versions — memory that cannot be reclaimed until the pinned
    /// snapshots referencing them are released.
    pub fn deferred_drop_bytes(&self) -> u64 {
        self.deferred
            .lock()
            .iter()
            .filter_map(|d| d.table.cached.as_ref().map(|m| m.memory_bytes()))
            .sum()
    }

    /// Lineage rebuilds performed by versions currently awaiting deferred
    /// reclamation. Retired memtables never record new rebuilds, so this is
    /// the frozen in-flight share of the server-wide rebuild counter
    /// (deferred here → folded into the retired total at reclaim).
    pub fn deferred_drop_rebuilds(&self) -> u64 {
        self.deferred
            .lock()
            .iter()
            .filter_map(|d| d.table.cached.as_ref().map(|m| m.rebuilds()))
            .sum()
    }

    /// Names of table versions awaiting deferred reclamation, sorted
    /// (duplicates possible when the same name was dropped and recreated
    /// repeatedly).
    pub fn deferred_dropped(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .deferred
            .lock()
            .iter()
            .map(|d| d.table.name.clone())
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType};

    fn demo_table(cached: bool) -> TableMeta {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]);
        let t = TableMeta::new("users", schema, 4, |p| {
            vec![row![p as i64, format!("user{p}")]]
        });
        if cached {
            t.with_cache(3)
        } else {
            t
        }
    }

    #[test]
    fn register_lookup_drop() {
        let catalog = Catalog::new();
        catalog.register(demo_table(false));
        assert!(catalog.contains("USERS"));
        let t = catalog.get("users").unwrap();
        assert_eq!(t.num_partitions, 4);
        assert_eq!((t.base)(2)[0].get_int(0).unwrap(), 2);
        assert_eq!(catalog.table_names(), vec!["users".to_string()]);
        catalog.drop_table("users").unwrap();
        assert!(catalog.get("users").is_err());
        assert!(catalog.drop_table("users").is_err());
    }

    #[test]
    fn register_if_absent_is_atomic() {
        let catalog = Catalog::new();
        assert!(catalog.register_if_absent(demo_table(false)).is_ok());
        let err = match catalog.register_if_absent(demo_table(false)) {
            Ok(_) => panic!("duplicate registration must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("already exists"));
        // Concurrent registrations of the same name: exactly one wins.
        let shared = Arc::new(Catalog::new());
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let c = shared.clone();
                    scope.spawn(move || usize::from(c.register_if_absent(demo_table(true)).is_ok()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        assert!(shared.contains("users"));
    }

    #[test]
    fn memtable_placement_and_failure() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        let schema = t.schema.clone();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&schema, &rows)));
        }
        assert_eq!(mem.loaded_partitions(), 4);
        assert!(mem.memory_bytes() > 0);
        assert_eq!(mem.total_rows(), 4);
        // Partitions 0 and 3 live on node 0 (round robin over 3 nodes).
        let lost = catalog.drop_node(0);
        assert_eq!(lost, 2);
        assert_eq!(mem.loaded_partitions(), 2);
        assert!(mem.get(0).is_none());
        assert!(mem.get(1).is_some());
        assert!(mem.stats(1).is_some());
        // A node failure is data loss: the statistics go with the data.
        assert!(mem.stats(0).is_none());
    }

    #[test]
    fn evict_all_frees_everything_and_reports_bytes() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
        let resident = mem.memory_bytes();
        assert!(resident > 0);
        let (partitions, bytes) = mem.evict_all();
        assert_eq!(partitions, 4);
        assert_eq!(bytes, resident);
        assert_eq!(mem.loaded_partitions(), 0);
        assert_eq!(mem.memory_bytes(), 0);
        // A policy eviction keeps the statistics: pruning and top-k
        // ordering still work over the evicted partitions.
        assert!(mem.stats(0).is_some());
        // Idempotent.
        assert_eq!(mem.evict_all(), (0, 0));
    }

    #[test]
    fn evict_partition_frees_one_partition_and_keeps_stats() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
        let before = mem.memory_bytes();
        let freed = mem.evict_partition(1);
        assert!(freed > 0);
        assert_eq!(mem.memory_bytes(), before - freed);
        assert_eq!(mem.loaded_partitions(), 3);
        assert!(!mem.is_loaded(1));
        assert_eq!(mem.partition_bytes(1), 0);
        assert!(mem.stats(1).is_some(), "stats survive a policy eviction");
        // Evicting again frees nothing.
        assert_eq!(mem.evict_partition(1), 0);
    }

    #[test]
    fn lru_candidates_order_follows_accesses() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
        // Touch 0 and 2 (via get); 1 and 3 keep their load-time ticks.
        assert!(mem.get(0).is_some());
        assert!(mem.get(2).is_some());
        let mut candidates = mem.lru_candidates();
        assert_eq!(candidates.len(), 4);
        candidates.sort_by_key(|c| c.last_tick);
        let order: Vec<usize> = candidates.iter().map(|c| c.partition).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        // is_loaded does not refresh the tick.
        assert!(mem.is_loaded(1));
        let again = mem.lru_candidates();
        let tick1 = again.iter().find(|c| c.partition == 1).unwrap().last_tick;
        assert_eq!(
            tick1,
            candidates
                .iter()
                .find(|c| c.partition == 1)
                .unwrap()
                .last_tick
        );
    }

    #[test]
    fn cached_tables_lists_only_memstore_tables() {
        let catalog = Catalog::new();
        catalog.register(demo_table(true));
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog.register(TableMeta::new("plain", schema, 1, |_| vec![]));
        let cached = catalog.cached_tables();
        assert_eq!(cached.len(), 1);
        assert_eq!(cached[0].name, "users");
    }

    fn load_table(t: &TableMeta) {
        let mem = t.cached.as_ref().unwrap();
        for p in 0..t.num_partitions {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
    }

    #[test]
    fn snapshot_pins_a_stable_view_across_ddl() {
        let catalog = Catalog::new();
        catalog.register(demo_table(false));
        assert_eq!(catalog.epoch(), 1);
        let snap = catalog.snapshot();
        assert_eq!(catalog.live_snapshots(), 1);
        assert!(snap.contains("users"));
        let pinned_version = snap.get("users").unwrap();

        // Drop, then recreate under the same name: the snapshot still sees
        // the old version, the catalog serves the new one.
        catalog.drop_table("users").unwrap();
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let new_version = catalog.register(TableMeta::new("users", schema, 1, |_| vec![]));
        assert_eq!(catalog.epoch(), 3);
        assert!(snap.contains("users"));
        assert!(Arc::ptr_eq(&snap.get("users").unwrap(), &pinned_version));
        assert!(!Arc::ptr_eq(
            &catalog.get("users").unwrap(),
            &pinned_version
        ));
        assert!(Arc::ptr_eq(&catalog.get("users").unwrap(), &new_version));

        drop(snap);
        assert_eq!(catalog.live_snapshots(), 0);
    }

    #[test]
    fn dropped_cached_table_is_reclaimed_after_last_snapshot_release() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        load_table(&t);
        let mem = t.cached.clone().unwrap();
        let resident = mem.memory_bytes();
        assert!(resident > 0);
        drop(t);

        let pin_a = catalog.snapshot();
        let pin_b = catalog.snapshot();
        catalog.drop_table("users").unwrap();
        // The drop is deferred: bytes stay resident, the memtable is
        // retired, nothing is reclaimable while either snapshot lives.
        assert_eq!(catalog.deferred_drop_bytes(), resident);
        assert_eq!(catalog.deferred_dropped(), vec!["users".to_string()]);
        assert!(mem.is_retired());
        assert_eq!(catalog.reclaim_unreferenced(), 0);
        assert_eq!(catalog.deferred_drop_bytes(), resident);

        drop(pin_a);
        assert_eq!(catalog.reclaim_unreferenced(), 0, "pin_b still holds it");
        drop(pin_b);
        assert_eq!(catalog.reclaim_unreferenced(), 1);
        assert_eq!(mem.memory_bytes(), 0, "partitions evicted at reclaim");
        let records = catalog.drain_reclaimed();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "users");
        assert_eq!(records[0].bytes, resident);
        assert_eq!(records[0].partitions, vec![0, 1, 2, 3]);
        assert_eq!(records[0].rebuilds, 0);
        assert_eq!(catalog.deferred_drop_bytes(), 0);
        assert!(catalog.deferred_dropped().is_empty());
        assert!(catalog.drain_reclaimed().is_empty());
    }

    #[test]
    fn drop_with_no_pinned_snapshot_is_reclaimed_immediately() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        load_table(&t);
        let mem = t.cached.clone().unwrap();
        drop(t);
        // Unpinned point reads (get/contains) must not defer reclamation.
        assert!(catalog.contains("users"));
        catalog.drop_table("users").unwrap();
        // drop_table itself reclaimed the version: standalone sessions
        // (no serving layer draining the log) free storage on the spot.
        assert_eq!(mem.memory_bytes(), 0);
        assert_eq!(catalog.deferred_drop_bytes(), 0);
        assert_eq!(catalog.drain_reclaimed().len(), 1);
        assert_eq!(catalog.reclaim_unreferenced(), 0);
    }

    #[test]
    fn replacement_defers_the_old_cached_version() {
        let catalog = Catalog::new();
        let old = catalog.register(demo_table(true));
        load_table(&old);
        let old_bytes = old.cached.as_ref().unwrap().memory_bytes();
        let snap = catalog.snapshot();
        // Re-register under the same name: the old version is displaced
        // but `snap` still references it.
        catalog.register(demo_table(true));
        assert!(old.cached.as_ref().unwrap().is_retired());
        assert_eq!(catalog.deferred_drop_bytes(), old_bytes);
        // The new version is live and not retired.
        assert!(!catalog
            .get("users")
            .unwrap()
            .cached
            .as_ref()
            .unwrap()
            .is_retired());
        // A plain strong Arc is not a snapshot pin: only `snap` defers.
        drop(snap);
        assert_eq!(catalog.reclaim_unreferenced(), 1);
        assert_eq!(old.cached.as_ref().unwrap().memory_bytes(), 0);
    }

    #[test]
    fn new_snapshots_never_revive_a_deferred_version() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        load_table(&t);
        drop(t);
        let pin = catalog.snapshot();
        catalog.drop_table("users").unwrap();
        // A snapshot taken *after* the drop does not reference the dropped
        // version, so it cannot keep blocking reclamation once `pin` goes.
        let late = catalog.snapshot();
        assert!(!late.contains("users"));
        drop(pin);
        assert_eq!(catalog.reclaim_unreferenced(), 1);
        drop(late);
    }

    #[test]
    fn versions_stamp_the_installation_epoch() {
        let catalog = Catalog::new();
        let first = catalog.register(demo_table(false));
        assert_eq!(first.version(), 1);
        catalog.drop_table("users").unwrap(); // epoch 2
        let second = catalog.register(demo_table(false)); // epoch 3
        assert_eq!(second.version(), 3);
        assert_eq!(catalog.epoch(), 3);
        // A replay-provided version survives registration untouched.
        let replayed = catalog.register(
            TableMeta::new(
                "other",
                Schema::from_pairs(&[("x", DataType::Int)]),
                1,
                |_| vec![],
            )
            .with_version(17),
        );
        assert_eq!(replayed.version(), 17);
    }

    #[test]
    fn ddl_journal_records_installs_in_order() {
        let catalog = Catalog::new();
        catalog.register(demo_table(false)); // epoch 1
        catalog.drop_table("users").unwrap(); // epoch 2
        catalog.register(demo_table(true)); // epoch 3
        let journal = catalog.drain_ddl();
        assert_eq!(journal.len(), 3);
        match &journal[0] {
            DdlRecord::Created { epoch, table } => {
                assert_eq!(*epoch, 1);
                assert_eq!(table.name, "users");
                assert_eq!(table.version(), 1);
            }
            _ => panic!("expected Created"),
        }
        match &journal[1] {
            DdlRecord::Dropped { epoch, name } => {
                assert_eq!(*epoch, 2);
                assert_eq!(name, "users");
            }
            _ => panic!("expected Dropped"),
        }
        match &journal[2] {
            DdlRecord::Created { epoch, table } => {
                assert_eq!(*epoch, 3);
                assert!(table.is_cached());
            }
            _ => panic!("expected Created"),
        }
        // Drained means drained; a failed registration journals nothing.
        assert!(catalog.drain_ddl().is_empty());
        assert!(catalog.register_if_absent(demo_table(false)).is_err());
        assert!(catalog.drain_ddl().is_empty());
    }

    #[test]
    fn advance_epoch_to_never_moves_backwards() {
        let catalog = Catalog::new();
        catalog.register(demo_table(false));
        assert_eq!(catalog.epoch(), 1);
        catalog.advance_epoch_to(9);
        assert_eq!(catalog.epoch(), 9);
        assert!(catalog.contains("users"), "table map untouched");
        catalog.advance_epoch_to(4);
        assert_eq!(catalog.epoch(), 9);
        // The next DDL continues from the advanced epoch.
        catalog.drop_table("users").unwrap();
        assert_eq!(catalog.epoch(), 10);
    }

    #[test]
    fn distribute_by_resolves_columns() {
        let t = demo_table(false).with_distribute_by("ID").unwrap();
        assert_eq!(t.distribute_by, Some(0));
        assert!(demo_table(false).with_distribute_by("missing").is_err());
        let t = demo_table(false)
            .with_copartition("Other")
            .with_row_count_hint(10);
        assert_eq!(t.copartitioned_with.as_deref(), Some("other"));
        assert_eq!(t.row_count_hint, Some(10));
    }
}
