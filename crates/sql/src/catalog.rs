//! The catalog / metastore and the in-memory columnar table store.
//!
//! Tables are registered with a schema, a partition count and a *base
//! generator* — a deterministic function producing the rows of each
//! partition, standing in for the files of a Hive warehouse on HDFS. Tables
//! created with `"shark.cache" = "true"` additionally get a [`MemTable`]:
//! the columnar memstore representation, with per-partition node placement
//! so simulated node failures drop exactly the partitions that lived on the
//! failed worker (recovered later through the base generator, i.e. lineage).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use shark_columnar::{ColumnarPartition, PartitionStats};
use shark_common::{Result, Row, Schema, SharkError};

/// Deterministic per-partition row generator (the "files" of a table).
pub type RowGenerator = Arc<dyn Fn(usize) -> Vec<Row> + Send + Sync>;

/// Process-wide last-access clock shared by every memstore partition. A
/// single clock makes ticks comparable *across* tables, which is what lets a
/// memory manager pick the globally least-recently-used partition instead of
/// guessing at table granularity.
static MEMSTORE_CLOCK: AtomicU64 = AtomicU64::new(0);

fn next_memstore_tick() -> u64 {
    MEMSTORE_CLOCK.fetch_add(1, Ordering::Relaxed) + 1
}

/// One loaded (or evicted) partition eligible for eviction, as reported by
/// [`MemTable::lru_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionResidency {
    /// Partition index within its table.
    pub partition: usize,
    /// Resident columnar bytes.
    pub bytes: u64,
    /// Last-access tick on the process-wide memstore clock (smaller =
    /// colder).
    pub last_tick: u64,
}

/// The cached, columnar representation of a table (the memstore, §3.2).
///
/// The partition — not the table — is the unit of storage, recency tracking
/// and eviction (§3.1–3.2): each partition carries its own last-access tick
/// on a process-wide clock, can be evicted individually under memory
/// pressure, and is transparently rebuilt from the table's base generator
/// (its lineage) by the next scan that needs it. Partition *statistics* are
/// retained across policy evictions — they are tiny and stay valid because
/// the base generator is deterministic — so map pruning and top-k partition
/// ordering keep working over a partially evicted table.
pub struct MemTable {
    partitions: Vec<RwLock<Option<Arc<ColumnarPartition>>>>,
    /// Per-partition statistics, retained across policy evictions (but not
    /// across node failures, which are treated as data loss).
    stats: Vec<RwLock<Option<PartitionStats>>>,
    /// Per-partition last-access tick on [`MEMSTORE_CLOCK`].
    ticks: Vec<AtomicU64>,
    placements: Vec<usize>,
    /// Partitions rebuilt from the base generator by scans after an eviction
    /// or node failure (the lineage-recovery path).
    rebuilds: AtomicU64,
}

impl MemTable {
    /// Create an empty memtable for `num_partitions` partitions, assigning
    /// each partition to a node round-robin.
    pub fn new(num_partitions: usize, num_nodes: usize) -> MemTable {
        MemTable {
            partitions: (0..num_partitions).map(|_| RwLock::new(None)).collect(),
            stats: (0..num_partitions).map(|_| RwLock::new(None)).collect(),
            ticks: (0..num_partitions).map(|_| AtomicU64::new(0)).collect(),
            placements: (0..num_partitions).map(|p| p % num_nodes.max(1)).collect(),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Fetch a cached partition if it is loaded, refreshing its LRU tick.
    pub fn get(&self, partition: usize) -> Option<Arc<ColumnarPartition>> {
        let data = self.partitions[partition].read().clone();
        if data.is_some() {
            self.touch(partition);
        }
        data
    }

    /// Whether a partition is resident (without refreshing its LRU tick —
    /// use for accounting, not for access).
    pub fn is_loaded(&self, partition: usize) -> bool {
        self.partitions[partition].read().is_some()
    }

    /// Store a loaded partition, recording its statistics and refreshing
    /// its LRU tick.
    pub fn put(&self, partition: usize, data: Arc<ColumnarPartition>) {
        *self.stats[partition].write() = Some(data.stats().clone());
        *self.partitions[partition].write() = Some(data);
        self.touch(partition);
    }

    /// Refresh a partition's last-access tick.
    pub fn touch(&self, partition: usize) {
        self.ticks[partition].store(next_memstore_tick(), Ordering::Relaxed);
    }

    /// A partition's last-access tick on the process-wide memstore clock.
    pub fn last_tick(&self, partition: usize) -> u64 {
        self.ticks[partition].load(Ordering::Relaxed)
    }

    /// The node holding a partition.
    pub fn placement(&self, partition: usize) -> usize {
        self.placements[partition]
    }

    /// Drop every partition stored on `node`, returning how many were lost.
    /// A node failure loses the data *and* the statistics derived from it
    /// (unlike a policy eviction, which keeps the statistics).
    pub fn drop_node(&self, node: usize) -> usize {
        let mut lost = 0;
        for (p, slot) in self.partitions.iter().enumerate() {
            if self.placements[p] == node {
                let mut guard = slot.write();
                if guard.is_some() {
                    *guard = None;
                    *self.stats[p].write() = None;
                    lost += 1;
                }
            }
        }
        lost
    }

    /// Number of partitions currently loaded.
    pub fn loaded_partitions(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.read().is_some())
            .count()
    }

    /// Total memory footprint of loaded partitions, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .filter_map(|p| p.read().as_ref().map(|c| c.memory_bytes() as u64))
            .sum()
    }

    /// Resident bytes of one partition (0 when evicted or never loaded).
    pub fn partition_bytes(&self, partition: usize) -> u64 {
        self.partitions[partition]
            .read()
            .as_ref()
            .map(|c| c.memory_bytes() as u64)
            .unwrap_or(0)
    }

    /// Total rows across loaded partitions.
    pub fn total_rows(&self) -> u64 {
        self.partitions
            .iter()
            .filter_map(|p| p.read().as_ref().map(|c| c.num_rows() as u64))
            .sum()
    }

    /// Evict one partition (a *policy* eviction under memory pressure, not a
    /// failure): returns the bytes freed, 0 when the partition was not
    /// resident. The partition's statistics are retained — they stay valid
    /// because the base generator is deterministic — and the data is
    /// transparently rebuilt from lineage by the next scan that needs it.
    pub fn evict_partition(&self, partition: usize) -> u64 {
        let mut guard = self.partitions[partition].write();
        match guard.take() {
            Some(columnar) => columnar.memory_bytes() as u64,
            None => 0,
        }
    }

    /// Evict every loaded partition, returning `(partitions, bytes)` freed.
    /// The table stays registered (statistics included) and is transparently
    /// reloaded from its base generator — its lineage — on the next scan.
    pub fn evict_all(&self) -> (usize, u64) {
        let mut partitions = 0usize;
        let mut bytes = 0u64;
        for p in 0..self.partitions.len() {
            let freed = self.evict_partition(p);
            if freed > 0 {
                partitions += 1;
                bytes += freed;
            }
        }
        (partitions, bytes)
    }

    /// Every *resident* partition with its bytes and last-access tick — the
    /// candidate list a partition-granular LRU eviction policy works from.
    pub fn lru_candidates(&self) -> Vec<PartitionResidency> {
        (0..self.partitions.len())
            .filter_map(|p| {
                let bytes = self.partition_bytes(p);
                (bytes > 0).then(|| PartitionResidency {
                    partition: p,
                    bytes,
                    last_tick: self.last_tick(p),
                })
            })
            .collect()
    }

    /// Statistics of a partition. Retained across policy evictions, so this
    /// answers for evicted partitions too; `None` only for partitions never
    /// loaded (or lost to a node failure).
    pub fn stats(&self, partition: usize) -> Option<PartitionStats> {
        self.stats[partition].read().clone()
    }

    /// Record that a scan rebuilt a partition from the base generator.
    pub fn record_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Partitions rebuilt from lineage by scans (after eviction or failure).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }
}

/// Metadata for one registered table.
pub struct TableMeta {
    /// Table name (lower-cased).
    pub name: String,
    /// The table schema.
    pub schema: Schema,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Base row generator (the table's "files").
    pub base: RowGenerator,
    /// The columnar memstore, if the table is cached.
    pub cached: Option<Arc<MemTable>>,
    /// Column index the table is hash-partitioned by (`DISTRIBUTE BY`).
    pub distribute_by: Option<usize>,
    /// Name of the table this one is co-partitioned with (§3.4).
    pub copartitioned_with: Option<String>,
    /// Estimated total number of rows (used by the static optimizer).
    pub row_count_hint: Option<u64>,
}

impl TableMeta {
    /// Create a new table backed by a generator, not cached.
    pub fn new<F>(name: &str, schema: Schema, num_partitions: usize, generator: F) -> TableMeta
    where
        F: Fn(usize) -> Vec<Row> + Send + Sync + 'static,
    {
        TableMeta {
            name: name.to_lowercase(),
            schema,
            num_partitions: num_partitions.max(1),
            base: Arc::new(generator),
            cached: None,
            distribute_by: None,
            copartitioned_with: None,
            row_count_hint: None,
        }
    }

    /// Attach an (initially empty) memstore so scans cache and reuse the
    /// columnar form.
    pub fn with_cache(mut self, num_nodes: usize) -> TableMeta {
        self.cached = Some(Arc::new(MemTable::new(self.num_partitions, num_nodes)));
        self
    }

    /// Declare that the table is hash-partitioned by the given column.
    pub fn with_distribute_by(mut self, column: &str) -> Result<TableMeta> {
        let idx = self.schema.resolve(column)?;
        self.distribute_by = Some(idx);
        Ok(self)
    }

    /// Declare co-partitioning with another table.
    pub fn with_copartition(mut self, other: &str) -> TableMeta {
        self.copartitioned_with = Some(other.to_lowercase());
        self
    }

    /// Provide a row-count hint for the static optimizer.
    pub fn with_row_count_hint(mut self, rows: u64) -> TableMeta {
        self.row_count_hint = Some(rows);
        self
    }

    /// Whether the table has a memstore attached.
    pub fn is_cached(&self) -> bool {
        self.cached.is_some()
    }
}

/// The metastore: a registry of tables by name.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<std::collections::HashMap<String, Arc<TableMeta>>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table, replacing any table of the same name.
    pub fn register(&self, table: TableMeta) -> Arc<TableMeta> {
        let arc = Arc::new(table);
        self.tables.write().insert(arc.name.clone(), arc.clone());
        arc
    }

    /// Register a table only if no table of that name exists yet, checking
    /// and inserting under one write lock. This is the atomic path CTAS
    /// needs on a shared catalog: with a separate `contains` + `register`,
    /// two concurrent `CREATE TABLE t AS …` both pass the check and the
    /// loser silently clobbers the winner's table.
    pub fn register_if_absent(&self, table: TableMeta) -> Result<Arc<TableMeta>> {
        let mut tables = self.tables.write();
        match tables.entry(table.name.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => Err(SharkError::Catalog(format!(
                "table '{}' already exists",
                table.name
            ))),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let arc = Arc::new(table);
                slot.insert(arc.clone());
                Ok(arc)
            }
        }
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.tables
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| SharkError::Catalog(format!("table '{name}' not found")))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_lowercase())
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&name.to_lowercase())
            .map(|_| ())
            .ok_or_else(|| SharkError::Catalog(format!("table '{name}' not found")))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Drop the cached partitions of every table that lived on `node`
    /// (called when a simulated worker dies). Returns partitions lost.
    pub fn drop_node(&self, node: usize) -> usize {
        self.tables
            .read()
            .values()
            .filter_map(|t| t.cached.as_ref().map(|m| m.drop_node(node)))
            .sum()
    }

    /// Every registered table that has a memstore attached, sorted by name
    /// (the tables a memory manager can account for and evict).
    pub fn cached_tables(&self) -> Vec<Arc<TableMeta>> {
        let mut tables: Vec<Arc<TableMeta>> = self
            .tables
            .read()
            .values()
            .filter(|t| t.is_cached())
            .cloned()
            .collect();
        tables.sort_by(|a, b| a.name.cmp(&b.name));
        tables
    }

    /// Total memstore footprint across all cached tables.
    pub fn memstore_bytes(&self) -> u64 {
        self.tables
            .read()
            .values()
            .filter_map(|t| t.cached.as_ref().map(|m| m.memory_bytes()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType};

    fn demo_table(cached: bool) -> TableMeta {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]);
        let t = TableMeta::new("users", schema, 4, |p| {
            vec![row![p as i64, format!("user{p}")]]
        });
        if cached {
            t.with_cache(3)
        } else {
            t
        }
    }

    #[test]
    fn register_lookup_drop() {
        let catalog = Catalog::new();
        catalog.register(demo_table(false));
        assert!(catalog.contains("USERS"));
        let t = catalog.get("users").unwrap();
        assert_eq!(t.num_partitions, 4);
        assert_eq!((t.base)(2)[0].get_int(0).unwrap(), 2);
        assert_eq!(catalog.table_names(), vec!["users".to_string()]);
        catalog.drop_table("users").unwrap();
        assert!(catalog.get("users").is_err());
        assert!(catalog.drop_table("users").is_err());
    }

    #[test]
    fn register_if_absent_is_atomic() {
        let catalog = Catalog::new();
        assert!(catalog.register_if_absent(demo_table(false)).is_ok());
        let err = match catalog.register_if_absent(demo_table(false)) {
            Ok(_) => panic!("duplicate registration must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("already exists"));
        // Concurrent registrations of the same name: exactly one wins.
        let shared = Arc::new(Catalog::new());
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let c = shared.clone();
                    scope.spawn(move || usize::from(c.register_if_absent(demo_table(true)).is_ok()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        assert!(shared.contains("users"));
    }

    #[test]
    fn memtable_placement_and_failure() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        let schema = t.schema.clone();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&schema, &rows)));
        }
        assert_eq!(mem.loaded_partitions(), 4);
        assert!(mem.memory_bytes() > 0);
        assert_eq!(mem.total_rows(), 4);
        // Partitions 0 and 3 live on node 0 (round robin over 3 nodes).
        let lost = catalog.drop_node(0);
        assert_eq!(lost, 2);
        assert_eq!(mem.loaded_partitions(), 2);
        assert!(mem.get(0).is_none());
        assert!(mem.get(1).is_some());
        assert!(mem.stats(1).is_some());
        // A node failure is data loss: the statistics go with the data.
        assert!(mem.stats(0).is_none());
    }

    #[test]
    fn evict_all_frees_everything_and_reports_bytes() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
        let resident = mem.memory_bytes();
        assert!(resident > 0);
        let (partitions, bytes) = mem.evict_all();
        assert_eq!(partitions, 4);
        assert_eq!(bytes, resident);
        assert_eq!(mem.loaded_partitions(), 0);
        assert_eq!(mem.memory_bytes(), 0);
        // A policy eviction keeps the statistics: pruning and top-k
        // ordering still work over the evicted partitions.
        assert!(mem.stats(0).is_some());
        // Idempotent.
        assert_eq!(mem.evict_all(), (0, 0));
    }

    #[test]
    fn evict_partition_frees_one_partition_and_keeps_stats() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
        let before = mem.memory_bytes();
        let freed = mem.evict_partition(1);
        assert!(freed > 0);
        assert_eq!(mem.memory_bytes(), before - freed);
        assert_eq!(mem.loaded_partitions(), 3);
        assert!(!mem.is_loaded(1));
        assert_eq!(mem.partition_bytes(1), 0);
        assert!(mem.stats(1).is_some(), "stats survive a policy eviction");
        // Evicting again frees nothing.
        assert_eq!(mem.evict_partition(1), 0);
    }

    #[test]
    fn lru_candidates_order_follows_accesses() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
        // Touch 0 and 2 (via get); 1 and 3 keep their load-time ticks.
        assert!(mem.get(0).is_some());
        assert!(mem.get(2).is_some());
        let mut candidates = mem.lru_candidates();
        assert_eq!(candidates.len(), 4);
        candidates.sort_by_key(|c| c.last_tick);
        let order: Vec<usize> = candidates.iter().map(|c| c.partition).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        // is_loaded does not refresh the tick.
        assert!(mem.is_loaded(1));
        let again = mem.lru_candidates();
        let tick1 = again.iter().find(|c| c.partition == 1).unwrap().last_tick;
        assert_eq!(
            tick1,
            candidates
                .iter()
                .find(|c| c.partition == 1)
                .unwrap()
                .last_tick
        );
    }

    #[test]
    fn cached_tables_lists_only_memstore_tables() {
        let catalog = Catalog::new();
        catalog.register(demo_table(true));
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog.register(TableMeta::new("plain", schema, 1, |_| vec![]));
        let cached = catalog.cached_tables();
        assert_eq!(cached.len(), 1);
        assert_eq!(cached[0].name, "users");
    }

    #[test]
    fn distribute_by_resolves_columns() {
        let t = demo_table(false).with_distribute_by("ID").unwrap();
        assert_eq!(t.distribute_by, Some(0));
        assert!(demo_table(false).with_distribute_by("missing").is_err());
        let t = demo_table(false)
            .with_copartition("Other")
            .with_row_count_hint(10);
        assert_eq!(t.copartitioned_with.as_deref(), Some("other"));
        assert_eq!(t.row_count_hint, Some(10));
    }
}
