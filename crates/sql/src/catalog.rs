//! The catalog / metastore and the in-memory columnar table store.
//!
//! Tables are registered with a schema, a partition count and a *base
//! generator* — a deterministic function producing the rows of each
//! partition, standing in for the files of a Hive warehouse on HDFS. Tables
//! created with `"shark.cache" = "true"` additionally get a [`MemTable`]:
//! the columnar memstore representation, with per-partition node placement
//! so simulated node failures drop exactly the partitions that lived on the
//! failed worker (recovered later through the base generator, i.e. lineage).

use std::sync::Arc;

use parking_lot::RwLock;
use shark_columnar::{ColumnarPartition, PartitionStats};
use shark_common::{Result, Row, Schema, SharkError};

/// Deterministic per-partition row generator (the "files" of a table).
pub type RowGenerator = Arc<dyn Fn(usize) -> Vec<Row> + Send + Sync>;

/// The cached, columnar representation of a table (the memstore, §3.2).
pub struct MemTable {
    partitions: Vec<RwLock<Option<Arc<ColumnarPartition>>>>,
    placements: Vec<usize>,
}

impl MemTable {
    /// Create an empty memtable for `num_partitions` partitions, assigning
    /// each partition to a node round-robin.
    pub fn new(num_partitions: usize, num_nodes: usize) -> MemTable {
        MemTable {
            partitions: (0..num_partitions).map(|_| RwLock::new(None)).collect(),
            placements: (0..num_partitions).map(|p| p % num_nodes.max(1)).collect(),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Fetch a cached partition if it is loaded.
    pub fn get(&self, partition: usize) -> Option<Arc<ColumnarPartition>> {
        self.partitions[partition].read().clone()
    }

    /// Store a loaded partition.
    pub fn put(&self, partition: usize, data: Arc<ColumnarPartition>) {
        *self.partitions[partition].write() = Some(data);
    }

    /// The node holding a partition.
    pub fn placement(&self, partition: usize) -> usize {
        self.placements[partition]
    }

    /// Drop every partition stored on `node`, returning how many were lost.
    pub fn drop_node(&self, node: usize) -> usize {
        let mut lost = 0;
        for (p, slot) in self.partitions.iter().enumerate() {
            if self.placements[p] == node {
                let mut guard = slot.write();
                if guard.is_some() {
                    *guard = None;
                    lost += 1;
                }
            }
        }
        lost
    }

    /// Number of partitions currently loaded.
    pub fn loaded_partitions(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.read().is_some())
            .count()
    }

    /// Total memory footprint of loaded partitions, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .filter_map(|p| p.read().as_ref().map(|c| c.memory_bytes() as u64))
            .sum()
    }

    /// Total rows across loaded partitions.
    pub fn total_rows(&self) -> u64 {
        self.partitions
            .iter()
            .filter_map(|p| p.read().as_ref().map(|c| c.num_rows() as u64))
            .sum()
    }

    /// Evict every loaded partition (a *policy* eviction under memory
    /// pressure, not a failure): returns `(partitions, bytes)` freed. The
    /// table stays registered and is transparently reloaded from its base
    /// generator — its lineage — on the next scan.
    pub fn evict_all(&self) -> (usize, u64) {
        let mut partitions = 0usize;
        let mut bytes = 0u64;
        for slot in &self.partitions {
            let mut guard = slot.write();
            if let Some(columnar) = guard.take() {
                partitions += 1;
                bytes += columnar.memory_bytes() as u64;
            }
        }
        (partitions, bytes)
    }

    /// Statistics of one loaded partition (for map pruning).
    pub fn stats(&self, partition: usize) -> Option<PartitionStats> {
        self.partitions[partition]
            .read()
            .as_ref()
            .map(|c| c.stats().clone())
    }
}

/// Metadata for one registered table.
pub struct TableMeta {
    /// Table name (lower-cased).
    pub name: String,
    /// The table schema.
    pub schema: Schema,
    /// Number of partitions.
    pub num_partitions: usize,
    /// Base row generator (the table's "files").
    pub base: RowGenerator,
    /// The columnar memstore, if the table is cached.
    pub cached: Option<Arc<MemTable>>,
    /// Column index the table is hash-partitioned by (`DISTRIBUTE BY`).
    pub distribute_by: Option<usize>,
    /// Name of the table this one is co-partitioned with (§3.4).
    pub copartitioned_with: Option<String>,
    /// Estimated total number of rows (used by the static optimizer).
    pub row_count_hint: Option<u64>,
}

impl TableMeta {
    /// Create a new table backed by a generator, not cached.
    pub fn new<F>(name: &str, schema: Schema, num_partitions: usize, generator: F) -> TableMeta
    where
        F: Fn(usize) -> Vec<Row> + Send + Sync + 'static,
    {
        TableMeta {
            name: name.to_lowercase(),
            schema,
            num_partitions: num_partitions.max(1),
            base: Arc::new(generator),
            cached: None,
            distribute_by: None,
            copartitioned_with: None,
            row_count_hint: None,
        }
    }

    /// Attach an (initially empty) memstore so scans cache and reuse the
    /// columnar form.
    pub fn with_cache(mut self, num_nodes: usize) -> TableMeta {
        self.cached = Some(Arc::new(MemTable::new(self.num_partitions, num_nodes)));
        self
    }

    /// Declare that the table is hash-partitioned by the given column.
    pub fn with_distribute_by(mut self, column: &str) -> Result<TableMeta> {
        let idx = self.schema.resolve(column)?;
        self.distribute_by = Some(idx);
        Ok(self)
    }

    /// Declare co-partitioning with another table.
    pub fn with_copartition(mut self, other: &str) -> TableMeta {
        self.copartitioned_with = Some(other.to_lowercase());
        self
    }

    /// Provide a row-count hint for the static optimizer.
    pub fn with_row_count_hint(mut self, rows: u64) -> TableMeta {
        self.row_count_hint = Some(rows);
        self
    }

    /// Whether the table has a memstore attached.
    pub fn is_cached(&self) -> bool {
        self.cached.is_some()
    }
}

/// The metastore: a registry of tables by name.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<std::collections::HashMap<String, Arc<TableMeta>>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table, replacing any table of the same name.
    pub fn register(&self, table: TableMeta) -> Arc<TableMeta> {
        let arc = Arc::new(table);
        self.tables.write().insert(arc.name.clone(), arc.clone());
        arc
    }

    /// Register a table only if no table of that name exists yet, checking
    /// and inserting under one write lock. This is the atomic path CTAS
    /// needs on a shared catalog: with a separate `contains` + `register`,
    /// two concurrent `CREATE TABLE t AS …` both pass the check and the
    /// loser silently clobbers the winner's table.
    pub fn register_if_absent(&self, table: TableMeta) -> Result<Arc<TableMeta>> {
        let mut tables = self.tables.write();
        match tables.entry(table.name.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => Err(SharkError::Catalog(format!(
                "table '{}' already exists",
                table.name
            ))),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let arc = Arc::new(table);
                slot.insert(arc.clone());
                Ok(arc)
            }
        }
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.tables
            .read()
            .get(&name.to_lowercase())
            .cloned()
            .ok_or_else(|| SharkError::Catalog(format!("table '{name}' not found")))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_lowercase())
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&name.to_lowercase())
            .map(|_| ())
            .ok_or_else(|| SharkError::Catalog(format!("table '{name}' not found")))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Drop the cached partitions of every table that lived on `node`
    /// (called when a simulated worker dies). Returns partitions lost.
    pub fn drop_node(&self, node: usize) -> usize {
        self.tables
            .read()
            .values()
            .filter_map(|t| t.cached.as_ref().map(|m| m.drop_node(node)))
            .sum()
    }

    /// Every registered table that has a memstore attached, sorted by name
    /// (the tables a memory manager can account for and evict).
    pub fn cached_tables(&self) -> Vec<Arc<TableMeta>> {
        let mut tables: Vec<Arc<TableMeta>> = self
            .tables
            .read()
            .values()
            .filter(|t| t.is_cached())
            .cloned()
            .collect();
        tables.sort_by(|a, b| a.name.cmp(&b.name));
        tables
    }

    /// Total memstore footprint across all cached tables.
    pub fn memstore_bytes(&self) -> u64 {
        self.tables
            .read()
            .values()
            .filter_map(|t| t.cached.as_ref().map(|m| m.memory_bytes()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType};

    fn demo_table(cached: bool) -> TableMeta {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]);
        let t = TableMeta::new("users", schema, 4, |p| {
            vec![row![p as i64, format!("user{p}")]]
        });
        if cached {
            t.with_cache(3)
        } else {
            t
        }
    }

    #[test]
    fn register_lookup_drop() {
        let catalog = Catalog::new();
        catalog.register(demo_table(false));
        assert!(catalog.contains("USERS"));
        let t = catalog.get("users").unwrap();
        assert_eq!(t.num_partitions, 4);
        assert_eq!((t.base)(2)[0].get_int(0).unwrap(), 2);
        assert_eq!(catalog.table_names(), vec!["users".to_string()]);
        catalog.drop_table("users").unwrap();
        assert!(catalog.get("users").is_err());
        assert!(catalog.drop_table("users").is_err());
    }

    #[test]
    fn register_if_absent_is_atomic() {
        let catalog = Catalog::new();
        assert!(catalog.register_if_absent(demo_table(false)).is_ok());
        let err = match catalog.register_if_absent(demo_table(false)) {
            Ok(_) => panic!("duplicate registration must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("already exists"));
        // Concurrent registrations of the same name: exactly one wins.
        let shared = Arc::new(Catalog::new());
        let winners: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let c = shared.clone();
                    scope.spawn(move || usize::from(c.register_if_absent(demo_table(true)).is_ok()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        assert!(shared.contains("users"));
    }

    #[test]
    fn memtable_placement_and_failure() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        let schema = t.schema.clone();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&schema, &rows)));
        }
        assert_eq!(mem.loaded_partitions(), 4);
        assert!(mem.memory_bytes() > 0);
        assert_eq!(mem.total_rows(), 4);
        // Partitions 0 and 3 live on node 0 (round robin over 3 nodes).
        let lost = catalog.drop_node(0);
        assert_eq!(lost, 2);
        assert_eq!(mem.loaded_partitions(), 2);
        assert!(mem.get(0).is_none());
        assert!(mem.get(1).is_some());
        assert!(mem.stats(1).is_some());
        assert!(mem.stats(0).is_none());
    }

    #[test]
    fn evict_all_frees_everything_and_reports_bytes() {
        let catalog = Catalog::new();
        let t = catalog.register(demo_table(true));
        let mem = t.cached.as_ref().unwrap();
        for p in 0..4 {
            let rows = (t.base)(p);
            mem.put(p, Arc::new(ColumnarPartition::from_rows(&t.schema, &rows)));
        }
        let resident = mem.memory_bytes();
        assert!(resident > 0);
        let (partitions, bytes) = mem.evict_all();
        assert_eq!(partitions, 4);
        assert_eq!(bytes, resident);
        assert_eq!(mem.loaded_partitions(), 0);
        assert_eq!(mem.memory_bytes(), 0);
        // Idempotent.
        assert_eq!(mem.evict_all(), (0, 0));
    }

    #[test]
    fn cached_tables_lists_only_memstore_tables() {
        let catalog = Catalog::new();
        catalog.register(demo_table(true));
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        catalog.register(TableMeta::new("plain", schema, 1, |_| vec![]));
        let cached = catalog.cached_tables();
        assert_eq!(cached.len(), 1);
        assert_eq!(cached[0].name, "users");
    }

    #[test]
    fn distribute_by_resolves_columns() {
        let t = demo_table(false).with_distribute_by("ID").unwrap();
        assert_eq!(t.distribute_by, Some(0));
        assert!(demo_table(false).with_distribute_by("missing").is_err());
        let t = demo_table(false)
            .with_copartition("Other")
            .with_row_count_hint(10);
        assert_eq!(t.copartitioned_with.as_deref(), Some("other"));
        assert_eq!(t.row_count_hint, Some(10));
    }
}
