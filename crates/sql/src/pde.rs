//! Partial DAG Execution decisions (§3.1).
//!
//! After the map side of a shuffle runs, the master holds per-bucket size
//! and row-count statistics. This module turns those statistics into the
//! run-time decisions the paper describes:
//!
//! * **join strategy selection** (§3.1.1): broadcast ("map join") the small
//!   side if its materialized size is under a threshold, otherwise perform a
//!   shuffle join;
//! * **reducer-count selection and skew mitigation** (§3.1.2): coalesce many
//!   fine-grained map-output buckets into fewer coarse reduce tasks with a
//!   greedy bin-packing heuristic that equalizes task sizes.

use shark_rdd::ShuffleSummary;

/// Default broadcast threshold: relations smaller than this (serialized
/// bytes, at simulation scale) are broadcast instead of shuffled.
pub const DEFAULT_BROADCAST_THRESHOLD: u64 = 64 * 1024 * 1024;

/// The join strategy chosen at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Broadcast the left (first) side to all partitions of the right side.
    BroadcastLeft,
    /// Broadcast the right (second) side to all partitions of the left side.
    BroadcastRight,
    /// Hash-partition both sides and join per reduce partition.
    Shuffle,
}

/// Choose a join strategy from the materialized sizes of both sides
/// (scaled to simulated bytes).
pub fn choose_join_strategy(
    left_bytes: u64,
    right_bytes: u64,
    broadcast_threshold: u64,
) -> JoinStrategy {
    let smaller = left_bytes.min(right_bytes);
    if smaller <= broadcast_threshold {
        if left_bytes <= right_bytes {
            JoinStrategy::BroadcastLeft
        } else {
            JoinStrategy::BroadcastRight
        }
    } else {
        JoinStrategy::Shuffle
    }
}

/// Greedy bin-packing of fine-grained buckets into coarse reduce partitions:
/// buckets are sorted by decreasing size and each is placed into the
/// currently smallest bin; the number of bins is chosen so the average bin
/// holds roughly `target_bytes`, clamped to `[1, max_partitions]`.
///
/// Returns, for each coarse partition, the list of fine bucket indices it
/// reads — the assignment consumed by
/// [`PreShuffledRdd::read`](shark_rdd::PreShuffledRdd::read).
pub fn coalesce_buckets(
    bucket_bytes: &[u64],
    target_bytes: u64,
    max_partitions: usize,
) -> Vec<Vec<usize>> {
    let n = bucket_bytes.len();
    if n == 0 {
        return vec![vec![]];
    }
    let total: u64 = bucket_bytes.iter().sum();
    let target = target_bytes.max(1);
    let mut bins = (total / target) as usize;
    if !total.is_multiple_of(target) || bins == 0 {
        bins += 1;
    }
    let bins = bins.clamp(1, max_partitions.max(1)).min(n);

    // Sort buckets by decreasing size, then place each in the least-loaded bin.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(bucket_bytes[i]));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); bins];
    let mut loads: Vec<u64> = vec![0; bins];
    for i in order {
        let (bin, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .expect("at least one bin");
        assignment[bin].push(i);
        loads[bin] += bucket_bytes[i];
    }
    // Keep bucket lists sorted for deterministic reads.
    for bucket_list in &mut assignment {
        bucket_list.sort_unstable();
    }
    assignment
}

/// Pick the number of reduce tasks for a shuffle given its summary: enough
/// tasks that each processes about `target_bytes`, but never more than
/// `max_partitions` (the paper notes Spark comfortably runs thousands of
/// small reduce tasks, §7).
pub fn choose_reducer_count(
    summary: &ShuffleSummary,
    target_bytes: u64,
    max_partitions: usize,
) -> usize {
    let total = summary.total_bytes.max(1);
    let ideal = total.div_ceil(target_bytes.max(1)) as usize;
    ideal.clamp(1, max_partitions.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_chosen_for_small_side() {
        assert_eq!(
            choose_join_strategy(10, 1 << 30, 1024),
            JoinStrategy::BroadcastLeft
        );
        assert_eq!(
            choose_join_strategy(1 << 30, 10, 1024),
            JoinStrategy::BroadcastRight
        );
        assert_eq!(
            choose_join_strategy(1 << 30, 1 << 30, 1024),
            JoinStrategy::Shuffle
        );
    }

    #[test]
    fn coalesce_covers_every_bucket_exactly_once() {
        let sizes: Vec<u64> = (0..100).map(|i| (i % 7 + 1) * 10).collect();
        let assignment = coalesce_buckets(&sizes, 100, 16);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert!(assignment.len() <= 16);
    }

    #[test]
    fn coalesce_balances_skewed_buckets() {
        // One huge bucket plus many small ones.
        let mut sizes = vec![1000u64];
        sizes.extend(std::iter::repeat_n(10u64, 99));
        let assignment = coalesce_buckets(&sizes, 500, 4);
        let loads: Vec<u64> = assignment
            .iter()
            .map(|b| b.iter().map(|&i| sizes[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // The huge bucket dominates one bin; the rest should be spread evenly.
        assert!(max >= 1000);
        assert!(
            min >= 200,
            "small buckets should be spread, loads: {loads:?}"
        );
    }

    #[test]
    fn coalesce_edge_cases() {
        assert_eq!(coalesce_buckets(&[], 100, 4), vec![Vec::<usize>::new()]);
        let one = coalesce_buckets(&[5], 100, 4);
        assert_eq!(one, vec![vec![0]]);
        // max_partitions = 1 merges everything.
        let merged = coalesce_buckets(&[10, 20, 30], 1, 1);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], vec![0, 1, 2]);
    }

    #[test]
    fn coalesce_empty_bucket_list_yields_one_empty_partition() {
        // Even with extreme knob values, an empty shuffle still produces a
        // single (empty) reduce partition rather than zero partitions.
        for (target, max_parts) in [(1u64, 1usize), (u64::MAX, 1), (1, usize::MAX)] {
            let assignment = coalesce_buckets(&[], target, max_parts);
            assert_eq!(assignment, vec![Vec::<usize>::new()]);
        }
    }

    #[test]
    fn coalesce_all_zero_sizes_still_covers_every_bucket() {
        // All-empty buckets (e.g. a filter that matched nothing): total is
        // 0 bytes, so everything coalesces into a single reduce task, and
        // no bucket is dropped.
        let sizes = [0u64; 32];
        let assignment = coalesce_buckets(&sizes, 1 << 20, 8);
        assert_eq!(assignment.len(), 1);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
        // A zero target must not panic either (it is clamped to 1 byte).
        let assignment = coalesce_buckets(&sizes, 0, 8);
        assert_eq!(
            assignment.iter().map(|b| b.len()).sum::<usize>(),
            sizes.len()
        );
    }

    #[test]
    fn coalesce_single_giant_bucket_is_isolated() {
        // One bucket holds virtually all the data; the balancer must give
        // it a bin of its own instead of stacking small buckets behind it.
        let mut sizes = vec![1_000_000u64];
        sizes.extend(std::iter::repeat_n(1u64, 63));
        let assignment = coalesce_buckets(&sizes, 200_000, 8);
        let giant_bin = assignment
            .iter()
            .find(|bin| bin.contains(&0))
            .expect("giant bucket assigned somewhere");
        assert_eq!(
            giant_bin,
            &vec![0],
            "giant bucket shares a bin: {assignment:?}"
        );
        // Everything is still covered exactly once.
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn coalesce_clamps_to_max_partitions() {
        // The byte target asks for ~100 bins; max_partitions must win.
        let sizes: Vec<u64> = vec![100; 100];
        for max_parts in [1usize, 2, 5, 99] {
            let assignment = coalesce_buckets(&sizes, 100, max_parts);
            assert!(
                assignment.len() <= max_parts,
                "{} bins > max {max_parts}",
                assignment.len()
            );
            assert!(!assignment.iter().any(|b| b.is_empty()));
        }
        // max_partitions = 0 is treated as 1, not a panic.
        let assignment = coalesce_buckets(&sizes, 100, 0);
        assert_eq!(assignment.len(), 1);
        // And never more bins than buckets, however generous the cap.
        let assignment = coalesce_buckets(&[1, 1], 1, 1000);
        assert!(assignment.len() <= 2);
    }

    #[test]
    fn reducer_count_scales_with_data() {
        let summary = |bytes: u64| ShuffleSummary {
            num_map_tasks: 4,
            num_buckets: 100,
            bucket_bytes: vec![],
            bucket_rows: vec![],
            total_bytes: bytes,
            total_rows: 0,
        };
        assert_eq!(choose_reducer_count(&summary(50), 100, 1000), 1);
        assert_eq!(choose_reducer_count(&summary(1000), 100, 1000), 10);
        assert_eq!(choose_reducer_count(&summary(1 << 40), 100, 1000), 1000);
    }
}
