//! # shark-core
//!
//! The top-level, user-facing API of the Shark reproduction: a
//! [`SharkContext`] that unifies SQL query processing and machine learning
//! over the same simulated cluster, cached data, and lineage-based fault
//! tolerance — the system described in *Shark: SQL and Rich Analytics at
//! Scale* (SIGMOD 2013).
//!
//! ```
//! use shark_core::SharkContext;
//! use shark_common::{row, DataType, Schema};
//! use shark_sql::TableMeta;
//!
//! let shark = SharkContext::local();
//! shark.register_table(TableMeta::new(
//!     "people",
//!     Schema::from_pairs(&[("name", DataType::Str), ("age", DataType::Int)]),
//!     2,
//!     |p| vec![row![format!("person{p}"), 20i64 + p as i64]],
//! ));
//! let result = shark.sql("SELECT name FROM people WHERE age >= 21").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod context;
pub mod datasets;

pub use context::{SharkConfig, SharkContext};

// Re-export the pieces users typically need alongside the context.
pub use shark_cluster::{ClusterConfig, EngineProfile};
pub use shark_ml::{KMeans, LinearRegression, LogisticRegression};
pub use shark_rdd::{CacheManager, EvictionStats, Rdd, RddConfig, RddContext};
pub use shark_sql::{
    Catalog, ExecConfig, ExecutionMode, LoadReport, MemTable, QueryResult, SqlSession, TableMeta,
    TableRdd,
};
