//! Convenience registration of the paper's benchmark datasets (§6) into a
//! [`SharkContext`], used by the examples and the experiment harness.

use shark_common::Result;
use shark_datagen::ml::MlConfig;
use shark_datagen::pavlo::{self, PavloConfig};
use shark_datagen::tpch::{self, TpchConfig};
use shark_datagen::warehouse::{self, WarehouseConfig};
use shark_sql::TableMeta;

use crate::context::SharkContext;

/// Register the Pavlo et al. benchmark tables (`rankings`, `uservisits`),
/// optionally cached in the memstore.
pub fn register_pavlo(
    shark: &SharkContext,
    cfg: &PavloConfig,
    partitions: usize,
    cached: bool,
) -> Result<()> {
    let nodes = shark.config().cluster.num_nodes;
    let c1 = cfg.clone();
    let mut rankings = TableMeta::new("rankings", pavlo::rankings_schema(), partitions, move |p| {
        pavlo::rankings_partition(&c1, partitions, p)
    })
    .with_row_count_hint(cfg.rankings_rows as u64);
    let c2 = cfg.clone();
    let mut uservisits = TableMeta::new(
        "uservisits",
        pavlo::uservisits_schema(),
        partitions,
        move |p| pavlo::uservisits_partition(&c2, partitions, p),
    )
    .with_row_count_hint(cfg.uservisits_rows as u64);
    if cached {
        rankings = rankings.with_cache(nodes);
        uservisits = uservisits.with_cache(nodes);
    }
    shark.register_table(rankings);
    shark.register_table(uservisits);
    Ok(())
}

/// Register the TPC-H-like tables (`lineitem`, `supplier`, `orders`).
pub fn register_tpch(
    shark: &SharkContext,
    cfg: &TpchConfig,
    partitions: usize,
    cached: bool,
) -> Result<()> {
    let nodes = shark.config().cluster.num_nodes;
    let c1 = cfg.clone();
    let mut lineitem = TableMeta::new("lineitem", tpch::lineitem_schema(), partitions, move |p| {
        tpch::lineitem_partition(&c1, partitions, p)
    })
    .with_row_count_hint(cfg.lineitem_rows as u64);
    let supplier_parts = partitions.clamp(1, 8);
    let c2 = cfg.clone();
    let mut supplier = TableMeta::new(
        "supplier",
        tpch::supplier_schema(),
        supplier_parts,
        move |p| tpch::supplier_partition(&c2, supplier_parts, p),
    )
    .with_row_count_hint(cfg.supplier_rows as u64);
    let orders_parts = partitions.clamp(1, 16);
    let c3 = cfg.clone();
    let mut orders = TableMeta::new("orders", tpch::orders_schema(), orders_parts, move |p| {
        tpch::orders_partition(&c3, orders_parts, p)
    })
    .with_row_count_hint(cfg.orders_rows as u64);
    if cached {
        lineitem = lineitem.with_cache(nodes);
        supplier = supplier.with_cache(nodes);
        orders = orders.with_cache(nodes);
    }
    shark.register_table(lineitem);
    shark.register_table(supplier);
    shark.register_table(orders);
    Ok(())
}

/// Register the video-analytics warehouse fact table (`sessions`), one
/// partition per `(day, region)` slice so its natural clustering is
/// preserved for map pruning.
pub fn register_warehouse(shark: &SharkContext, cfg: &WarehouseConfig, cached: bool) -> Result<()> {
    let nodes = shark.config().cluster.num_nodes;
    let c = cfg.clone();
    let partitions = cfg.num_partitions();
    let mut sessions = TableMeta::new(
        "sessions",
        warehouse::sessions_schema(),
        partitions,
        move |p| warehouse::sessions_partition(&c, p),
    )
    .with_row_count_hint((cfg.sessions_per_partition * partitions) as u64);
    if cached {
        sessions = sessions.with_cache(nodes);
    }
    shark.register_table(sessions);
    Ok(())
}

/// Register the synthetic ML dataset in relational form (`points`), so the
/// SQL → feature extraction → iterative ML pipeline of Listing 1 can run.
pub fn register_ml_points(
    shark: &SharkContext,
    cfg: &MlConfig,
    partitions: usize,
    cached: bool,
) -> Result<()> {
    let nodes = shark.config().cluster.num_nodes;
    let c = cfg.clone();
    let mut points = TableMeta::new(
        "points",
        shark_datagen::ml::points_schema(cfg.dims),
        partitions,
        move |p| shark_datagen::ml::points_table_partition(&c, partitions, p),
    )
    .with_row_count_hint(cfg.rows as u64);
    if cached {
        points = points.with_cache(nodes);
    }
    shark.register_table(points);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_paper_datasets() {
        let shark = SharkContext::local();
        register_pavlo(&shark, &PavloConfig::tiny(), 4, true).unwrap();
        register_tpch(&shark, &TpchConfig::tiny(), 4, false).unwrap();
        register_warehouse(&shark, &WarehouseConfig::tiny(), true).unwrap();
        register_ml_points(&shark, &MlConfig::tiny(), 4, false).unwrap();
        let names = shark.session().catalog().table_names();
        for t in [
            "rankings",
            "uservisits",
            "lineitem",
            "supplier",
            "orders",
            "sessions",
            "points",
        ] {
            assert!(names.contains(&t.to_string()), "missing {t}");
        }
    }

    #[test]
    fn pavlo_selection_query_runs() {
        let shark = SharkContext::local();
        register_pavlo(&shark, &PavloConfig::tiny(), 4, true).unwrap();
        let r = shark
            .sql("SELECT pageURL, pageRank FROM rankings WHERE pageRank > 300")
            .unwrap();
        assert!(!r.rows.is_empty());
        assert!(r.rows.iter().all(|row| row.get_int(1).unwrap() > 300));
    }

    #[test]
    fn warehouse_query_prunes_partitions() {
        let shark = SharkContext::local();
        register_warehouse(&shark, &WarehouseConfig::tiny(), true).unwrap();
        shark.load_table("sessions").unwrap();
        let r = shark
            .sql(
                "SELECT country, COUNT(*) FROM sessions \
                 WHERE day = 15001 AND country = 'US' GROUP BY country",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(
            r.notes.iter().any(|n| n.contains("map pruning")),
            "{:?}",
            r.notes
        );
    }
}
