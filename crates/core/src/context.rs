//! The [`SharkContext`]: one object that speaks SQL and runs ML.

use std::sync::Arc;

use shark_cluster::ClusterConfig;
use shark_common::{Result, Value};
use shark_rdd::{JobReport, Rdd, RddConfig, RddContext};
use shark_sql::{ExecConfig, LoadReport, QueryResult, SqlSession, TableMeta, TableRdd};

/// Configuration of a [`SharkContext`].
#[derive(Debug, Clone)]
pub struct SharkConfig {
    /// The simulated cluster and engine cost profile.
    pub cluster: ClusterConfig,
    /// Default number of partitions for derived tables and shuffles.
    pub default_partitions: usize,
    /// Ratio between simulated data volume and the in-process volume.
    pub sim_scale: f64,
    /// Execute tasks of a stage on multiple OS threads.
    pub parallel_tasks: bool,
    /// SQL execution configuration (Shark / Shark-disk / Hive, PDE knobs).
    pub exec: ExecConfig,
}

impl Default for SharkConfig {
    fn default() -> Self {
        SharkConfig {
            cluster: ClusterConfig::small(4, 2),
            default_partitions: 8,
            sim_scale: 1.0,
            parallel_tasks: false,
            exec: ExecConfig::shark(),
        }
    }
}

impl SharkConfig {
    /// The paper's 100-node Shark setup.
    pub fn paper_shark() -> SharkConfig {
        SharkConfig {
            cluster: ClusterConfig::paper_shark_cluster(),
            default_partitions: 200,
            exec: ExecConfig::shark(),
            ..SharkConfig::default()
        }
    }

    /// The paper's 100-node Hive/Hadoop baseline.
    pub fn paper_hive() -> SharkConfig {
        SharkConfig {
            cluster: ClusterConfig::paper_hive_cluster(),
            default_partitions: 200,
            exec: ExecConfig::hive(),
            ..SharkConfig::default()
        }
    }

    /// Set the simulation scale factor.
    pub fn with_sim_scale(mut self, scale: f64) -> SharkConfig {
        self.sim_scale = scale;
        self
    }

    /// Set the SQL execution configuration.
    pub fn with_exec(mut self, exec: ExecConfig) -> SharkConfig {
        self.exec = exec;
        self
    }
}

/// The unified SQL + analytics driver (the paper's "master process").
pub struct SharkContext {
    session: SqlSession,
    config: SharkConfig,
}

impl SharkContext {
    /// Create a context from a configuration.
    pub fn new(config: SharkConfig) -> SharkContext {
        let rdd_config = RddConfig {
            cluster: config.cluster.clone(),
            default_partitions: config.default_partitions,
            sim_scale: config.sim_scale,
            parallel_tasks: config.parallel_tasks,
        };
        let ctx = RddContext::new(rdd_config);
        SharkContext {
            session: SqlSession::new(ctx, config.exec.clone()),
            config,
        }
    }

    /// A small local context for tests and examples.
    pub fn local() -> SharkContext {
        SharkContext::new(SharkConfig::default())
    }

    /// Create a context over an *existing* RDD context and a *shared*
    /// catalog. Multiple `SharkContext`s built this way (or sessions handed
    /// out by `shark-server`) see the same tables, memstore and RDD cache —
    /// the multi-user warehouse configuration.
    pub fn with_shared(
        config: SharkConfig,
        ctx: RddContext,
        catalog: Arc<shark_sql::Catalog>,
    ) -> SharkContext {
        SharkContext {
            session: SqlSession::with_catalog(ctx, config.exec.clone(), catalog),
            config,
        }
    }

    /// The catalog backing this context's session.
    pub fn catalog(&self) -> &Arc<shark_sql::Catalog> {
        self.session.catalog()
    }

    /// Pin an immutable, epoch-versioned snapshot of the catalog. Everything
    /// resolved against it sees one consistent set of table versions, and a
    /// table dropped by a concurrent session keeps its memstore resident
    /// until this (and every other) pin referencing it is released — the
    /// lineage of a long analytics pipeline can never dangle mid-run.
    pub fn catalog_snapshot(&self) -> Arc<shark_sql::CatalogSnapshot> {
        self.session.catalog().snapshot()
    }

    /// The catalog's current epoch (bumped by every DDL).
    pub fn catalog_epoch(&self) -> u64 {
        self.session.catalog().epoch()
    }

    /// The configuration this context was built with.
    pub fn config(&self) -> &SharkConfig {
        &self.config
    }

    /// The underlying RDD context (for writing raw RDD programs).
    pub fn rdd_context(&self) -> &RddContext {
        self.session.context()
    }

    /// The SQL session (catalog, UDFs, execution config).
    pub fn session(&self) -> &SqlSession {
        &self.session
    }

    /// Mutable access to the SQL session (e.g. to register UDFs or switch
    /// the execution mode).
    pub fn session_mut(&mut self) -> &mut SqlSession {
        &mut self.session
    }

    /// Register a base table in the catalog.
    pub fn register_table(&self, table: TableMeta) -> Arc<TableMeta> {
        self.session.register_table(table)
    }

    /// Load a cached table into the columnar memstore now.
    pub fn load_table(&self, name: &str) -> Result<LoadReport> {
        self.session.load_table(name)
    }

    /// Execute a SQL statement and collect its result.
    pub fn sql(&self, text: &str) -> Result<QueryResult> {
        self.session.sql(text)
    }

    /// Execute a SQL query and keep the result as an RDD (`sql2rdd`, §4.1).
    pub fn sql_to_rdd(&self, text: &str) -> Result<TableRdd> {
        self.session.sql_to_rdd(text)
    }

    /// Register a user-defined scalar function.
    pub fn register_udf<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        self.session.register_udf(name, f);
    }

    /// Distribute an in-memory collection as an RDD.
    pub fn parallelize<T: shark_rdd::Data>(&self, data: Vec<T>, partitions: usize) -> Rdd<T> {
        self.rdd_context().parallelize(data, partitions)
    }

    /// Kill a simulated worker node (drops its cached partitions; subsequent
    /// queries recover them through lineage). Returns memstore partitions
    /// lost.
    pub fn fail_node(&self, node: usize) -> usize {
        self.session.fail_node(node)
    }

    /// Current simulated time (seconds) since the last reset.
    pub fn simulated_time(&self) -> f64 {
        self.rdd_context().simulated_time()
    }

    /// Reset the simulated clock (start timing a new experiment).
    pub fn reset_simulation(&self) {
        self.rdd_context().reset_simulation();
    }

    /// Job-level execution reports recorded so far.
    pub fn job_history(&self) -> Vec<JobReport> {
        self.rdd_context().job_history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType, Schema};

    fn people(shark: &SharkContext) {
        shark.register_table(
            TableMeta::new(
                "people",
                Schema::from_pairs(&[("name", DataType::Str), ("age", DataType::Int)]),
                3,
                |p| {
                    (0..10)
                        .map(|i| row![format!("p{p}_{i}"), (18 + (i + p) % 50) as i64])
                        .collect()
                },
            )
            .with_cache(4),
        );
    }

    #[test]
    fn sql_end_to_end() {
        let shark = SharkContext::local();
        people(&shark);
        let r = shark
            .sql("SELECT COUNT(*) FROM people WHERE age >= 25")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(r.rows[0].get_int(0).unwrap() > 0);
        assert!(shark.simulated_time() > 0.0);
        shark.reset_simulation();
        assert_eq!(shark.simulated_time(), 0.0);
    }

    #[test]
    fn sql_to_rdd_plus_ml_pipeline() {
        let shark = SharkContext::local();
        people(&shark);
        let table = shark.sql_to_rdd("SELECT age FROM people").unwrap();
        let points = table
            .rdd
            .map(|r| {
                let age = r.get_float(0).unwrap_or(0.0);
                (vec![age / 100.0, 1.0], if age >= 40.0 { 1.0 } else { -1.0 })
            })
            .cache();
        let (model, report) = shark_ml::LogisticRegression {
            iterations: 5,
            learning_rate: 1.0,
            seed: 1,
        }
        .train(&points)
        .unwrap();
        assert_eq!(report.iterations(), 5);
        assert_eq!(model.weights.len(), 2);
    }

    #[test]
    fn fail_node_and_recover() {
        let shark = SharkContext::local();
        people(&shark);
        shark.load_table("people").unwrap();
        let before = shark.sql("SELECT COUNT(*) FROM people").unwrap();
        shark.fail_node(0);
        let after = shark.sql("SELECT COUNT(*) FROM people").unwrap();
        assert_eq!(before.rows, after.rows);
    }

    #[test]
    fn udf_registration() {
        let mut shark = SharkContext::local();
        people(&shark);
        shark.register_udf("is_adult", |args| {
            Value::Bool(args[0].as_int().map(|a| a >= 18).unwrap_or(false))
        });
        let r = shark
            .sql("SELECT COUNT(*) FROM people WHERE is_adult(age)")
            .unwrap();
        assert_eq!(r.rows[0].get_int(0).unwrap(), 30);
    }

    #[test]
    fn shared_contexts_see_the_same_catalog() {
        let a = SharkContext::local();
        people(&a);
        let b = SharkContext::with_shared(
            SharkConfig::default(),
            a.rdd_context().clone(),
            a.catalog().clone(),
        );
        let r = b.sql("SELECT COUNT(*) FROM people").unwrap();
        assert_eq!(r.rows[0].get_int(0).unwrap(), 30);
        b.sql("CREATE TABLE adults AS SELECT name FROM people WHERE age >= 30")
            .unwrap();
        assert!(a.catalog().contains("adults"));
    }

    #[test]
    fn pinned_snapshot_keeps_sql_to_rdd_lineage_stable_across_drop() {
        let a = SharkContext::local();
        people(&a);
        a.load_table("people").unwrap();
        // Build (but do not run) a pipeline, then drop the table from a
        // second context sharing the catalog.
        let table = a.sql_to_rdd("SELECT age FROM people").unwrap();
        let epoch_at_plan = a.catalog_epoch();
        let b = SharkContext::with_shared(
            SharkConfig::default(),
            a.rdd_context().clone(),
            a.catalog().clone(),
        );
        b.sql("DROP TABLE people").unwrap();
        assert!(a.catalog_epoch() > epoch_at_plan);
        assert!(!a.catalog().contains("people"));
        // The pipeline still runs: its plan pinned the snapshot it was
        // resolved against, so the dropped version stays resident.
        assert!(a.catalog().deferred_drop_bytes() > 0);
        let count = table.rdd.collect().unwrap().len();
        assert_eq!(count, 30);
        drop(table);
        // The pin is gone with the pipeline: the version is reclaimable.
        assert_eq!(a.catalog().reclaim_unreferenced(), 1);
        assert_eq!(a.catalog().deferred_drop_bytes(), 0);
    }

    #[test]
    fn paper_configs_differ_in_profile() {
        let shark_cfg = SharkConfig::paper_shark();
        let hive_cfg = SharkConfig::paper_hive();
        assert!(
            hive_cfg.cluster.profile.task_launch_overhead
                > shark_cfg.cluster.profile.task_launch_overhead * 100.0
        );
    }
}
