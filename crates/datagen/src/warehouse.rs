//! The "real Hive warehouse" workload (§6.4): a video-analytics session
//! fact table with natural clustering.
//!
//! The paper's sample is 1.7 TB of video session data in a single fact table
//! with 103 columns; its queries compute per-segment quality metrics with
//! filters on date, customer and country. Two properties matter for the
//! reproduction: (1) the table is *naturally clustered* on time and
//! geography because logs arrive chronologically per data center (§3.5), so
//! map pruning removes ~30× of the scanned data; and (2) queries aggregate a
//! handful of the many columns. The generator reproduces both: partitions
//! correspond to (day, region) slices and carry a representative subset of
//! the 103 columns (the quality metrics the four benchmark queries touch).

use rand::Rng;
use shark_common::{row, DataType, Row, Schema, Value};

use crate::partition_rng;

/// Configuration of the synthetic warehouse fact table.
#[derive(Debug, Clone)]
pub struct WarehouseConfig {
    /// Number of days of data (paper sample: 30 days).
    pub days: usize,
    /// Number of geographic regions (data centers).
    pub regions: usize,
    /// Sessions generated per (day, region) partition.
    pub sessions_per_partition: usize,
    /// Number of distinct customers.
    pub customers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            days: 30,
            regions: 8,
            sessions_per_partition: 400,
            customers: 50,
            seed: 0xF00D,
        }
    }
}

impl WarehouseConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> WarehouseConfig {
        WarehouseConfig {
            days: 5,
            regions: 3,
            sessions_per_partition: 60,
            customers: 10,
            seed: 11,
        }
    }

    /// Total number of partitions ((day, region) slices).
    pub fn num_partitions(&self) -> usize {
        self.days * self.regions
    }
}

/// ISO-ish country codes per region index.
pub const REGION_COUNTRIES: [&str; 8] = ["US", "CA", "GB", "DE", "FR", "JP", "BR", "IN"];

/// Base day number of the first day of data.
pub const BASE_DAY: i32 = 15_000;

/// Schema of the `sessions` fact table (a representative subset of the
/// 103-column production table: keys, dimensions and quality metrics).
pub fn sessions_schema() -> Schema {
    Schema::from_pairs(&[
        ("session_id", DataType::Int),
        ("day", DataType::Date),
        ("customer_id", DataType::Int),
        ("country", DataType::Str),
        ("city", DataType::Str),
        ("device", DataType::Str),
        ("os", DataType::Str),
        ("player_version", DataType::Str),
        ("cdn", DataType::Str),
        ("is_live", DataType::Bool),
        ("buffering_ms", DataType::Int),
        ("startup_ms", DataType::Int),
        ("bitrate_kbps", DataType::Int),
        ("play_seconds", DataType::Int),
        ("rebuffer_count", DataType::Int),
        ("errors", DataType::Int),
        ("bytes_delivered", DataType::Int),
        ("ad_impressions", DataType::Int),
        ("exit_early", DataType::Bool),
        ("quality_score", DataType::Float),
    ])
}

/// Generate the `(day, region)` slice for global partition index `partition`.
///
/// Partition `p` covers day `p / regions` and region `p % regions`, which is
/// exactly the natural clustering map pruning exploits: a predicate on `day`
/// or `country` eliminates whole partitions.
pub fn sessions_partition(cfg: &WarehouseConfig, partition: usize) -> Vec<Row> {
    let regions = cfg.regions.max(1);
    let day_idx = partition / regions;
    let region_idx = partition % regions;
    let mut rng = partition_rng(cfg.seed, partition);
    let country = REGION_COUNTRIES[region_idx % REGION_COUNTRIES.len()];
    let devices = ["tv", "phone", "tablet", "desktop"];
    let oses = ["ios", "android", "roku", "web"];
    let cdns = ["cdn-a", "cdn-b", "cdn-c"];
    let cities = ["alpha", "beta", "gamma", "delta", "epsilon"];

    (0..cfg.sessions_per_partition)
        .map(|i| {
            let session_id = (partition * cfg.sessions_per_partition + i) as i64;
            let customer = rng.gen_range(0..cfg.customers.max(1)) as i64;
            let buffering = rng.gen_range(0..5_000i64);
            let startup = rng.gen_range(100..4_000i64);
            let bitrate = rng.gen_range(300..8_000i64);
            let play = rng.gen_range(10..7_200i64);
            let rebuffers = rng.gen_range(0..20i64);
            let errors = if rng.gen_range(0..50) == 0 { 1i64 } else { 0 };
            let bytes = bitrate * play * 125;
            let ads = rng.gen_range(0..10i64);
            let exit_early = rng.gen_bool(0.2);
            let quality = 100.0 - (buffering as f64 / 100.0) - (rebuffers as f64 * 2.0);
            row![
                session_id,
                Value::Date(BASE_DAY + day_idx as i32),
                customer,
                country,
                cities[rng.gen_range(0..cities.len())],
                devices[rng.gen_range(0..devices.len())],
                oses[rng.gen_range(0..oses.len())],
                format!("v{}.{}", rng.gen_range(1..4), rng.gen_range(0..10)),
                cdns[rng.gen_range(0..cdns.len())],
                rng.gen_bool(0.3),
                buffering,
                startup,
                bitrate,
                play,
                rebuffers,
                errors,
                bytes,
                ads,
                exit_early,
                quality
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partitions_are_clustered_by_day_and_country() {
        let cfg = WarehouseConfig::tiny();
        for p in 0..cfg.num_partitions() {
            let rows = sessions_partition(&cfg, p);
            assert_eq!(rows.len(), cfg.sessions_per_partition);
            let days: HashSet<i64> = rows.iter().map(|r| r.get_int(1).unwrap()).collect();
            let countries: HashSet<String> = rows
                .iter()
                .map(|r| r.get_str(3).unwrap().to_string())
                .collect();
            assert_eq!(days.len(), 1, "one day per partition");
            assert_eq!(countries.len(), 1, "one country per partition");
        }
    }

    #[test]
    fn schema_matches_rows_and_is_wide() {
        let cfg = WarehouseConfig::tiny();
        let rows = sessions_partition(&cfg, 0);
        assert_eq!(rows[0].len(), sessions_schema().len());
        assert!(sessions_schema().len() >= 20);
    }

    #[test]
    fn determinism() {
        let cfg = WarehouseConfig::tiny();
        assert_eq!(sessions_partition(&cfg, 3), sessions_partition(&cfg, 3));
        assert_ne!(sessions_partition(&cfg, 3), sessions_partition(&cfg, 4));
    }

    #[test]
    fn days_cover_configured_span() {
        let cfg = WarehouseConfig::tiny();
        let days: HashSet<i64> = (0..cfg.num_partitions())
            .flat_map(|p| sessions_partition(&cfg, p))
            .map(|r| r.get_int(1).unwrap())
            .collect();
        assert_eq!(days.len(), cfg.days);
    }
}
