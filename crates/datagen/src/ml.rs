//! Synthetic machine-learning datasets (§6.5).
//!
//! The paper's ML experiments use a synthetic dataset of 1 billion rows ×
//! 10 columns (100 GB): logistic regression separates two point clouds,
//! k-means clusters them. The generators below produce the same structure
//! at configurable scale: labelled points drawn from two Gaussians for
//! classification, and a mixture of `k` Gaussians for clustering. They are
//! also exposed in relational form (a `points` table) so the SQL → feature
//! extraction → iterative ML pipeline of Listing 1 can be reproduced
//! end-to-end.

use rand::Rng;
use shark_common::{DataType, Row, Schema, Value};

use crate::partition_rng;

/// Configuration for the synthetic ML dataset.
#[derive(Debug, Clone)]
pub struct MlConfig {
    /// Number of points generated.
    pub rows: usize,
    /// Dimensionality of each point (10 in the paper).
    pub dims: usize,
    /// Number of clusters for the k-means variant.
    pub clusters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlConfig {
    fn default() -> Self {
        MlConfig {
            rows: 50_000,
            dims: 10,
            clusters: 10,
            seed: 0x4D4C,
        }
    }
}

impl MlConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> MlConfig {
        MlConfig {
            rows: 2_000,
            dims: 4,
            clusters: 3,
            seed: 77,
        }
    }
}

/// A labelled point for classification (`label` is ±1).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    /// The feature vector.
    pub features: Vec<f64>,
    /// +1.0 or -1.0.
    pub label: f64,
}

impl shark_common::EstimateSize for LabeledPoint {
    fn estimated_size(&self) -> usize {
        8 + self.features.len() * 8
    }
}

/// Generate one partition of labelled points for logistic regression: two
/// Gaussian clouds separated along every dimension, labels ±1.
pub fn labeled_points_partition(
    cfg: &MlConfig,
    num_partitions: usize,
    partition: usize,
) -> Vec<LabeledPoint> {
    let mut rng = partition_rng(cfg.seed, partition);
    let per = cfg.rows / num_partitions.max(1);
    (0..per)
        .map(|_| {
            let label = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let features = (0..cfg.dims)
                .map(|_| {
                    let noise: f64 = rng.gen::<f64>() * 2.0 - 1.0;
                    label * 0.8 + noise
                })
                .collect();
            LabeledPoint { features, label }
        })
        .collect()
}

/// Generate one partition of unlabelled points drawn from `clusters`
/// well-separated Gaussians (for k-means).
pub fn cluster_points_partition(
    cfg: &MlConfig,
    num_partitions: usize,
    partition: usize,
) -> Vec<Vec<f64>> {
    let mut rng = partition_rng(cfg.seed.wrapping_add(9), partition);
    let per = cfg.rows / num_partitions.max(1);
    (0..per)
        .map(|_| {
            let c = rng.gen_range(0..cfg.clusters.max(1));
            (0..cfg.dims)
                .map(|d| {
                    let center = (c as f64 * 10.0) + d as f64;
                    center + rng.gen::<f64>() - 0.5
                })
                .collect()
        })
        .collect()
}

/// Schema of the relational form of the dataset (`label` plus `f0..f{d-1}`),
/// used by the SQL → ML pipeline example.
pub fn points_schema(dims: usize) -> Schema {
    let mut fields = vec![("label".to_string(), DataType::Float)];
    for d in 0..dims {
        fields.push((format!("f{d}"), DataType::Float));
    }
    Schema::new(
        fields
            .into_iter()
            .map(|(n, t)| shark_common::Field::new(n, t))
            .collect(),
    )
}

/// Relational form of one partition of the classification dataset.
pub fn points_table_partition(cfg: &MlConfig, num_partitions: usize, partition: usize) -> Vec<Row> {
    labeled_points_partition(cfg, num_partitions, partition)
        .into_iter()
        .map(|p| {
            let mut values = vec![Value::Float(p.label)];
            values.extend(p.features.into_iter().map(Value::Float));
            Row::new(values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_points_are_separable_on_average() {
        let cfg = MlConfig::tiny();
        let pts = labeled_points_partition(&cfg, 1, 0);
        assert_eq!(pts.len(), cfg.rows);
        let pos_mean: f64 = pts
            .iter()
            .filter(|p| p.label > 0.0)
            .map(|p| p.features[0])
            .sum::<f64>()
            / pts.iter().filter(|p| p.label > 0.0).count() as f64;
        let neg_mean: f64 = pts
            .iter()
            .filter(|p| p.label < 0.0)
            .map(|p| p.features[0])
            .sum::<f64>()
            / pts.iter().filter(|p| p.label < 0.0).count() as f64;
        assert!(pos_mean > 0.0 && neg_mean < 0.0, "{pos_mean} {neg_mean}");
    }

    #[test]
    fn cluster_points_have_k_modes() {
        let cfg = MlConfig::tiny();
        let pts = cluster_points_partition(&cfg, 2, 0);
        assert!(!pts.is_empty());
        assert_eq!(pts[0].len(), cfg.dims);
        // First coordinate clusters near multiples of 10.
        let near_mode = pts
            .iter()
            .filter(|p| (p[0] / 10.0).fract().abs() < 0.2 || (p[0] / 10.0).fract().abs() > 0.8)
            .count();
        assert!(near_mode as f64 / pts.len() as f64 > 0.5);
    }

    #[test]
    fn relational_form_matches_schema() {
        let cfg = MlConfig::tiny();
        let rows = points_table_partition(&cfg, 4, 1);
        let schema = points_schema(cfg.dims);
        assert_eq!(rows[0].len(), schema.len());
        assert_eq!(schema.field(0).name, "label");
        assert_eq!(schema.field(1).name, "f0");
    }

    #[test]
    fn determinism() {
        let cfg = MlConfig::tiny();
        assert_eq!(
            labeled_points_partition(&cfg, 4, 2),
            labeled_points_partition(&cfg, 4, 2)
        );
        assert_eq!(
            cluster_points_partition(&cfg, 4, 2),
            cluster_points_partition(&cfg, 4, 2)
        );
    }
}
