//! The Pavlo et al. benchmark tables (§6.2).
//!
//! * `rankings(pageURL STRING, pageRank INT, avgDuration INT)` — 1 GB/node
//!   in the paper (1.8 billion rows at 100 nodes).
//! * `uservisits(sourceIP STRING, destURL STRING, visitDate DATE,
//!   adRevenue DOUBLE, userAgent STRING, countryCode STRING, languageCode
//!   STRING, searchWord STRING, duration INT)` — 20 GB/node (15.5 billion
//!   rows at 100 nodes).
//!
//! The generator preserves the properties the queries rely on: `pageRank`
//! follows a skewed distribution so the selection predicate
//! `pageRank > 300` is selective; `sourceIP` has ~2.5 M distinct values at
//! paper scale (scaled down proportionally here) so the two aggregation
//! queries produce "many groups" vs. "few groups" (via the 7-character
//! prefix); `destURL` references `pageURL` so the join has matches; and
//! `visitDate` spans one year so the join query's date filter is selective.

use rand::Rng;
use shark_common::{row, DataType, Row, Schema, Value};

use crate::partition_rng;

/// Configuration of the scaled-down Pavlo dataset.
#[derive(Debug, Clone)]
pub struct PavloConfig {
    /// Rows of the `rankings` table actually generated.
    pub rankings_rows: usize,
    /// Rows of the `uservisits` table actually generated.
    pub uservisits_rows: usize,
    /// Number of distinct source IPs (drives the group count of the first
    /// aggregation query).
    pub distinct_source_ips: usize,
    /// Dataset RNG seed.
    pub seed: u64,
}

impl Default for PavloConfig {
    fn default() -> Self {
        PavloConfig {
            rankings_rows: 20_000,
            uservisits_rows: 60_000,
            distinct_source_ips: 5_000,
            seed: 0x5A5A,
        }
    }
}

impl PavloConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> PavloConfig {
        PavloConfig {
            rankings_rows: 2_000,
            uservisits_rows: 6_000,
            distinct_source_ips: 500,
            seed: 7,
        }
    }
}

/// Schema of the `rankings` table.
pub fn rankings_schema() -> Schema {
    Schema::from_pairs(&[
        ("pageurl", DataType::Str),
        ("pagerank", DataType::Int),
        ("avgduration", DataType::Int),
    ])
}

/// Schema of the `uservisits` table.
pub fn uservisits_schema() -> Schema {
    Schema::from_pairs(&[
        ("sourceip", DataType::Str),
        ("desturl", DataType::Str),
        ("visitdate", DataType::Date),
        ("adrevenue", DataType::Float),
        ("useragent", DataType::Str),
        ("countrycode", DataType::Str),
        ("languagecode", DataType::Str),
        ("searchword", DataType::Str),
        ("duration", DataType::Int),
    ])
}

/// The URL for page `i` (shared by `rankings.pageURL` and
/// `uservisits.destURL` so the join has matches).
fn page_url(i: usize) -> String {
    format!("http://example.com/page{i}")
}

/// A source IP with `distinct` possible values.
fn source_ip(i: usize, distinct: usize) -> String {
    let v = i % distinct.max(1);
    format!(
        "{}.{}.{}.{}",
        (10 + (v >> 24)) & 0xFF,
        (v >> 16) & 0xFF,
        (v >> 8) & 0xFF,
        v & 0xFF
    )
}

/// Generate partition `partition` of `num_partitions` of the `rankings` table.
pub fn rankings_partition(cfg: &PavloConfig, num_partitions: usize, partition: usize) -> Vec<Row> {
    let mut rng = partition_rng(cfg.seed, partition);
    let per = cfg.rankings_rows / num_partitions.max(1);
    let start = partition * per;
    (0..per)
        .map(|i| {
            let page = start + i;
            // Zipf-ish page rank: most pages have low rank, few have high.
            let r: f64 = rng.gen::<f64>();
            let rank = (1000.0 * r * r * r) as i64;
            let duration = rng.gen_range(1..120i64);
            row![page_url(page), rank, duration]
        })
        .collect()
}

/// Generate partition `partition` of `num_partitions` of the `uservisits`
/// table.
pub fn uservisits_partition(
    cfg: &PavloConfig,
    num_partitions: usize,
    partition: usize,
) -> Vec<Row> {
    let mut rng = partition_rng(cfg.seed.wrapping_add(1), partition);
    let per = cfg.uservisits_rows / num_partitions.max(1);
    let countries = ["US", "GB", "DE", "FR", "JP", "BR", "IN", "CN", "RU", "AU"];
    let agents = ["Mozilla", "Chrome", "Safari", "Opera"];
    let words = ["shark", "spark", "hive", "hadoop", "sql"];
    (0..per)
        .map(|_| {
            let ip_idx: usize = rng.gen_range(0..cfg.distinct_source_ips.max(1));
            let page: usize = rng.gen_range(0..cfg.rankings_rows.max(1));
            // visitDate: days since epoch in the year 2000 (the join query
            // filters BETWEEN 2000-01-15 AND 2000-01-22).
            let date = 10_957 + rng.gen_range(0..365i32);
            let revenue: f64 = rng.gen::<f64>() * 100.0;
            let country = countries[rng.gen_range(0..countries.len())];
            let agent = agents[rng.gen_range(0..agents.len())];
            let word = words[rng.gen_range(0..words.len())];
            let duration = rng.gen_range(1..600i64);
            row![
                source_ip(ip_idx, cfg.distinct_source_ips),
                page_url(page),
                Value::Date(date),
                revenue,
                agent,
                country,
                format!("{}-{}", country.to_lowercase(), "std"),
                word,
                duration
            ]
        })
        .collect()
}

/// Day-number (days since the Unix epoch) of 2000-01-01, used to express the
/// paper's join-query date filter.
pub const DATE_2000_01_01: i32 = 10_957;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rankings_match_schema_and_are_deterministic() {
        let cfg = PavloConfig::tiny();
        let a = rankings_partition(&cfg, 4, 2);
        let b = rankings_partition(&cfg, 4, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.rankings_rows / 4);
        let schema = rankings_schema();
        assert_eq!(a[0].len(), schema.len());
        assert!(a.iter().all(|r| r.get_int(1).unwrap() >= 0));
    }

    #[test]
    fn pagerank_predicate_is_selective() {
        let cfg = PavloConfig::tiny();
        let rows: Vec<Row> = (0..4)
            .flat_map(|p| rankings_partition(&cfg, 4, p))
            .collect();
        let selective =
            rows.iter().filter(|r| r.get_int(1).unwrap() > 300).count() as f64 / rows.len() as f64;
        assert!(
            selective > 0.01 && selective < 0.5,
            "pageRank > 300 selects {selective}"
        );
    }

    #[test]
    fn uservisits_reference_existing_pages_and_dates_span_a_year() {
        let cfg = PavloConfig::tiny();
        let visits = uservisits_partition(&cfg, 4, 0);
        assert_eq!(visits[0].len(), uservisits_schema().len());
        let pages: HashSet<String> = (0..4)
            .flat_map(|p| rankings_partition(&cfg, 4, p))
            .map(|r| r.get_str(0).unwrap().to_string())
            .collect();
        let hits = visits
            .iter()
            .filter(|v| pages.contains(v.get_str(1).unwrap().as_ref()))
            .count();
        assert!(hits > 0, "destURL should reference rankings pages");
        for v in &visits {
            let d = v.get_int(2).unwrap() as i32;
            assert!((DATE_2000_01_01..DATE_2000_01_01 + 365).contains(&d));
        }
    }

    #[test]
    fn source_ip_cardinality_is_bounded() {
        let cfg = PavloConfig::tiny();
        let ips: HashSet<String> = (0..4)
            .flat_map(|p| uservisits_partition(&cfg, 4, p))
            .map(|r| r.get_str(0).unwrap().to_string())
            .collect();
        assert!(ips.len() <= cfg.distinct_source_ips);
        assert!(ips.len() > cfg.distinct_source_ips / 4);
    }
}
