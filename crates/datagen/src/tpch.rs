//! TPC-H-like tables (§6.3 micro-benchmarks).
//!
//! The aggregation micro-benchmark (Figure 7) groups `lineitem` by columns
//! of very different cardinalities (SHIPMODE: 7 groups, RECEIPTDATE: ~2500
//! groups, ORDERKEY-like: hundreds of millions at paper scale). The join
//! micro-benchmark (Figure 8) joins `lineitem` with `supplier` under a
//! selective UDF on the supplier address. This module generates scaled-down
//! tables preserving those cardinality relationships.

use rand::Rng;
use shark_common::{row, DataType, Row, Schema, Value};

use crate::partition_rng;

/// Configuration of the scaled-down TPC-H-like dataset.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Rows of `lineitem` actually generated.
    pub lineitem_rows: usize,
    /// Rows of `supplier` actually generated.
    pub supplier_rows: usize,
    /// Rows of `orders` actually generated.
    pub orders_rows: usize,
    /// Number of distinct receipt dates (~2500 in the paper's query).
    pub receipt_dates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            lineitem_rows: 60_000,
            supplier_rows: 2_000,
            orders_rows: 15_000,
            receipt_dates: 2_500,
            seed: 0x7C,
        }
    }
}

impl TpchConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> TpchConfig {
        TpchConfig {
            lineitem_rows: 4_000,
            supplier_rows: 200,
            orders_rows: 1_000,
            receipt_dates: 250,
            seed: 3,
        }
    }
}

/// The seven TPC-H ship modes (the "7 groups" aggregation).
pub const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];

/// Schema of the `lineitem` table (subset of TPC-H columns used by the
/// paper's queries).
pub fn lineitem_schema() -> Schema {
    Schema::from_pairs(&[
        ("l_orderkey", DataType::Int),
        ("l_partkey", DataType::Int),
        ("l_suppkey", DataType::Int),
        ("l_quantity", DataType::Float),
        ("l_extendedprice", DataType::Float),
        ("l_shipmode", DataType::Str),
        ("l_receiptdate", DataType::Date),
        ("l_shipdate", DataType::Date),
    ])
}

/// Schema of the `supplier` table.
pub fn supplier_schema() -> Schema {
    Schema::from_pairs(&[
        ("s_suppkey", DataType::Int),
        ("s_name", DataType::Str),
        ("s_address", DataType::Str),
        ("s_nationkey", DataType::Int),
        ("s_acctbal", DataType::Float),
    ])
}

/// Schema of the `orders` table.
pub fn orders_schema() -> Schema {
    Schema::from_pairs(&[
        ("o_orderkey", DataType::Int),
        ("o_custkey", DataType::Int),
        ("o_totalprice", DataType::Float),
        ("o_orderdate", DataType::Date),
    ])
}

/// Generate one partition of `lineitem`.
pub fn lineitem_partition(cfg: &TpchConfig, num_partitions: usize, partition: usize) -> Vec<Row> {
    let mut rng = partition_rng(cfg.seed, partition);
    let per = cfg.lineitem_rows / num_partitions.max(1);
    let start = partition * per;
    (0..per)
        .map(|i| {
            let key = (start + i) as i64;
            let orderkey = key / 4; // ~4 line items per order
            let suppkey = rng.gen_range(0..cfg.supplier_rows.max(1)) as i64;
            let quantity = rng.gen_range(1..51) as f64;
            let price = quantity * rng.gen_range(900.0..1100.0);
            let mode = SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())];
            let receipt = 9_000 + rng.gen_range(0..cfg.receipt_dates.max(1)) as i32;
            let ship = receipt - rng.gen_range(1..30);
            row![
                orderkey,
                key % 10_000,
                suppkey,
                quantity,
                price,
                mode,
                Value::Date(receipt),
                Value::Date(ship)
            ]
        })
        .collect()
}

/// Generate one partition of `supplier`. A small, configurable fraction of
/// suppliers carry the "SPECIAL" marker in their address, which the
/// Figure 8 UDF selects.
pub fn supplier_partition(cfg: &TpchConfig, num_partitions: usize, partition: usize) -> Vec<Row> {
    let mut rng = partition_rng(cfg.seed.wrapping_add(2), partition);
    let per = cfg.supplier_rows / num_partitions.max(1);
    let start = partition * per;
    (0..per)
        .map(|i| {
            let key = (start + i) as i64;
            // 1 in 1000 suppliers is "of interest" (paper: 1000 of 10M).
            let special = rng.gen_range(0..1000) == 0;
            let address = if special {
                format!("{key} SPECIAL interest street")
            } else {
                format!("{key} ordinary avenue")
            };
            row![
                key,
                format!("Supplier#{key:09}"),
                address,
                rng.gen_range(0..25i64),
                rng.gen_range(-999.0..9999.0f64)
            ]
        })
        .collect()
}

/// Generate one partition of `orders`.
pub fn orders_partition(cfg: &TpchConfig, num_partitions: usize, partition: usize) -> Vec<Row> {
    let mut rng = partition_rng(cfg.seed.wrapping_add(3), partition);
    let per = cfg.orders_rows / num_partitions.max(1);
    let start = partition * per;
    (0..per)
        .map(|i| {
            let key = (start + i) as i64;
            row![
                key,
                rng.gen_range(0..cfg.orders_rows.max(1) as i64 / 2 + 1),
                rng.gen_range(1000.0..500_000.0f64),
                Value::Date(9_000 + rng.gen_range(0..2_400i32))
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lineitem_shape_and_determinism() {
        let cfg = TpchConfig::tiny();
        let a = lineitem_partition(&cfg, 8, 3);
        assert_eq!(a, lineitem_partition(&cfg, 8, 3));
        assert_eq!(a.len(), cfg.lineitem_rows / 8);
        assert_eq!(a[0].len(), lineitem_schema().len());
        let modes: HashSet<String> = a
            .iter()
            .map(|r| r.get_str(5).unwrap().to_string())
            .collect();
        assert!(modes.len() <= 7);
        assert!(modes.len() >= 3);
    }

    #[test]
    fn receiptdate_cardinality_matches_config() {
        let cfg = TpchConfig::tiny();
        let dates: HashSet<i64> = (0..8)
            .flat_map(|p| lineitem_partition(&cfg, 8, p))
            .map(|r| r.get_int(6).unwrap())
            .collect();
        assert!(dates.len() <= cfg.receipt_dates);
        assert!(dates.len() > cfg.receipt_dates / 3);
    }

    #[test]
    fn special_suppliers_are_rare_but_present_at_scale() {
        let cfg = TpchConfig {
            supplier_rows: 20_000,
            ..TpchConfig::default()
        };
        let special = (0..10)
            .flat_map(|p| supplier_partition(&cfg, 10, p))
            .filter(|r| r.get_str(2).unwrap().contains("SPECIAL"))
            .count();
        let frac = special as f64 / cfg.supplier_rows as f64;
        assert!(frac < 0.01, "special fraction {frac}");
        assert!(special > 0);
    }

    #[test]
    fn lineitem_suppkeys_reference_suppliers() {
        let cfg = TpchConfig::tiny();
        let suppliers: HashSet<i64> = (0..4)
            .flat_map(|p| supplier_partition(&cfg, 4, p))
            .map(|r| r.get_int(0).unwrap())
            .collect();
        let rows = lineitem_partition(&cfg, 4, 0);
        let hit = rows
            .iter()
            .filter(|r| suppliers.contains(&r.get_int(2).unwrap()))
            .count();
        assert!(hit as f64 / rows.len() as f64 > 0.9);
    }

    #[test]
    fn orders_shape() {
        let cfg = TpchConfig::tiny();
        let o = orders_partition(&cfg, 4, 1);
        assert_eq!(o.len(), cfg.orders_rows / 4);
        assert_eq!(o[0].len(), orders_schema().len());
    }
}
