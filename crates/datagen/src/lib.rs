//! # shark-datagen
//!
//! Deterministic synthetic workload generators reproducing the four datasets
//! of the paper's evaluation (§6):
//!
//! 1. [`pavlo`] — the Pavlo et al. benchmark tables `rankings` and
//!    `uservisits` (selection, aggregation and join queries of §6.2).
//! 2. [`tpch`] — a TPC-H-like subset (`lineitem`, `orders`, `supplier`) used
//!    by the aggregation and join-selection micro-benchmarks (§6.3).
//! 3. [`warehouse`] — a video-analytics session fact table with the natural
//!    time/geography clustering that makes map pruning effective (§6.4,
//!    §3.5).
//! 4. [`ml`] — the synthetic 10-dimensional dataset used for the logistic
//!    regression and k-means experiments (§6.5).
//!
//! All generators are deterministic functions of `(seed, partition)` so that
//! regenerating a partition after a simulated node failure yields identical
//! data — the property lineage-based recovery relies on (§2.2, footnote 2).

pub mod ml;
pub mod pavlo;
pub mod tpch;
pub mod warehouse;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a per-partition RNG from a dataset seed and partition index.
/// Deterministic: the same `(seed, partition)` always yields the same stream.
pub fn partition_rng(seed: u64, partition: usize) -> StdRng {
    // SplitMix64-style mixing of the partition into the seed.
    let mut z = seed ^ (partition as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn partition_rng_is_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = partition_rng(42, 3);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = partition_rng(42, 3);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = partition_rng(42, 4);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }
}
