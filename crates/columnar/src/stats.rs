//! Per-partition column statistics for map pruning (§3.5).
//!
//! While a loading task converts rows to columnar form it piggybacks the
//! collection of per-column statistics: the value range of every column and,
//! for low-cardinality ("enum") columns, the set of distinct values. The
//! master keeps these statistics in memory; at query time, predicates are
//! evaluated against them and partitions whose statistics cannot satisfy the
//! predicate are never scanned.

use std::collections::BTreeSet;

use shark_common::{Row, Schema, Value};

/// Maximum number of distinct values tracked per column before the distinct
/// set is dropped (the paper keeps it only for enum-like columns).
pub const MAX_DISTINCT_TRACKED: usize = 64;

/// Statistics for one column of one partition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Minimum non-null value, if any non-null value exists.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Distinct non-null values if their count stayed under
    /// [`MAX_DISTINCT_TRACKED`], otherwise `None`.
    pub distinct: Option<Vec<Value>>,
    /// Number of NULLs observed.
    pub null_count: u64,
    /// Total rows observed.
    pub row_count: u64,
}

impl ColumnStats {
    /// Build statistics from a column of values.
    pub fn from_values(values: &[Value]) -> ColumnStats {
        let mut stats = ColumnStats {
            row_count: values.len() as u64,
            ..ColumnStats::default()
        };
        let mut distinct: BTreeSet<Value> = BTreeSet::new();
        let mut track_distinct = true;
        for v in values {
            if v.is_null() {
                stats.null_count += 1;
                continue;
            }
            match &stats.min {
                Some(m) if v >= m => {}
                _ => stats.min = Some(v.clone()),
            }
            match &stats.max {
                Some(m) if v <= m => {}
                _ => stats.max = Some(v.clone()),
            }
            if track_distinct {
                distinct.insert(v.clone());
                if distinct.len() > MAX_DISTINCT_TRACKED {
                    track_distinct = false;
                    distinct.clear();
                }
            }
        }
        if track_distinct {
            stats.distinct = Some(distinct.into_iter().collect());
        }
        stats
    }

    /// Whether some row in the partition **might** equal `v`. `false` means
    /// the partition can be pruned for an equality predicate on this column.
    pub fn might_equal(&self, v: &Value) -> bool {
        if v.is_null() {
            return self.null_count > 0;
        }
        if let Some(distinct) = &self.distinct {
            return distinct.iter().any(|d| d == v);
        }
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => v >= min && v <= max,
            _ => false,
        }
    }

    /// Whether some row **might** fall within `[low, high]` (either bound
    /// optional). `false` means the partition can be pruned for a range
    /// predicate.
    pub fn might_overlap(&self, low: Option<&Value>, high: Option<&Value>) -> bool {
        let (min, max) = match (&self.min, &self.max) {
            (Some(min), Some(max)) => (min, max),
            _ => return self.null_count < self.row_count, // no stats: cannot prune
        };
        if let Some(low) = low {
            if max < low {
                return false;
            }
        }
        if let Some(high) = high {
            if min > high {
                return false;
            }
        }
        true
    }

    /// Whether every row of the column is NULL.
    pub fn all_null(&self) -> bool {
        self.null_count == self.row_count && self.row_count > 0
    }
}

/// Statistics for every column of one partition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionStats {
    /// Per-column statistics, aligned with the schema.
    pub columns: Vec<ColumnStats>,
    /// Number of rows in the partition.
    pub num_rows: u64,
}

impl PartitionStats {
    /// Collect statistics for all columns of a row-oriented partition.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> PartitionStats {
        let mut columns = Vec::with_capacity(schema.len());
        for c in 0..schema.len() {
            let values: Vec<Value> = rows.iter().map(|r| r.get(c).clone()).collect();
            columns.push(ColumnStats::from_values(&values));
        }
        PartitionStats {
            columns,
            num_rows: rows.len() as u64,
        }
    }

    /// Statistics for one column.
    pub fn column(&self, i: usize) -> &ColumnStats {
        &self.columns[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("ts", DataType::Int),
            ("country", DataType::Str),
            ("score", DataType::Float),
        ])
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            row![100i64, "US", 1.5f64],
            row![150i64, "US", 2.5f64],
            row![200i64, "FR", Value::Null],
        ]
    }

    #[test]
    fn min_max_and_distinct_collected() {
        let stats = PartitionStats::from_rows(&schema(), &sample_rows());
        assert_eq!(stats.num_rows, 3);
        let ts = stats.column(0);
        assert_eq!(ts.min, Some(Value::Int(100)));
        assert_eq!(ts.max, Some(Value::Int(200)));
        let country = stats.column(1);
        assert_eq!(
            country.distinct.as_ref().map(|d| d.len()),
            Some(2),
            "distinct countries"
        );
        let score = stats.column(2);
        assert_eq!(score.null_count, 1);
    }

    #[test]
    fn equality_pruning() {
        let stats = PartitionStats::from_rows(&schema(), &sample_rows());
        let country = stats.column(1);
        assert!(country.might_equal(&Value::str("US")));
        assert!(!country.might_equal(&Value::str("JP")));
        let ts = stats.column(0);
        assert!(ts.might_equal(&Value::Int(150)));
        assert!(!ts.might_equal(&Value::Int(500)));
    }

    #[test]
    fn range_pruning() {
        let stats = PartitionStats::from_rows(&schema(), &sample_rows());
        let ts = stats.column(0);
        assert!(ts.might_overlap(Some(&Value::Int(150)), Some(&Value::Int(300))));
        assert!(!ts.might_overlap(Some(&Value::Int(201)), None));
        assert!(!ts.might_overlap(None, Some(&Value::Int(99))));
        assert!(ts.might_overlap(None, None));
    }

    #[test]
    fn nulls_and_empty_columns() {
        let stats = ColumnStats::from_values(&[Value::Null, Value::Null]);
        assert!(stats.all_null());
        assert!(stats.might_equal(&Value::Null));
        assert!(!stats.might_equal(&Value::Int(1)));
        assert!(!stats.might_overlap(Some(&Value::Int(0)), None));

        let empty = ColumnStats::from_values(&[]);
        assert!(!empty.all_null());
        assert!(!empty.might_equal(&Value::Int(0)));
    }

    #[test]
    fn high_cardinality_drops_distinct_but_keeps_range() {
        let values: Vec<Value> = (0..1000).map(Value::Int).collect();
        let stats = ColumnStats::from_values(&values);
        assert!(stats.distinct.is_none());
        assert_eq!(stats.min, Some(Value::Int(0)));
        assert_eq!(stats.max, Some(Value::Int(999)));
        // Falls back to range checks for equality.
        assert!(stats.might_equal(&Value::Int(500)));
        assert!(!stats.might_equal(&Value::Int(5000)));
    }
}
