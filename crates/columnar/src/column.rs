//! Physical column encodings.
//!
//! Each cached partition stores every column as one [`EncodedColumn`]:
//! a single contiguous allocation (the paper's "each column creates only one
//! JVM object" observation translated to Rust), optionally compressed with
//! the cheap, CPU-friendly schemes of §3.2: run-length encoding, dictionary
//! encoding and bit packing.

use std::sync::Arc;

use shark_common::{DataType, Value};

/// Null sentinel handling: columns keep an optional validity mask; a `None`
/// mask means the column contains no NULLs.
pub type NullMask = Option<Vec<bool>>;

fn is_null(mask: &NullMask, i: usize) -> bool {
    mask.as_ref().map(|m| !m[i]).unwrap_or(false)
}

fn mask_bytes(mask: &NullMask) -> usize {
    mask.as_ref().map(|m| m.len()).unwrap_or(0)
}

/// A physically encoded column of one partition.
///
/// Integer and date columns share the integer encodings; the logical type is
/// carried by the enclosing partition's schema and re-applied on decode.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedColumn {
    /// Uncompressed 64-bit integers (also used for dates).
    IntPlain { values: Vec<i64>, nulls: NullMask },
    /// Run-length encoded integers: `(value, run_length)` pairs.
    IntRle {
        runs: Vec<(i64, u32)>,
        len: usize,
        nulls: NullMask,
    },
    /// Frame-of-reference bit packing: `value = min + unpack(bits)`.
    IntBitPacked {
        min: i64,
        bits: u8,
        len: usize,
        words: Vec<u64>,
        nulls: NullMask,
    },
    /// Uncompressed 64-bit floats.
    FloatPlain { values: Vec<f64>, nulls: NullMask },
    /// Booleans packed one bit per value.
    BoolPacked {
        len: usize,
        words: Vec<u64>,
        nulls: NullMask,
    },
    /// Uncompressed strings.
    StrPlain {
        values: Vec<Arc<str>>,
        nulls: NullMask,
    },
    /// Dictionary-encoded strings: distinct values plus per-row codes.
    StrDict {
        dict: Vec<Arc<str>>,
        codes: Vec<u32>,
        nulls: NullMask,
    },
    /// Run-length encoded strings.
    StrRle {
        runs: Vec<(Arc<str>, u32)>,
        len: usize,
        nulls: NullMask,
    },
    /// A column consisting only of NULLs.
    AllNull { len: usize },
}

impl EncodedColumn {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::IntPlain { values, .. } => values.len(),
            EncodedColumn::IntRle { len, .. } => *len,
            EncodedColumn::IntBitPacked { len, .. } => *len,
            EncodedColumn::FloatPlain { values, .. } => values.len(),
            EncodedColumn::BoolPacked { len, .. } => *len,
            EncodedColumn::StrPlain { values, .. } => values.len(),
            EncodedColumn::StrDict { codes, .. } => codes.len(),
            EncodedColumn::StrRle { len, .. } => *len,
            EncodedColumn::AllNull { len } => *len,
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint of the encoded column in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            EncodedColumn::IntPlain { values, nulls } => values.len() * 8 + mask_bytes(nulls),
            EncodedColumn::IntRle { runs, nulls, .. } => runs.len() * 12 + mask_bytes(nulls),
            EncodedColumn::IntBitPacked { words, nulls, .. } => {
                16 + words.len() * 8 + mask_bytes(nulls)
            }
            EncodedColumn::FloatPlain { values, nulls } => values.len() * 8 + mask_bytes(nulls),
            EncodedColumn::BoolPacked { words, nulls, .. } => words.len() * 8 + mask_bytes(nulls),
            EncodedColumn::StrPlain { values, nulls } => {
                values.iter().map(|s| s.len() + 16).sum::<usize>() + mask_bytes(nulls)
            }
            EncodedColumn::StrDict { dict, codes, nulls } => {
                dict.iter().map(|s| s.len() + 16).sum::<usize>()
                    + codes.len() * 4
                    + mask_bytes(nulls)
            }
            EncodedColumn::StrRle { runs, nulls, .. } => {
                runs.iter().map(|(s, _)| s.len() + 20).sum::<usize>() + mask_bytes(nulls)
            }
            EncodedColumn::AllNull { .. } => 8,
        }
    }

    /// Decode the whole column back to values, applying the logical type.
    pub fn decode(&self, data_type: DataType) -> Vec<Value> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.value_at(i, data_type));
        }
        out
    }

    /// Random access to one value (linear in run count for RLE columns).
    pub fn value_at(&self, i: usize, data_type: DataType) -> Value {
        let make_int = |v: i64| -> Value {
            if data_type == DataType::Date {
                Value::Date(v as i32)
            } else {
                Value::Int(v)
            }
        };
        match self {
            EncodedColumn::AllNull { .. } => Value::Null,
            EncodedColumn::IntPlain { values, nulls } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    make_int(values[i])
                }
            }
            EncodedColumn::IntRle { runs, nulls, .. } => {
                if is_null(nulls, i) {
                    return Value::Null;
                }
                let mut remaining = i;
                for (v, run) in runs {
                    if remaining < *run as usize {
                        return make_int(*v);
                    }
                    remaining -= *run as usize;
                }
                Value::Null
            }
            EncodedColumn::IntBitPacked {
                min,
                bits,
                words,
                nulls,
                ..
            } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    make_int(min + unpack_bits(words, *bits, i) as i64)
                }
            }
            EncodedColumn::FloatPlain { values, nulls } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    Value::Float(values[i])
                }
            }
            EncodedColumn::BoolPacked { words, nulls, .. } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    Value::Bool(words[i / 64] >> (i % 64) & 1 == 1)
                }
            }
            EncodedColumn::StrPlain { values, nulls } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    Value::Str(values[i].clone())
                }
            }
            EncodedColumn::StrDict { dict, codes, nulls } => {
                if is_null(nulls, i) {
                    Value::Null
                } else {
                    Value::Str(dict[codes[i] as usize].clone())
                }
            }
            EncodedColumn::StrRle { runs, nulls, .. } => {
                if is_null(nulls, i) {
                    return Value::Null;
                }
                let mut remaining = i;
                for (v, run) in runs {
                    if remaining < *run as usize {
                        return Value::Str(v.clone());
                    }
                    remaining -= *run as usize;
                }
                Value::Null
            }
        }
    }
}

/// Pack unsigned deltas into `bits`-wide slots inside `u64` words.
pub(crate) fn pack_bits(deltas: &[u64], bits: u8) -> Vec<u64> {
    if bits == 0 {
        return Vec::new();
    }
    let bits = bits as usize;
    let total_bits = deltas.len() * bits;
    let mut words = vec![0u64; total_bits.div_ceil(64)];
    for (i, &d) in deltas.iter().enumerate() {
        let bit_pos = i * bits;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        words[word] |= d << offset;
        if offset + bits > 64 {
            words[word + 1] |= d >> (64 - offset);
        }
    }
    words
}

/// Extract the `i`-th `bits`-wide slot.
pub(crate) fn unpack_bits(words: &[u64], bits: u8, i: usize) -> u64 {
    if bits == 0 {
        return 0;
    }
    let bitsz = bits as usize;
    let bit_pos = i * bitsz;
    let word = bit_pos / 64;
    let offset = bit_pos % 64;
    let mask = if bitsz == 64 {
        u64::MAX
    } else {
        (1u64 << bitsz) - 1
    };
    let mut v = words[word] >> offset;
    if offset + bitsz > 64 {
        v |= words[word + 1] << (64 - offset);
    }
    v & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_packing_roundtrip() {
        let deltas: Vec<u64> = (0..1000).map(|i| (i * 37) % 1000).collect();
        for bits in [10u8, 13, 32, 63] {
            let words = pack_bits(&deltas, bits);
            for (i, &d) in deltas.iter().enumerate() {
                assert_eq!(unpack_bits(&words, bits, i), d, "bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn int_plain_and_rle_decode() {
        let plain = EncodedColumn::IntPlain {
            values: vec![5, 5, 7],
            nulls: None,
        };
        assert_eq!(
            plain.decode(DataType::Int),
            vec![Value::Int(5), Value::Int(5), Value::Int(7)]
        );
        let rle = EncodedColumn::IntRle {
            runs: vec![(5, 2), (7, 1)],
            len: 3,
            nulls: None,
        };
        assert_eq!(rle.decode(DataType::Int), plain.decode(DataType::Int));
        assert!(rle.memory_bytes() <= plain.memory_bytes() + 8);
    }

    #[test]
    fn date_type_is_restored_on_decode() {
        let col = EncodedColumn::IntPlain {
            values: vec![100, 200],
            nulls: None,
        };
        assert_eq!(
            col.decode(DataType::Date),
            vec![Value::Date(100), Value::Date(200)]
        );
    }

    #[test]
    fn null_mask_respected() {
        let col = EncodedColumn::IntPlain {
            values: vec![1, 0, 3],
            nulls: Some(vec![true, false, true]),
        };
        assert_eq!(
            col.decode(DataType::Int),
            vec![Value::Int(1), Value::Null, Value::Int(3)]
        );
        let all = EncodedColumn::AllNull { len: 2 };
        assert_eq!(all.decode(DataType::Str), vec![Value::Null, Value::Null]);
    }

    #[test]
    fn bool_packed_roundtrip() {
        let bools: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let mut words = vec![0u64; 130usize.div_ceil(64)];
        for (i, &b) in bools.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        let col = EncodedColumn::BoolPacked {
            len: bools.len(),
            words,
            nulls: None,
        };
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(col.value_at(i, DataType::Bool), Value::Bool(b));
        }
    }

    #[test]
    fn string_dict_and_rle_decode() {
        let dict = vec![Arc::from("air"), Arc::from("ship")];
        let col = EncodedColumn::StrDict {
            dict,
            codes: vec![0, 1, 1, 0],
            nulls: None,
        };
        let decoded = col.decode(DataType::Str);
        assert_eq!(decoded[1], Value::str("ship"));
        assert_eq!(decoded[3], Value::str("air"));

        let rle = EncodedColumn::StrRle {
            runs: vec![(Arc::from("a"), 3), (Arc::from("b"), 1)],
            len: 4,
            nulls: None,
        };
        assert_eq!(rle.value_at(2, DataType::Str), Value::str("a"));
        assert_eq!(rle.value_at(3, DataType::Str), Value::str("b"));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(EncodedColumn::AllNull { len: 5 }.len(), 5);
        assert!(EncodedColumn::IntPlain {
            values: vec![],
            nulls: None
        }
        .is_empty());
    }
}
