//! Memory-footprint models for the storage-format comparison of §3.2.
//!
//! The paper motivates the columnar memstore by comparing three ways of
//! holding the same partition in memory:
//!
//! 1. **Deserialized row objects** (Spark's default cache): every value is a
//!    heap object with 12–16 bytes of header plus alignment, and every row is
//!    an object array of pointers — ~3× larger than the serialized form and
//!    hard on the garbage collector (e.g. 270 MB of TPC-H `lineitem` became
//!    971 MB of JVM objects).
//! 2. **Serialized rows**: compact but must be deserialized at ~200 MB/s/core
//!    before the query processor can use them.
//! 3. **Columnar arrays** (Shark): one allocation per column, optionally
//!    compressed.
//!
//! These functions compute the modelled footprint of (1) and (2) for a
//! row-oriented partition so experiments and benches can report the same
//! ratios the paper does.

use shark_common::{EstimateSize, Row, Value};

/// Per-object header overhead charged by the managed-runtime model (bytes).
pub const OBJECT_HEADER_BYTES: usize = 16;
/// Size of an object reference (pointer) in the managed-runtime model.
pub const OBJECT_POINTER_BYTES: usize = 8;

/// Modelled footprint of one value stored as a boxed heap object.
fn object_value_bytes(v: &Value) -> usize {
    let payload = match v {
        Value::Null => 0,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Bool(_) => 1,
        Value::Date(_) => 4,
        // Strings: char payload + the string object's own header and fields.
        Value::Str(s) => s.len() + OBJECT_HEADER_BYTES,
    };
    // Object header + payload, rounded up to 8-byte alignment.
    let raw = OBJECT_HEADER_BYTES + payload;
    raw.div_ceil(8) * 8
}

/// Modelled memory footprint of a partition cached as deserialized row
/// objects (option 1 above).
pub fn object_store_bytes(rows: &[Row]) -> usize {
    rows.iter()
        .map(|r| {
            // The row itself: header + one pointer per field.
            let row_obj = OBJECT_HEADER_BYTES + r.len() * OBJECT_POINTER_BYTES;
            row_obj + r.values().iter().map(object_value_bytes).sum::<usize>()
        })
        .sum()
}

/// Modelled number of heap objects the deserialized representation creates
/// (drives the GC-pressure argument: GC time grows with object count).
pub fn object_store_object_count(rows: &[Row]) -> usize {
    rows.iter().map(|r| 1 + r.len()).sum()
}

/// Footprint of the compact serialized representation (option 2 above).
pub fn serialized_bytes(rows: &[Row]) -> usize {
    rows.iter().map(|r| r.estimated_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::ColumnarPartition;
    use shark_common::{row, DataType, Schema};

    fn lineitem_like(n: usize) -> (Schema, Vec<Row>) {
        let schema = Schema::from_pairs(&[
            ("l_orderkey", DataType::Int),
            ("l_quantity", DataType::Float),
            ("l_shipmode", DataType::Str),
            ("l_shipdate", DataType::Date),
        ]);
        let modes = ["AIR", "SHIP", "TRUCK", "RAIL", "MAIL", "FOB", "REG"];
        let rows = (0..n)
            .map(|i| {
                row![
                    i as i64,
                    (i % 50) as f64,
                    modes[i % modes.len()],
                    Value::Date(8000 + (i / 100) as i32)
                ]
            })
            .collect();
        (schema, rows)
    }

    #[test]
    fn object_store_is_about_three_times_serialized() {
        // §3.2: 971 MB of JVM objects vs 289 MB serialized (~3.4x).
        let (_, rows) = lineitem_like(5000);
        let obj = object_store_bytes(&rows);
        let ser = serialized_bytes(&rows);
        let ratio = obj as f64 / ser as f64;
        assert!(
            (2.0..6.0).contains(&ratio),
            "object/serialized ratio {ratio} outside the expected band"
        );
    }

    #[test]
    fn columnar_is_smaller_than_object_store_by_a_wide_margin() {
        let (schema, rows) = lineitem_like(5000);
        let part = ColumnarPartition::from_rows(&schema, &rows);
        let obj = object_store_bytes(&rows);
        let ratio = obj as f64 / part.memory_bytes() as f64;
        assert!(
            ratio > 3.0,
            "columnar should be >3x smaller than row objects, got {ratio}"
        );
    }

    #[test]
    fn object_count_counts_rows_and_values() {
        let rows = vec![row![1i64, "a"], row![2i64, "b"]];
        assert_eq!(object_store_object_count(&rows), 2 * 3);
        assert!(object_store_bytes(&rows) > serialized_bytes(&rows));
    }
}
