//! Columnar partitions: rows of a table partition stored column-wise.

use shark_common::{DataType, Result, Row, Schema, SharkError, Value};

use crate::column::EncodedColumn;
use crate::encoding::{choose_encoding, kind_of, EncodingChoice, EncodingKind};
use crate::stats::PartitionStats;

/// One table partition stored in columnar, compressed form together with the
/// statistics collected while loading it (§3.2, §3.3, §3.5).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarPartition {
    schema: Schema,
    num_rows: usize,
    columns: Vec<EncodedColumn>,
    stats: PartitionStats,
}

impl ColumnarPartition {
    /// Reassemble a partition from its already-encoded parts (the spill
    /// codec's decode path).
    pub(crate) fn from_parts(
        schema: Schema,
        num_rows: usize,
        columns: Vec<EncodedColumn>,
        stats: PartitionStats,
    ) -> ColumnarPartition {
        ColumnarPartition {
            schema,
            num_rows,
            columns,
            stats,
        }
    }

    /// Convert a row-oriented partition into columnar form, letting each
    /// column pick its own compression scheme.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> ColumnarPartition {
        Self::from_rows_with(schema, rows, EncodingChoice::Auto)
    }

    /// Convert a row-oriented partition with an explicit encoding policy
    /// (used by the compression ablation benches).
    pub fn from_rows_with(
        schema: &Schema,
        rows: &[Row],
        choice: EncodingChoice,
    ) -> ColumnarPartition {
        let stats = PartitionStats::from_rows(schema, rows);
        let mut columns = Vec::with_capacity(schema.len());
        for (c, field) in schema.fields().iter().enumerate() {
            let values: Vec<Value> = rows.iter().map(|r| r.get(c).clone()).collect();
            columns.push(choose_encoding(field.data_type, &values, choice));
        }
        ColumnarPartition {
            schema: schema.clone(),
            num_rows: rows.len(),
            columns,
            stats,
        }
    }

    /// The partition's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows stored.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns stored.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Statistics collected at load time (for map pruning).
    pub fn stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// Approximate memory footprint of the encoded columns, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.memory_bytes()).sum()
    }

    /// The compression family used for column `i`.
    pub fn encoding(&self, i: usize) -> EncodingKind {
        kind_of(&self.columns[i])
    }

    /// Borrow the encoded representation of column `i`. This is the hook the
    /// vectorized execution path uses to run predicate kernels directly over
    /// the compressed encoding (run skipping, dictionary-code tests) instead
    /// of decoding the column into `Value`s first.
    pub fn column(&self, i: usize) -> &EncodedColumn {
        &self.columns[i]
    }

    /// The logical type of column `i`.
    pub fn column_type(&self, i: usize) -> DataType {
        self.schema.field(i).data_type
    }

    /// Memory footprint of a single encoded column, in bytes. Scans that
    /// project a subset of columns only pay for the columns they touch.
    pub fn column_bytes(&self, i: usize) -> usize {
        self.columns[i].memory_bytes()
    }

    /// Decode one column entirely.
    pub fn decode_column(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.columns.len() {
            return Err(SharkError::Execution(format!(
                "column index {i} out of range ({} columns)",
                self.columns.len()
            )));
        }
        Ok(self.columns[i].decode(self.schema.field(i).data_type))
    }

    /// Decode a single cell.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row, self.schema.field(col).data_type)
    }

    /// Reconstruct full rows (all columns).
    pub fn to_rows(&self) -> Vec<Row> {
        self.project_rows(&(0..self.columns.len()).collect::<Vec<_>>())
    }

    /// Reconstruct rows containing only the requested columns, in the
    /// requested order. This is the scan path: only the needed columns are
    /// decoded, which is where the columnar layout wins for analytical
    /// queries that touch a few of many columns.
    pub fn project_rows(&self, columns: &[usize]) -> Vec<Row> {
        let decoded: Vec<Vec<Value>> = columns
            .iter()
            .map(|&c| self.columns[c].decode(self.schema.field(c).data_type))
            .collect();
        (0..self.num_rows)
            .map(|r| Row::new(decoded.iter().map(|col| col[r].clone()).collect()))
            .collect()
    }

    /// Uncompressed (plain columnar) footprint, for compression-ratio
    /// reporting.
    pub fn plain_bytes(&self) -> usize {
        let mut total = 0usize;
        for (c, field) in self.schema.fields().iter().enumerate() {
            total += match field.data_type {
                DataType::Int | DataType::Float | DataType::Date => self.num_rows * 8,
                DataType::Bool => self.num_rows,
                DataType::Str | DataType::Null => self
                    .decode_column(c)
                    .map(|vals| {
                        vals.iter()
                            .map(|v| v.as_str().map(|s| s.len() + 16).unwrap_or(16))
                            .sum()
                    })
                    .unwrap_or(0),
            };
        }
        total
    }

    /// Compression ratio: plain columnar bytes / encoded bytes.
    pub fn compression_ratio(&self) -> f64 {
        let encoded = self.memory_bytes().max(1);
        self.plain_bytes() as f64 / encoded as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("shipmode", DataType::Str),
            ("price", DataType::Float),
            ("shipped", DataType::Bool),
            ("day", DataType::Date),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        let modes = ["AIR", "SHIP", "TRUCK"];
        (0..n)
            .map(|i| {
                row![
                    i as i64,
                    modes[i % 3],
                    i as f64 * 1.5,
                    i % 2 == 0,
                    Value::Date(100 + (i / 10) as i32)
                ]
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let schema = schema();
        let original = rows(200);
        let part = ColumnarPartition::from_rows(&schema, &original);
        assert_eq!(part.num_rows(), 200);
        assert_eq!(part.num_columns(), 5);
        assert_eq!(part.to_rows(), original);
    }

    #[test]
    fn projection_decodes_only_requested_columns() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(10));
        let projected = part.project_rows(&[1, 0]);
        assert_eq!(projected[3], row!["AIR", 3i64]);
        assert_eq!(projected.len(), 10);
    }

    #[test]
    fn value_at_matches_decode() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(50));
        assert_eq!(part.value_at(7, 0), Value::Int(7));
        assert_eq!(part.value_at(7, 1), Value::str("SHIP"));
        assert_eq!(part.decode_column(2).unwrap()[7], Value::Float(10.5));
        assert!(part.decode_column(99).is_err());
    }

    #[test]
    fn compression_shrinks_footprint() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(5000));
        assert!(
            part.compression_ratio() > 1.5,
            "{}",
            part.compression_ratio()
        );
        let plain =
            ColumnarPartition::from_rows_with(&schema(), &rows(5000), EncodingChoice::ForcePlain);
        assert!(part.memory_bytes() < plain.memory_bytes());
        assert_eq!(plain.to_rows(), part.to_rows());
    }

    #[test]
    fn stats_are_collected_at_load_time() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(100));
        let stats = part.stats();
        assert_eq!(stats.num_rows, 100);
        assert_eq!(stats.column(0).min, Some(Value::Int(0)));
        assert_eq!(stats.column(0).max, Some(Value::Int(99)));
        assert!(stats.column(1).distinct.is_some());
    }

    #[test]
    fn empty_partition() {
        let part = ColumnarPartition::from_rows(&schema(), &[]);
        assert_eq!(part.num_rows(), 0);
        assert!(part.to_rows().is_empty());
    }

    #[test]
    fn encoding_kinds_reported() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(1000));
        // id column 0..1000 is narrow-range → bit packed; shipmode → dict;
        // day has long runs → RLE.
        assert_eq!(part.encoding(0), EncodingKind::BitPacked);
        assert_eq!(part.encoding(1), EncodingKind::Dictionary);
        assert_eq!(part.encoding(4), EncodingKind::RunLength);
    }
}
