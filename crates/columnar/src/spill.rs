//! On-disk frame format for spilled (demoted) columnar partitions.
//!
//! Eviction under memory pressure demotes a partition to disk instead of
//! dropping it outright; a later scan faults it back in at I/O cost rather
//! than paying a full lineage recompute. The frame serializes the partition
//! *as encoded* — RLE runs, dictionary codes and bit-packed words go to disk
//! verbatim, so a spill file is roughly as small as the partition's in-memory
//! footprint and decode cost on fault-in is zero beyond the copy.
//!
//! Layout (all integers little-endian; the normative byte-level spec lives
//! in `docs/ondisk-formats.md` at the repository root — keep the two in
//! sync, and bump [`SPILL_VERSION`] on any incompatible change):
//!
//! ```text
//! magic          8  b"SHRKSPL1"
//! version        4  format version (currently 2)
//! table_version  8  catalog epoch of the owning table version
//! length         8  payload length in bytes
//! checksum       8  FNV-1a 64 over table_version (8 bytes LE) ++ payload
//! payload        …  schema, row count, encoded columns, partition stats
//! ```
//!
//! `table_version` ties a frame to the exact table *version* (the catalog
//! epoch at which the table was installed) that wrote it, so a frame left
//! behind by a dropped-and-recreated table of the same name can never be
//! served to the new incarnation: restore-time adoption and fault-in both
//! compare it against the live table's version and poison mismatches down
//! to lineage recompute. Folding it into the checksum means a bit-flipped
//! version field is indistinguishable from payload rot — both poison.
//!
//! Decoding is strictly validating: a bad magic, unknown version, length
//! mismatch, checksum mismatch, short read or trailing garbage all yield an
//! error, never a partially-reconstructed partition. Callers treat any decode
//! error as "spill file poisoned" and fall back to lineage recompute.

use std::sync::Arc;

use shark_common::{DataType, Result, Schema, SharkError, Value};

use crate::column::{EncodedColumn, NullMask};
use crate::partition::ColumnarPartition;
use crate::stats::{ColumnStats, PartitionStats};

/// Magic bytes opening every spill frame.
pub const SPILL_MAGIC: [u8; 8] = *b"SHRKSPL1";

/// Current frame format version. Version 2 added the `table_version` header
/// field; version-1 frames are rejected (and poison down to lineage).
pub const SPILL_VERSION: u32 = 2;

/// Fixed header size: magic + version + table_version + length + checksum.
pub const SPILL_HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 8;

/// FNV-1a 64-bit checksum. Cheap, dependency-free, and plenty to detect
/// truncation or bit rot; this is an integrity check, not a cryptographic
/// one.
fn fnv1a_from(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Frame checksum: FNV-1a 64 over the `table_version` field (as 8
/// little-endian bytes) followed by the payload, so header-field rot is
/// caught the same way payload rot is.
fn frame_checksum(table_version: u64, payload: &[u8]) -> u64 {
    fnv1a_from(
        fnv1a_from(FNV_OFFSET, &table_version.to_le_bytes()),
        payload,
    )
}

fn corrupt(detail: impl Into<String>) -> SharkError {
    SharkError::Execution(format!("spill frame: {}", detail.into()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn nulls(&mut self, mask: &NullMask) {
        match mask {
            None => self.u8(0),
            Some(valid) => {
                self.u8(1);
                self.u64(valid.len() as u64);
                // One bit per row, packed little-endian within each byte.
                let mut byte = 0u8;
                for (i, &v) in valid.iter().enumerate() {
                    if v {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        self.u8(byte);
                        byte = 0;
                    }
                }
                if valid.len() % 8 != 0 {
                    self.u8(byte);
                }
            }
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(2);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::Bool(b) => {
                self.u8(4);
                self.u8(*b as u8);
            }
            Value::Date(d) => {
                self.u8(5);
                self.u32(*d as u32);
            }
        }
    }

    fn column(&mut self, col: &EncodedColumn) {
        match col {
            EncodedColumn::IntPlain { values, nulls } => {
                self.u8(0);
                self.u64(values.len() as u64);
                for &v in values {
                    self.i64(v);
                }
                self.nulls(nulls);
            }
            EncodedColumn::IntRle { runs, len, nulls } => {
                self.u8(1);
                self.u64(*len as u64);
                self.u64(runs.len() as u64);
                for (v, run) in runs {
                    self.i64(*v);
                    self.u32(*run);
                }
                self.nulls(nulls);
            }
            EncodedColumn::IntBitPacked {
                min,
                bits,
                len,
                words,
                nulls,
            } => {
                self.u8(2);
                self.i64(*min);
                self.u8(*bits);
                self.u64(*len as u64);
                self.u64(words.len() as u64);
                for &w in words {
                    self.u64(w);
                }
                self.nulls(nulls);
            }
            EncodedColumn::FloatPlain { values, nulls } => {
                self.u8(3);
                self.u64(values.len() as u64);
                for &v in values {
                    self.f64(v);
                }
                self.nulls(nulls);
            }
            EncodedColumn::BoolPacked { len, words, nulls } => {
                self.u8(4);
                self.u64(*len as u64);
                self.u64(words.len() as u64);
                for &w in words {
                    self.u64(w);
                }
                self.nulls(nulls);
            }
            EncodedColumn::StrPlain { values, nulls } => {
                self.u8(5);
                self.u64(values.len() as u64);
                for v in values {
                    self.str(v);
                }
                self.nulls(nulls);
            }
            EncodedColumn::StrDict { dict, codes, nulls } => {
                self.u8(6);
                self.u64(dict.len() as u64);
                for v in dict {
                    self.str(v);
                }
                self.u64(codes.len() as u64);
                for &c in codes {
                    self.u32(c);
                }
                self.nulls(nulls);
            }
            EncodedColumn::StrRle { runs, len, nulls } => {
                self.u8(7);
                self.u64(*len as u64);
                self.u64(runs.len() as u64);
                for (v, run) in runs {
                    self.str(v);
                    self.u32(*run);
                }
                self.nulls(nulls);
            }
            EncodedColumn::AllNull { len } => {
                self.u8(8);
                self.u64(*len as u64);
            }
        }
    }
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
        DataType::Null => 5,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Date,
        5 => DataType::Null,
        other => return Err(corrupt(format!("unknown data type tag {other}"))),
    })
}

/// Serialize a partition into a self-describing, checksummed spill frame.
///
/// `table_version` is the catalog epoch at which the owning table version
/// was installed; it is stored in the header and folded into the checksum,
/// and [`decode_partition`] hands it back so callers can reject frames
/// written by an earlier incarnation of a same-named table.
pub fn encode_partition(part: &ColumnarPartition, table_version: u64) -> Vec<u8> {
    let mut w = Writer::new();

    // Schema.
    let schema = part.schema();
    w.u32(schema.len() as u32);
    for field in schema.fields() {
        w.str(&field.name);
        w.u8(type_tag(field.data_type));
    }

    // Encoded columns.
    w.u64(part.num_rows() as u64);
    w.u32(part.num_columns() as u32);
    for c in 0..part.num_columns() {
        w.column(part.column(c));
    }

    // Stats travel with the partition so map pruning works immediately after
    // fault-in without a decode pass.
    let stats = part.stats();
    w.u64(stats.num_rows);
    w.u32(stats.columns.len() as u32);
    for col in &stats.columns {
        w.u8(col.min.is_some() as u8);
        if let Some(v) = &col.min {
            w.value(v);
        }
        w.u8(col.max.is_some() as u8);
        if let Some(v) = &col.max {
            w.value(v);
        }
        match &col.distinct {
            None => w.u8(0),
            Some(values) => {
                w.u8(1);
                w.u64(values.len() as u64);
                for v in values {
                    w.value(v);
                }
            }
        }
        w.u64(col.null_count);
        w.u64(col.row_count);
    }

    let payload = w.buf;
    let mut frame = Vec::with_capacity(SPILL_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&SPILL_MAGIC);
    frame.extend_from_slice(&SPILL_VERSION.to_le_bytes());
    frame.extend_from_slice(&table_version.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&frame_checksum(table_version, &payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// The fixed-size header of a spill frame, as parsed by
/// [`read_frame_header`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillFrameHeader {
    /// Catalog epoch of the table version that wrote the frame.
    pub table_version: u64,
    /// Payload length the header claims, in bytes.
    pub payload_len: u64,
    /// FNV-1a 64 checksum recorded in the header (over `table_version` ++
    /// payload).
    pub checksum: u64,
}

/// Parse and validate just the fixed header of a spill frame: magic, format
/// version, and — when the full file length is known — that the claimed
/// payload length matches it.
///
/// This is the cheap probe restore-time adoption uses to vet a frame
/// without reading (or checksumming) its payload; full payload validation
/// stays in [`decode_partition`] and runs on fault-in. Pass the total file
/// size as `file_len` (callers holding only the header bytes pass `None`).
pub fn read_frame_header(bytes: &[u8], file_len: Option<u64>) -> Result<SpillFrameHeader> {
    if bytes.len() < SPILL_HEADER_BYTES {
        return Err(corrupt(format!(
            "file shorter than header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes[..8] != SPILL_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SPILL_VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (expected {SPILL_VERSION})"
        )));
    }
    let header = SpillFrameHeader {
        table_version: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
        payload_len: u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
        checksum: u64::from_le_bytes(bytes[28..36].try_into().unwrap()),
    };
    if let Some(total) = file_len {
        let expected = (SPILL_HEADER_BYTES as u64).saturating_add(header.payload_len);
        if total != expected {
            return Err(corrupt(format!(
                "payload length mismatch (header says {}, file has {})",
                header.payload_len,
                total.saturating_sub(SPILL_HEADER_BYTES as u64)
            )));
        }
    }
    Ok(header)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt(format!(
                "truncated payload (wanted {n} bytes at offset {}, {} available)",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Bounded length: spill frames hold one partition, so any count beyond
    /// the payload size itself signals corruption rather than real data.
    fn len(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(corrupt(format!("implausible element count {n}")));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<Arc<str>> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(Arc::from)
            .map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    fn nulls(&mut self) -> Result<NullMask> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let n = self.len()?;
                let bytes = self.take(n.div_ceil(8))?;
                Ok(Some(
                    (0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect(),
                ))
            }
            other => Err(corrupt(format!("bad null-mask marker {other}"))),
        }
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Str(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            5 => Value::Date(self.u32()? as i32),
            other => return Err(corrupt(format!("unknown value tag {other}"))),
        })
    }

    fn column(&mut self) -> Result<EncodedColumn> {
        Ok(match self.u8()? {
            0 => {
                let n = self.len()?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(self.i64()?);
                }
                EncodedColumn::IntPlain {
                    values,
                    nulls: self.nulls()?,
                }
            }
            1 => {
                let len = self.len()?;
                let n = self.len()?;
                let mut runs = Vec::with_capacity(n);
                for _ in 0..n {
                    runs.push((self.i64()?, self.u32()?));
                }
                EncodedColumn::IntRle {
                    runs,
                    len,
                    nulls: self.nulls()?,
                }
            }
            2 => {
                let min = self.i64()?;
                let bits = self.u8()?;
                let len = self.len()?;
                let n = self.len()?;
                let mut words = Vec::with_capacity(n);
                for _ in 0..n {
                    words.push(self.u64()?);
                }
                EncodedColumn::IntBitPacked {
                    min,
                    bits,
                    len,
                    words,
                    nulls: self.nulls()?,
                }
            }
            3 => {
                let n = self.len()?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(self.f64()?);
                }
                EncodedColumn::FloatPlain {
                    values,
                    nulls: self.nulls()?,
                }
            }
            4 => {
                let len = self.len()?;
                let n = self.len()?;
                let mut words = Vec::with_capacity(n);
                for _ in 0..n {
                    words.push(self.u64()?);
                }
                EncodedColumn::BoolPacked {
                    len,
                    words,
                    nulls: self.nulls()?,
                }
            }
            5 => {
                let n = self.len()?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(self.str()?);
                }
                EncodedColumn::StrPlain {
                    values,
                    nulls: self.nulls()?,
                }
            }
            6 => {
                let n = self.len()?;
                let mut dict = Vec::with_capacity(n);
                for _ in 0..n {
                    dict.push(self.str()?);
                }
                let n = self.len()?;
                let mut codes = Vec::with_capacity(n);
                for _ in 0..n {
                    let code = self.u32()?;
                    if code as usize >= dict.len() {
                        return Err(corrupt(format!(
                            "dictionary code {code} out of range ({} entries)",
                            dict.len()
                        )));
                    }
                    codes.push(code);
                }
                EncodedColumn::StrDict {
                    dict,
                    codes,
                    nulls: self.nulls()?,
                }
            }
            7 => {
                let len = self.len()?;
                let n = self.len()?;
                let mut runs = Vec::with_capacity(n);
                for _ in 0..n {
                    runs.push((self.str()?, self.u32()?));
                }
                EncodedColumn::StrRle {
                    runs,
                    len,
                    nulls: self.nulls()?,
                }
            }
            8 => EncodedColumn::AllNull { len: self.len()? },
            other => return Err(corrupt(format!("unknown column tag {other}"))),
        })
    }
}

/// Validate and decode a spill frame back into a [`ColumnarPartition`],
/// returning it together with the `table_version` the frame was written
/// under.
///
/// Every structural violation — wrong magic, unknown version, length or
/// checksum mismatch, truncation, trailing bytes — is reported as an error
/// so the caller can fall back to lineage recompute.
pub fn decode_partition(bytes: &[u8]) -> Result<(ColumnarPartition, u64)> {
    let header = read_frame_header(bytes, Some(bytes.len() as u64))?;
    let payload = &bytes[SPILL_HEADER_BYTES..];
    if frame_checksum(header.table_version, payload) != header.checksum {
        return Err(corrupt("checksum mismatch"));
    }

    let mut r = Reader::new(payload);

    let num_fields = r.u32()? as usize;
    let mut fields = Vec::with_capacity(num_fields);
    for _ in 0..num_fields {
        let name = r.str()?;
        let dt = tag_type(r.u8()?)?;
        fields.push(shark_common::Field::new(name.as_ref(), dt));
    }
    let schema = Schema::new(fields);

    let num_rows = r.len()?;
    let num_columns = r.u32()? as usize;
    if num_columns != schema.len() {
        return Err(corrupt(format!(
            "column count {num_columns} disagrees with schema ({} fields)",
            schema.len()
        )));
    }
    let mut columns = Vec::with_capacity(num_columns);
    for _ in 0..num_columns {
        let col = r.column()?;
        if col.len() != num_rows {
            return Err(corrupt(format!(
                "column length {} disagrees with partition rows {num_rows}",
                col.len()
            )));
        }
        columns.push(col);
    }

    let stats_rows = r.u64()?;
    let stats_cols = r.u32()? as usize;
    if stats_cols != num_columns {
        return Err(corrupt("stats column count disagrees with schema"));
    }
    let mut stat_columns = Vec::with_capacity(stats_cols);
    for _ in 0..stats_cols {
        let min = if r.u8()? != 0 { Some(r.value()?) } else { None };
        let max = if r.u8()? != 0 { Some(r.value()?) } else { None };
        let distinct = if r.u8()? != 0 {
            let n = r.len()?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.value()?);
            }
            Some(values)
        } else {
            None
        };
        stat_columns.push(ColumnStats {
            min,
            max,
            distinct,
            null_count: r.u64()?,
            row_count: r.u64()?,
        });
    }
    let stats = PartitionStats {
        columns: stat_columns,
        num_rows: stats_rows,
    };

    if r.pos != payload.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after partition",
            payload.len() - r.pos
        )));
    }

    Ok((
        ColumnarPartition::from_parts(schema, num_rows, columns, stats),
        header.table_version,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingChoice;
    use shark_common::{row, Row};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("shipmode", DataType::Str),
            ("price", DataType::Float),
            ("shipped", DataType::Bool),
            ("day", DataType::Date),
        ])
    }

    fn rows(n: usize) -> Vec<Row> {
        let modes = ["AIR", "SHIP", "TRUCK"];
        (0..n)
            .map(|i| {
                row![
                    i as i64,
                    modes[i % 3],
                    i as f64 * 1.5,
                    i % 2 == 0,
                    Value::Date(100 + (i / 10) as i32)
                ]
            })
            .collect()
    }

    #[test]
    fn frame_roundtrip_preserves_partition() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(500));
        let frame = encode_partition(&part, 7);
        let (back, version) = decode_partition(&frame).unwrap();
        assert_eq!(back, part);
        assert_eq!(version, 7);
        assert_eq!(back.to_rows(), part.to_rows());
    }

    #[test]
    fn frame_roundtrip_every_encoding_choice() {
        for choice in [EncodingChoice::Auto, EncodingChoice::ForcePlain] {
            let part = ColumnarPartition::from_rows_with(&schema(), &rows(200), choice);
            let (back, _) = decode_partition(&encode_partition(&part, 1)).unwrap();
            assert_eq!(back, part, "{choice:?}");
        }
    }

    #[test]
    fn frame_roundtrip_run_heavy_strings() {
        // Long constant string runs select StrRle; plateaued ints select
        // IntRle — the two variants the mixed table doesn't exercise.
        let schema = Schema::from_pairs(&[("grp", DataType::Str), ("k", DataType::Int)]);
        let rows: Vec<Row> = (0..400)
            .map(|i| row![["hot", "cold"][(i / 100) % 2], (i / 50) as i64])
            .collect();
        let part = ColumnarPartition::from_rows(&schema, &rows);
        let (back, _) = decode_partition(&encode_partition(&part, 1)).unwrap();
        assert_eq!(back, part);
        assert_eq!(back.to_rows(), rows);
    }

    #[test]
    fn frame_roundtrip_nulls_and_empty() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Null)]);
        let rows = vec![
            row![1i64, Value::Null],
            row![Value::Null, Value::Null],
            row![3i64, Value::Null],
        ];
        let part = ColumnarPartition::from_rows(&schema, &rows);
        let (back, _) = decode_partition(&encode_partition(&part, 1)).unwrap();
        assert_eq!(back.to_rows(), rows);

        let empty = ColumnarPartition::from_rows(&schema, &[]);
        let (back, _) = decode_partition(&encode_partition(&empty, 1)).unwrap();
        assert_eq!(back.num_rows(), 0);
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(64));
        let frame = encode_partition(&part, 1);
        // Any strict prefix must fail loudly, whatever byte it stops at.
        for cut in [
            0,
            7,
            SPILL_HEADER_BYTES - 1,
            SPILL_HEADER_BYTES + 1,
            frame.len() - 1,
        ] {
            assert!(
                decode_partition(&frame[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(64));
        let frame = encode_partition(&part, 42);
        // Flip one bit in every region: magic, version, table_version,
        // length, checksum, and a spread of payload offsets.
        for pos in [
            0,
            9,
            15,
            21,
            29,
            SPILL_HEADER_BYTES + 3,
            frame.len() / 2,
            frame.len() - 1,
        ] {
            let mut bad = frame.clone();
            bad[pos] ^= 0x40;
            assert!(decode_partition(&bad).is_err(), "bit flip at {pos} decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(16));
        let mut frame = encode_partition(&part, 1);
        frame.extend_from_slice(b"junk");
        assert!(decode_partition(&frame).is_err());
    }

    #[test]
    fn stats_survive_roundtrip() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(100));
        let (back, _) = decode_partition(&encode_partition(&part, 1)).unwrap();
        assert_eq!(back.stats(), part.stats());
        assert_eq!(back.stats().column(0).min, Some(Value::Int(0)));
        assert_eq!(back.stats().column(0).max, Some(Value::Int(99)));
    }

    #[test]
    fn header_probe_validates_without_payload_read() {
        let part = ColumnarPartition::from_rows(&schema(), &rows(32));
        let frame = encode_partition(&part, 9);
        let header = read_frame_header(&frame, Some(frame.len() as u64)).unwrap();
        assert_eq!(header.table_version, 9);
        assert_eq!(
            header.payload_len as usize,
            frame.len() - SPILL_HEADER_BYTES
        );
        // Probing just the header bytes (no file length) also works.
        let short = read_frame_header(&frame[..SPILL_HEADER_BYTES], None).unwrap();
        assert_eq!(short, header);
        // Wrong file length, bad magic, and bad format version all fail.
        assert!(read_frame_header(&frame, Some(frame.len() as u64 - 1)).is_err());
        let mut bad = frame.clone();
        bad[0] ^= 0xff;
        assert!(read_frame_header(&bad, None).is_err());
        let mut bad = frame.clone();
        bad[8] = 99;
        assert!(read_frame_header(&bad, None).is_err());
    }

    #[test]
    fn version_1_frames_are_rejected() {
        // A frame stamped with the retired format version must poison, not
        // decode: the v1 header had no table_version field, so its bytes
        // would be misinterpreted.
        let part = ColumnarPartition::from_rows(&schema(), &rows(8));
        let mut frame = encode_partition(&part, 1);
        frame[8..12].copy_from_slice(&1u32.to_le_bytes());
        let err = decode_partition(&frame).unwrap_err().to_string();
        assert!(err.contains("unsupported version"), "{err}");
    }
}
