//! # shark-columnar
//!
//! Shark's columnar in-memory store (§3.2 of the paper) plus the
//! per-partition statistics that enable map pruning (§3.5).
//!
//! Tables cached in Shark's memstore are stored column-wise: every column of
//! a partition becomes one contiguous, optionally compressed array rather
//! than a collection of per-row objects. This crate provides:
//!
//! * [`EncodedColumn`] — the physical column encodings: plain arrays,
//!   run-length encoding, dictionary encoding and bit-packing, chosen per
//!   column *per partition* by [`encoding::choose_encoding`] exactly as the
//!   paper's data-loading tasks do (§3.3).
//! * [`ColumnarPartition`] — a partition of rows in columnar form, with
//!   conversion to/from [`shark_common::Row`]s, per-column decode, and
//!   memory accounting.
//! * [`PartitionStats`] / [`ColumnStats`] — min/max and small-cardinality
//!   distinct-value statistics collected while loading, used by the query
//!   optimizer to skip partitions whose values cannot satisfy a predicate
//!   (map pruning).
//! * [`footprint`] — a model of the per-object overhead a deserialized
//!   row-object store would pay (the "JVM object" comparison of §3.2).

pub mod batch;
pub mod column;
pub mod encoding;
pub mod footprint;
pub mod partition;
pub mod spill;
pub mod stats;

pub use batch::{ColumnBatch, Selection};
pub use column::EncodedColumn;
pub use encoding::{choose_encoding, EncodingChoice, EncodingKind};
pub use partition::ColumnarPartition;
pub use spill::{
    decode_partition, encode_partition, read_frame_header, SpillFrameHeader, SPILL_HEADER_BYTES,
    SPILL_MAGIC, SPILL_VERSION,
};
pub use stats::{ColumnStats, PartitionStats};
