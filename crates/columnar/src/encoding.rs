//! Per-column, per-partition compression selection.
//!
//! §3.3 of the paper: "Each data loading task tracks metadata to decide
//! whether each column in a partition should be compressed … This allows
//! each task to choose the best compression scheme for each partition,
//! rather than conforming to a global compression scheme." This module
//! implements that local decision: given one column's values it picks plain,
//! run-length, dictionary or bit-packed encoding, and builds the encoded
//! column.

use std::collections::BTreeSet;
use std::sync::Arc;

use shark_common::{DataType, Value};

use crate::column::{pack_bits, EncodedColumn, NullMask};

/// The compression family chosen for one column of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    /// Uncompressed array.
    Plain,
    /// Run-length encoding.
    RunLength,
    /// Dictionary encoding.
    Dictionary,
    /// Frame-of-reference bit packing.
    BitPacked,
    /// Column contains only NULLs.
    AllNull,
}

/// Forces or delegates the encoding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingChoice {
    /// Let the loader pick the best encoding from the column contents.
    #[default]
    Auto,
    /// Store everything uncompressed (the "naïve columnar" ablation).
    ForcePlain,
}

/// Distinct-value threshold below which dictionary encoding is used for
/// strings (mirrors the paper's "if its number of distinct values is below a
/// threshold" rule).
pub const DICT_THRESHOLD: usize = 256;

/// Minimum average run length for RLE to be considered worthwhile.
const RLE_MIN_AVG_RUN: f64 = 4.0;

/// Pick an encoding and build the encoded column for `values` of logical
/// type `data_type`.
pub fn choose_encoding(
    data_type: DataType,
    values: &[Value],
    choice: EncodingChoice,
) -> EncodedColumn {
    let nulls = build_null_mask(values);
    let non_null = values.iter().filter(|v| !v.is_null()).count();
    if non_null == 0 {
        return EncodedColumn::AllNull { len: values.len() };
    }

    match data_type {
        DataType::Int | DataType::Date => encode_int(values, nulls, choice),
        DataType::Float => EncodedColumn::FloatPlain {
            values: values.iter().map(|v| v.as_float().unwrap_or(0.0)).collect(),
            nulls,
        },
        DataType::Bool => encode_bool(values, nulls),
        DataType::Str | DataType::Null => encode_str(values, nulls, choice),
    }
}

/// The encoding family of an already-encoded column (for tests/benches).
pub fn kind_of(col: &EncodedColumn) -> EncodingKind {
    match col {
        EncodedColumn::IntPlain { .. }
        | EncodedColumn::FloatPlain { .. }
        | EncodedColumn::StrPlain { .. } => EncodingKind::Plain,
        EncodedColumn::IntRle { .. } | EncodedColumn::StrRle { .. } => EncodingKind::RunLength,
        EncodedColumn::StrDict { .. } => EncodingKind::Dictionary,
        EncodedColumn::IntBitPacked { .. } | EncodedColumn::BoolPacked { .. } => {
            EncodingKind::BitPacked
        }
        EncodedColumn::AllNull { .. } => EncodingKind::AllNull,
    }
}

fn build_null_mask(values: &[Value]) -> NullMask {
    if values.iter().any(|v| v.is_null()) {
        Some(values.iter().map(|v| !v.is_null()).collect())
    } else {
        None
    }
}

fn avg_run_length(n: usize, runs: usize) -> f64 {
    if runs == 0 {
        0.0
    } else {
        n as f64 / runs as f64
    }
}

fn encode_int(values: &[Value], nulls: NullMask, choice: EncodingChoice) -> EncodedColumn {
    let ints: Vec<i64> = values.iter().map(|v| v.as_int().unwrap_or(0)).collect();
    if choice == EncodingChoice::ForcePlain {
        return EncodedColumn::IntPlain {
            values: ints,
            nulls,
        };
    }

    // Count runs to evaluate RLE.
    let mut runs = 0usize;
    let mut prev: Option<i64> = None;
    for &v in &ints {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    if avg_run_length(ints.len(), runs) >= RLE_MIN_AVG_RUN {
        let mut encoded: Vec<(i64, u32)> = Vec::with_capacity(runs);
        for &v in &ints {
            match encoded.last_mut() {
                Some((lv, count)) if *lv == v && *count < u32::MAX => *count += 1,
                _ => encoded.push((v, 1)),
            }
        }
        return EncodedColumn::IntRle {
            runs: encoded,
            len: ints.len(),
            nulls,
        };
    }

    // Frame-of-reference bit packing if the value range is narrow.
    let min = *ints.iter().min().unwrap();
    let max = *ints.iter().max().unwrap();
    let range = (max as i128 - min as i128) as u128;
    let bits = (128 - range.leading_zeros()).max(1) as u8;
    if bits <= 32 {
        let deltas: Vec<u64> = ints.iter().map(|&v| (v - min) as u64).collect();
        return EncodedColumn::IntBitPacked {
            min,
            bits,
            len: ints.len(),
            words: pack_bits(&deltas, bits),
            nulls,
        };
    }

    EncodedColumn::IntPlain {
        values: ints,
        nulls,
    }
}

fn encode_bool(values: &[Value], nulls: NullMask) -> EncodedColumn {
    let len = values.len();
    let mut words = vec![0u64; len.div_ceil(64).max(1)];
    for (i, v) in values.iter().enumerate() {
        if v.as_bool().unwrap_or(false) {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    EncodedColumn::BoolPacked { len, words, nulls }
}

fn encode_str(values: &[Value], nulls: NullMask, choice: EncodingChoice) -> EncodedColumn {
    let strs: Vec<Arc<str>> = values
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.clone(),
            Value::Null => Arc::from(""),
            other => Arc::from(other.render().as_str()),
        })
        .collect();
    if choice == EncodingChoice::ForcePlain {
        return EncodedColumn::StrPlain {
            values: strs,
            nulls,
        };
    }

    // RLE when values repeat consecutively (sorted / clustered columns).
    let mut runs = 0usize;
    let mut prev: Option<&str> = None;
    for s in &strs {
        if prev != Some(s.as_ref()) {
            runs += 1;
            prev = Some(s.as_ref());
        }
    }
    if avg_run_length(strs.len(), runs) >= RLE_MIN_AVG_RUN {
        let mut encoded: Vec<(Arc<str>, u32)> = Vec::with_capacity(runs);
        for s in &strs {
            match encoded.last_mut() {
                Some((lv, count)) if lv.as_ref() == s.as_ref() && *count < u32::MAX => *count += 1,
                _ => encoded.push((s.clone(), 1)),
            }
        }
        return EncodedColumn::StrRle {
            runs: encoded,
            len: strs.len(),
            nulls,
        };
    }

    // Dictionary when the distinct count is small.
    let distinct: BTreeSet<&str> = strs.iter().map(|s| s.as_ref()).collect();
    if distinct.len() <= DICT_THRESHOLD && distinct.len() < strs.len() {
        let dict: Vec<Arc<str>> = distinct.iter().map(|s| Arc::from(*s)).collect();
        let codes: Vec<u32> = strs
            .iter()
            .map(|s| {
                dict.binary_search_by(|d| d.as_ref().cmp(s.as_ref()))
                    .unwrap() as u32
            })
            .collect();
        return EncodedColumn::StrDict { dict, codes, nulls };
    }

    EncodedColumn::StrPlain {
        values: strs,
        nulls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn strs(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|&v| Value::str(v)).collect()
    }

    #[test]
    fn sorted_ints_use_rle() {
        let vals = ints(&[1; 100]);
        let col = choose_encoding(DataType::Int, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::RunLength);
        assert_eq!(col.decode(DataType::Int), vals);
        assert!(col.memory_bytes() < 100);
    }

    #[test]
    fn narrow_range_ints_use_bitpacking() {
        let raw: Vec<i64> = (0..1000).map(|i| 1_000_000 + (i * 7919) % 1000).collect();
        let vals = ints(&raw);
        let col = choose_encoding(DataType::Int, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::BitPacked);
        assert_eq!(col.decode(DataType::Int), vals);
        assert!(
            col.memory_bytes() < raw.len() * 8 / 2,
            "{}",
            col.memory_bytes()
        );
    }

    #[test]
    fn wide_random_ints_stay_plain() {
        let raw: Vec<i64> = (0..100)
            .map(|i| i64::MAX / 3 - (i * 982_451_653i64))
            .collect();
        let vals = ints(&raw);
        let col = choose_encoding(DataType::Int, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::Plain);
        assert_eq!(col.decode(DataType::Int), vals);
    }

    #[test]
    fn low_cardinality_strings_use_dictionary() {
        let raw: Vec<&str> = (0..500)
            .map(|i| match i * 31 % 7 {
                0 => "AIR",
                1 => "SHIP",
                2 => "TRUCK",
                3 => "RAIL",
                4 => "MAIL",
                5 => "FOB",
                _ => "REG",
            })
            .collect();
        let vals = strs(&raw);
        let col = choose_encoding(DataType::Str, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::Dictionary);
        assert_eq!(col.decode(DataType::Str), vals);
        let plain = choose_encoding(DataType::Str, &vals, EncodingChoice::ForcePlain);
        assert!(col.memory_bytes() < plain.memory_bytes() / 2);
    }

    #[test]
    fn clustered_strings_use_rle() {
        let mut raw = Vec::new();
        for country in ["US", "FR", "JP"] {
            for _ in 0..100 {
                raw.push(country);
            }
        }
        let vals = strs(&raw);
        let col = choose_encoding(DataType::Str, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::RunLength);
        assert_eq!(col.decode(DataType::Str), vals);
    }

    #[test]
    fn unique_strings_stay_plain() {
        let raw: Vec<String> = (0..400).map(|i| format!("user-{i}")).collect();
        let vals: Vec<Value> = raw.iter().map(Value::str).collect();
        let col = choose_encoding(DataType::Str, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::Plain);
    }

    #[test]
    fn bools_are_bitpacked() {
        let vals: Vec<Value> = (0..200).map(|i| Value::Bool(i % 2 == 0)).collect();
        let col = choose_encoding(DataType::Bool, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::BitPacked);
        assert_eq!(col.decode(DataType::Bool), vals);
        assert!(col.memory_bytes() < 64);
    }

    #[test]
    fn all_null_column() {
        let vals = vec![Value::Null; 10];
        let col = choose_encoding(DataType::Str, &vals, EncodingChoice::Auto);
        assert_eq!(kind_of(&col), EncodingKind::AllNull);
        assert_eq!(col.decode(DataType::Str), vals);
    }

    #[test]
    fn nulls_survive_roundtrip_in_numeric_column() {
        let vals = vec![Value::Int(5), Value::Null, Value::Int(7), Value::Null];
        let col = choose_encoding(DataType::Int, &vals, EncodingChoice::Auto);
        assert_eq!(col.decode(DataType::Int), vals);
    }

    #[test]
    fn dates_roundtrip() {
        let vals: Vec<Value> = (0..50).map(|i| Value::Date(10_000 + i / 10)).collect();
        let col = choose_encoding(DataType::Date, &vals, EncodingChoice::Auto);
        assert_eq!(col.decode(DataType::Date), vals);
    }
}
