//! Batch-at-a-time execution over encoded columns.
//!
//! A [`ColumnBatch`] is the unit the vectorized operators work on: a borrowed
//! view of one cached [`ColumnarPartition`], a column projection, and a
//! [`Selection`] of the rows that are still alive after the predicates applied
//! so far. Filters shrink the selection without touching the encoded data;
//! `Row`s are only built at the very end ([`ColumnBatch::materialize`]), which
//! is the late-materialization discipline of vectorized engines: a selective
//! scan never pays the per-row allocation cost for rows it is about to drop.

use shark_common::{DataType, Row, Value};

use crate::column::{unpack_bits, EncodedColumn};
use crate::partition::ColumnarPartition;

/// The set of partition rows still alive in a [`ColumnBatch`].
///
/// `All(n)` is the state before any predicate ran; predicate kernels narrow
/// it to an explicit, strictly ascending row-index list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Every row of a partition with `n` rows is selected.
    All(usize),
    /// An explicit, ascending list of selected row indices.
    Rows(Vec<u32>),
}

impl Selection {
    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            Selection::All(n) => *n,
            Selection::Rows(rows) => rows.len(),
        }
    }

    /// True when no rows survive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate the selected partition-row indices in ascending order.
    pub fn iter(&self) -> SelectionIter<'_> {
        match self {
            Selection::All(n) => SelectionIter::All(0..*n),
            Selection::Rows(rows) => SelectionIter::Rows(rows.iter()),
        }
    }

    /// Keep only the selected rows for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let rows: Vec<u32> = self.iter().filter(|&i| keep(i)).map(|i| i as u32).collect();
        *self = Selection::Rows(rows);
    }
}

/// Iterator over the row indices of a [`Selection`].
pub enum SelectionIter<'a> {
    /// Dense range over every row.
    All(std::ops::Range<usize>),
    /// Sparse ascending index list.
    Rows(std::slice::Iter<'a, u32>),
}

impl Iterator for SelectionIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelectionIter::All(r) => r.next(),
            SelectionIter::Rows(it) => it.next().map(|&i| i as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelectionIter::All(r) => r.size_hint(),
            SelectionIter::Rows(it) => it.size_hint(),
        }
    }
}

/// A projected, filtered view over one [`ColumnarPartition`].
///
/// Columns stay in their compressed encodings for as long as possible;
/// operators communicate which rows survive through the [`Selection`].
pub struct ColumnBatch<'a> {
    partition: &'a ColumnarPartition,
    /// Original partition column index of each projected column.
    projection: &'a [usize],
    selection: Selection,
}

impl<'a> ColumnBatch<'a> {
    /// View `partition` through `projection` (original column indices, in
    /// output order) with every row selected.
    pub fn new(partition: &'a ColumnarPartition, projection: &'a [usize]) -> ColumnBatch<'a> {
        ColumnBatch {
            partition,
            projection,
            selection: Selection::All(partition.num_rows()),
        }
    }

    /// Number of projected columns.
    pub fn num_columns(&self) -> usize {
        self.projection.len()
    }

    /// Number of rows currently selected.
    pub fn num_selected(&self) -> usize {
        self.selection.len()
    }

    /// The current selection.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Replace the selection (used by predicate kernels).
    pub fn set_selection(&mut self, selection: Selection) {
        self.selection = selection;
    }

    /// Borrow the encoded column behind projected column `i`.
    pub fn column(&self, i: usize) -> &EncodedColumn {
        self.partition.column(self.projection[i])
    }

    /// Logical type of projected column `i`.
    pub fn column_type(&self, i: usize) -> DataType {
        self.partition.column_type(self.projection[i])
    }

    /// Decode the cell at partition row `row`, projected column `col`.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.partition.value_at(row, self.projection[col])
    }

    /// Build a full projected [`Row`] for one partition row (the scratch row
    /// generic expression fallbacks evaluate against).
    pub fn scratch_row(&self, row: usize) -> Row {
        Row::new(
            (0..self.projection.len())
                .map(|c| self.value_at(row, c))
                .collect(),
        )
    }

    /// Decode one projected column for exactly the selected rows, in
    /// selection order. Run-length encodings are walked with a single
    /// cursor rather than probed per value.
    pub fn gather(&self, col: usize) -> Vec<Value> {
        gather_column(self.column(col), self.column_type(col), &self.selection)
    }

    /// Late materialization: build output [`Row`]s for the surviving
    /// selection only. Produces exactly the rows (and row order) that
    /// decoding every column and filtering row-wise would.
    pub fn materialize(&self) -> Vec<Row> {
        let gathered: Vec<Vec<Value>> =
            (0..self.projection.len()).map(|c| self.gather(c)).collect();
        (0..self.selection.len())
            .map(|r| Row::new(gathered.iter().map(|col| col[r].clone()).collect()))
            .collect()
    }
}

/// Decode `col` at the selected indices only.
fn gather_column(col: &EncodedColumn, data_type: DataType, selection: &Selection) -> Vec<Value> {
    match col {
        // Run-length columns: one forward walk over the runs serves the whole
        // ascending selection.
        EncodedColumn::IntRle { runs, nulls, .. } => {
            let mut out = Vec::with_capacity(selection.len());
            let mut run_idx = 0usize;
            let mut run_start = 0usize;
            for i in selection.iter() {
                if is_null_at(nulls, i) {
                    out.push(Value::Null);
                    continue;
                }
                while run_idx < runs.len() && i >= run_start + runs[run_idx].1 as usize {
                    run_start += runs[run_idx].1 as usize;
                    run_idx += 1;
                }
                out.push(match runs.get(run_idx) {
                    Some(&(v, _)) if data_type == DataType::Date => Value::Date(v as i32),
                    Some(&(v, _)) => Value::Int(v),
                    None => Value::Null,
                });
            }
            out
        }
        EncodedColumn::StrRle { runs, nulls, .. } => {
            let mut out = Vec::with_capacity(selection.len());
            let mut run_idx = 0usize;
            let mut run_start = 0usize;
            for i in selection.iter() {
                if is_null_at(nulls, i) {
                    out.push(Value::Null);
                    continue;
                }
                while run_idx < runs.len() && i >= run_start + runs[run_idx].1 as usize {
                    run_start += runs[run_idx].1 as usize;
                    run_idx += 1;
                }
                out.push(match runs.get(run_idx) {
                    Some((s, _)) => Value::Str(s.clone()),
                    None => Value::Null,
                });
            }
            out
        }
        EncodedColumn::IntBitPacked {
            min,
            bits,
            words,
            nulls,
            ..
        } => selection
            .iter()
            .map(|i| {
                if is_null_at(nulls, i) {
                    Value::Null
                } else {
                    let v = min + unpack_bits(words, *bits, i) as i64;
                    if data_type == DataType::Date {
                        Value::Date(v as i32)
                    } else {
                        Value::Int(v)
                    }
                }
            })
            .collect(),
        // O(1)-access encodings: random access per selected row.
        other => selection
            .iter()
            .map(|i| other.value_at(i, data_type))
            .collect(),
    }
}

fn is_null_at(mask: &Option<Vec<bool>>, i: usize) -> bool {
    mask.as_ref().map(|m| !m[i]).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("mode", DataType::Str),
            ("price", DataType::Float),
            ("day", DataType::Date),
        ])
    }

    fn partition(n: usize) -> ColumnarPartition {
        let modes = ["AIR", "SHIP", "TRUCK"];
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                row![
                    i as i64,
                    modes[i % 3],
                    i as f64 * 0.5,
                    Value::Date(10 + (i / 50) as i32)
                ]
            })
            .collect();
        ColumnarPartition::from_rows(&schema(), &rows)
    }

    #[test]
    fn materialize_all_matches_project_rows() {
        let part = partition(300);
        let projection = [1usize, 3];
        let batch = ColumnBatch::new(&part, &projection);
        assert_eq!(batch.materialize(), part.project_rows(&projection));
    }

    #[test]
    fn materialize_selection_matches_filtered_project_rows() {
        let part = partition(300);
        let projection = [0usize, 1, 2, 3];
        let mut batch = ColumnBatch::new(&part, &projection);
        let mut sel = batch.selection().clone();
        sel.retain(|i| i % 7 == 0);
        batch.set_selection(sel);
        let mut expected = part.project_rows(&projection);
        let mut keep = 0usize;
        expected.retain(|_| {
            let k = keep.is_multiple_of(7);
            keep += 1;
            k
        });
        assert_eq!(batch.materialize(), expected);
        assert_eq!(batch.num_selected(), expected.len());
    }

    #[test]
    fn gather_handles_every_encoding_with_sparse_selection() {
        let part = partition(300);
        let projection: Vec<usize> = (0..part.num_columns()).collect();
        for c in 0..part.num_columns() {
            let decoded = part.decode_column(c).unwrap();
            let mut batch = ColumnBatch::new(&part, &projection);
            batch.set_selection(Selection::Rows(vec![0, 3, 149, 150, 298]));
            let gathered = batch.gather(c);
            for (k, &i) in [0usize, 3, 149, 150, 298].iter().enumerate() {
                assert_eq!(gathered[k], decoded[i], "col {c} row {i}");
            }
        }
    }

    #[test]
    fn scratch_row_matches_materialized_row() {
        let part = partition(40);
        let projection = [2usize, 0];
        let batch = ColumnBatch::new(&part, &projection);
        let rows = batch.materialize();
        assert_eq!(batch.scratch_row(17), rows[17]);
    }

    #[test]
    fn empty_selection_materializes_nothing() {
        let part = partition(10);
        let projection = [0usize];
        let mut batch = ColumnBatch::new(&part, &projection);
        batch.set_selection(Selection::Rows(Vec::new()));
        assert!(batch.selection().is_empty());
        assert!(batch.materialize().is_empty());
    }
}
