//! The shuffle manager.
//!
//! Map tasks partition their output into one bucket per reduce task and
//! register those buckets here together with per-bucket statistics (sizes
//! and record counts). Reduce tasks fetch and concatenate the buckets for
//! their partition. The per-bucket statistics are exactly what Partial DAG
//! Execution inspects at the shuffle boundary (§3.1): they drive join
//! strategy selection, reducer-count selection and skew-aware coalescing.
//!
//! Following §5 ("memory-based shuffle"), map output lives in memory; the
//! Hadoop baseline's disk-based shuffle is charged by the cost model rather
//! than modelled with real files.

use std::any::Any;
use std::sync::Arc;

use parking_lot::RwLock;
use shark_common::hash::FxHashMap;
use shark_common::sketch::LogSize;
use shark_common::{Result, SharkError};

/// Statistics for one map task's output, bucketed by reduce partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOutputStats {
    /// Bytes per reduce bucket (exact).
    pub bucket_bytes: Vec<u64>,
    /// Rows per reduce bucket.
    pub bucket_rows: Vec<u64>,
}

impl MapOutputStats {
    /// Total bytes across buckets.
    pub fn total_bytes(&self) -> u64 {
        self.bucket_bytes.iter().sum()
    }

    /// Total rows across buckets.
    pub fn total_rows(&self) -> u64 {
        self.bucket_rows.iter().sum()
    }

    /// The 1-byte-per-bucket lossy encoding the paper ships to the master
    /// (§3.1: "we use lossy compression to record the statistics, limiting
    /// their size to 1–2 KB per task").
    pub fn compressed(&self) -> Vec<LogSize> {
        self.bucket_bytes
            .iter()
            .map(|&b| LogSize::encode(b))
            .collect()
    }
}

/// Aggregated, master-side view of a completed shuffle's map output.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleSummary {
    /// Number of map tasks that produced output.
    pub num_map_tasks: usize,
    /// Number of reduce buckets.
    pub num_buckets: usize,
    /// Total bytes destined to each reduce bucket. Reconstructed from the
    /// lossy per-task encodings, so values carry ≤10 % error like the paper.
    pub bucket_bytes: Vec<u64>,
    /// Total rows destined to each reduce bucket.
    pub bucket_rows: Vec<u64>,
    /// Exact total output bytes.
    pub total_bytes: u64,
    /// Exact total output rows.
    pub total_rows: u64,
}

impl ShuffleSummary {
    /// Ratio between the largest and the average bucket size — a simple skew
    /// indicator used by the PDE optimizer.
    pub fn skew_factor(&self) -> f64 {
        if self.bucket_bytes.is_empty() || self.total_bytes == 0 {
            return 1.0;
        }
        let avg = self.total_bytes as f64 / self.bucket_bytes.len() as f64;
        let max = *self.bucket_bytes.iter().max().unwrap() as f64;
        max / avg
    }
}

struct ShuffleEntry {
    num_map_tasks: usize,
    num_buckets: usize,
    /// Per map task: `Arc<Vec<Vec<T>>>` (outer = reduce bucket).
    outputs: Vec<Option<Arc<dyn Any + Send + Sync>>>,
    stats: Vec<Option<MapOutputStats>>,
}

/// Stores map output buckets and statistics for every shuffle in flight.
#[derive(Default)]
pub struct ShuffleManager {
    shuffles: RwLock<FxHashMap<usize, ShuffleEntry>>,
}

impl ShuffleManager {
    /// Create an empty shuffle manager.
    pub fn new() -> ShuffleManager {
        ShuffleManager::default()
    }

    /// Register a shuffle before its map stage runs.
    pub fn register(&self, shuffle_id: usize, num_map_tasks: usize, num_buckets: usize) {
        let mut guard = self.shuffles.write();
        guard.entry(shuffle_id).or_insert_with(|| ShuffleEntry {
            num_map_tasks,
            num_buckets,
            outputs: (0..num_map_tasks).map(|_| None).collect(),
            stats: (0..num_map_tasks).map(|_| None).collect(),
        });
    }

    /// Store one map task's bucketed output (`buckets[reduce_partition]`).
    pub fn put_map_output<T: Send + Sync + 'static>(
        &self,
        shuffle_id: usize,
        map_task: usize,
        buckets: Vec<Vec<T>>,
        stats: MapOutputStats,
    ) -> Result<()> {
        let mut guard = self.shuffles.write();
        let entry = guard.get_mut(&shuffle_id).ok_or_else(|| {
            SharkError::Execution(format!("shuffle {shuffle_id} was not registered"))
        })?;
        if map_task >= entry.num_map_tasks {
            return Err(SharkError::Execution(format!(
                "map task {map_task} out of range for shuffle {shuffle_id}"
            )));
        }
        if buckets.len() != entry.num_buckets {
            return Err(SharkError::Execution(format!(
                "expected {} buckets, got {}",
                entry.num_buckets,
                buckets.len()
            )));
        }
        entry.outputs[map_task] = Some(Arc::new(buckets));
        entry.stats[map_task] = Some(stats);
        Ok(())
    }

    /// Whether every map task of the shuffle has registered output.
    pub fn is_complete(&self, shuffle_id: usize) -> bool {
        let guard = self.shuffles.read();
        match guard.get(&shuffle_id) {
            Some(e) => e.outputs.iter().all(|o| o.is_some()),
            None => false,
        }
    }

    /// Number of reduce buckets of a registered shuffle.
    pub fn num_buckets(&self, shuffle_id: usize) -> Option<usize> {
        self.shuffles.read().get(&shuffle_id).map(|e| e.num_buckets)
    }

    /// Fetch and concatenate every map task's bucket for `reduce_partition`.
    /// Returns the rows plus the number of bytes fetched (for metrics).
    pub fn fetch<T: Clone + Send + Sync + 'static>(
        &self,
        shuffle_id: usize,
        reduce_partition: usize,
    ) -> Result<(Vec<T>, u64)> {
        let guard = self.shuffles.read();
        let entry = guard.get(&shuffle_id).ok_or_else(|| {
            SharkError::Execution(format!("shuffle {shuffle_id} was not registered"))
        })?;
        let mut out = Vec::new();
        let mut bytes = 0u64;
        for (mi, output) in entry.outputs.iter().enumerate() {
            let output = output.as_ref().ok_or_else(|| {
                SharkError::Execution(format!(
                    "shuffle {shuffle_id}: map task {mi} output missing (stage not run?)"
                ))
            })?;
            let typed = output.clone().downcast::<Vec<Vec<T>>>().map_err(|_| {
                SharkError::Execution(format!(
                    "shuffle {shuffle_id}: map output has unexpected element type"
                ))
            })?;
            if reduce_partition >= typed.len() {
                return Err(SharkError::Execution(format!(
                    "reduce partition {reduce_partition} out of range"
                )));
            }
            out.extend(typed[reduce_partition].iter().cloned());
            if let Some(stats) = &entry.stats[mi] {
                bytes += stats.bucket_bytes[reduce_partition];
            }
        }
        Ok((out, bytes))
    }

    /// Master-side aggregated statistics of a completed map stage.
    pub fn summary(&self, shuffle_id: usize) -> Result<ShuffleSummary> {
        let guard = self.shuffles.read();
        let entry = guard.get(&shuffle_id).ok_or_else(|| {
            SharkError::Execution(format!("shuffle {shuffle_id} was not registered"))
        })?;
        let mut bucket_bytes = vec![0u64; entry.num_buckets];
        let mut bucket_rows = vec![0u64; entry.num_buckets];
        let mut total_bytes = 0u64;
        let mut total_rows = 0u64;
        for stats in entry.stats.iter().flatten() {
            // The master sees the lossy log-encoded sizes, like the paper.
            for (i, code) in stats.compressed().iter().enumerate() {
                bucket_bytes[i] += code.decode();
            }
            for (i, rows) in stats.bucket_rows.iter().enumerate() {
                bucket_rows[i] += rows;
            }
            total_bytes += stats.total_bytes();
            total_rows += stats.total_rows();
        }
        Ok(ShuffleSummary {
            num_map_tasks: entry.num_map_tasks,
            num_buckets: entry.num_buckets,
            bucket_bytes,
            bucket_rows,
            total_bytes,
            total_rows,
        })
    }

    /// Remove a shuffle's data (e.g. after the consuming job finishes).
    pub fn remove(&self, shuffle_id: usize) {
        self.shuffles.write().remove(&shuffle_id);
    }

    /// Remove all shuffle data.
    pub fn clear(&self) {
        self.shuffles.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(bytes: Vec<u64>, rows: Vec<u64>) -> MapOutputStats {
        MapOutputStats {
            bucket_bytes: bytes,
            bucket_rows: rows,
        }
    }

    #[test]
    fn roundtrip_two_map_tasks() {
        let m = ShuffleManager::new();
        m.register(1, 2, 2);
        assert!(!m.is_complete(1));
        m.put_map_output(
            1,
            0,
            vec![vec![1i64], vec![2, 3]],
            stats(vec![8, 16], vec![1, 2]),
        )
        .unwrap();
        m.put_map_output(
            1,
            1,
            vec![vec![4i64], vec![]],
            stats(vec![8, 0], vec![1, 0]),
        )
        .unwrap();
        assert!(m.is_complete(1));
        let (bucket0, bytes0): (Vec<i64>, u64) = m.fetch(1, 0).unwrap();
        assert_eq!(bucket0, vec![1, 4]);
        assert_eq!(bytes0, 16);
        let (bucket1, _): (Vec<i64>, u64) = m.fetch(1, 1).unwrap();
        assert_eq!(bucket1, vec![2, 3]);
        let s = m.summary(1).unwrap();
        assert_eq!(s.total_rows, 4);
        assert_eq!(s.bucket_rows, vec![2, 2]);
        assert_eq!(s.num_map_tasks, 2);
    }

    #[test]
    fn summary_uses_lossy_sizes_but_close() {
        let m = ShuffleManager::new();
        m.register(9, 1, 1);
        m.put_map_output(
            9,
            0,
            vec![vec![0u8; 1000]],
            stats(vec![1_000_000], vec![1000]),
        )
        .unwrap();
        let s = m.summary(9).unwrap();
        let err = (s.bucket_bytes[0] as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err < 0.10, "lossy size error too large: {err}");
        assert_eq!(s.total_bytes, 1_000_000); // exact total kept too
    }

    #[test]
    fn errors_on_misuse() {
        let m = ShuffleManager::new();
        assert!(m
            .put_map_output(5, 0, vec![vec![1i64]], stats(vec![8], vec![1]))
            .is_err());
        m.register(5, 1, 2);
        // wrong bucket count
        assert!(m
            .put_map_output(5, 0, vec![vec![1i64]], stats(vec![8], vec![1]))
            .is_err());
        // out-of-range map task
        assert!(m
            .put_map_output(
                5,
                3,
                vec![vec![1i64], vec![]],
                stats(vec![8, 0], vec![1, 0])
            )
            .is_err());
        // fetching before map stage ran
        let r: Result<(Vec<i64>, u64)> = m.fetch(5, 0);
        assert!(r.is_err());
    }

    #[test]
    fn wrong_fetch_type_is_an_error() {
        let m = ShuffleManager::new();
        m.register(2, 1, 1);
        m.put_map_output(2, 0, vec![vec![1i64]], stats(vec![8], vec![1]))
            .unwrap();
        let r: Result<(Vec<String>, u64)> = m.fetch(2, 0);
        assert!(r.is_err());
    }

    #[test]
    fn skew_factor_detects_imbalance() {
        let balanced = ShuffleSummary {
            num_map_tasks: 1,
            num_buckets: 4,
            bucket_bytes: vec![100, 100, 100, 100],
            bucket_rows: vec![1, 1, 1, 1],
            total_bytes: 400,
            total_rows: 4,
        };
        assert!((balanced.skew_factor() - 1.0).abs() < 1e-9);
        let skewed = ShuffleSummary {
            bucket_bytes: vec![1000, 10, 10, 10],
            total_bytes: 1030,
            ..balanced
        };
        assert!(skewed.skew_factor() > 3.0);
    }

    #[test]
    fn remove_and_clear() {
        let m = ShuffleManager::new();
        m.register(1, 1, 1);
        m.remove(1);
        assert!(!m.is_complete(1));
        m.register(2, 1, 1);
        m.clear();
        assert!(m.num_buckets(2).is_none());
    }
}
