//! The cache ("memstore") manager.
//!
//! Shark keeps exactly one in-memory copy of each cached RDD partition and
//! relies on lineage, not replication, for fault tolerance (§2.2). The cache
//! manager therefore records which simulated node holds each partition so
//! that a node failure can invalidate exactly the partitions that lived
//! there; the scheduler then recomputes them from their lineage (Figure 9).

use std::any::Any;
use std::sync::Arc;

use parking_lot::RwLock;
use shark_common::hash::FxHashMap;

/// One cached partition.
#[derive(Clone)]
struct CachedPartition {
    data: Arc<dyn Any + Send + Sync>,
    node: usize,
    bytes: u64,
    rows: u64,
}

/// Tracks cached RDD partitions, their sizes and their node placement.
#[derive(Default)]
pub struct CacheManager {
    entries: RwLock<FxHashMap<(usize, usize), CachedPartition>>,
}

impl CacheManager {
    /// Create an empty cache manager.
    pub fn new() -> CacheManager {
        CacheManager::default()
    }

    /// Store a computed partition. `node` is the simulated worker that holds
    /// the only copy.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        rdd_id: usize,
        partition: usize,
        data: Arc<Vec<T>>,
        node: usize,
        bytes: u64,
    ) {
        let rows = data.len() as u64;
        self.entries.write().insert(
            (rdd_id, partition),
            CachedPartition {
                data,
                node,
                bytes,
                rows,
            },
        );
    }

    /// Fetch a cached partition if present.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        rdd_id: usize,
        partition: usize,
    ) -> Option<Arc<Vec<T>>> {
        let guard = self.entries.read();
        let entry = guard.get(&(rdd_id, partition))?;
        entry.data.clone().downcast::<Vec<T>>().ok()
    }

    /// The node holding a cached partition, if cached.
    pub fn location(&self, rdd_id: usize, partition: usize) -> Option<usize> {
        self.entries.read().get(&(rdd_id, partition)).map(|e| e.node)
    }

    /// Whether a partition is cached.
    pub fn contains(&self, rdd_id: usize, partition: usize) -> bool {
        self.entries.read().contains_key(&(rdd_id, partition))
    }

    /// Number of partitions cached for an RDD.
    pub fn cached_partitions(&self, rdd_id: usize) -> usize {
        self.entries
            .read()
            .keys()
            .filter(|(id, _)| *id == rdd_id)
            .count()
    }

    /// Total bytes cached across all RDDs.
    pub fn total_bytes(&self) -> u64 {
        self.entries.read().values().map(|e| e.bytes).sum()
    }

    /// Total rows cached across all RDDs.
    pub fn total_rows(&self) -> u64 {
        self.entries.read().values().map(|e| e.rows).sum()
    }

    /// Drop every partition cached on `node` (simulating the node's death),
    /// returning the number of partitions lost.
    pub fn drop_node(&self, node: usize) -> usize {
        let mut guard = self.entries.write();
        let before = guard.len();
        guard.retain(|_, e| e.node != node);
        before - guard.len()
    }

    /// Drop all cached partitions of one RDD (uncache / table drop).
    pub fn drop_rdd(&self, rdd_id: usize) -> usize {
        let mut guard = self.entries.write();
        let before = guard.len();
        guard.retain(|(id, _), _| *id != rdd_id);
        before - guard.len()
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64, 2, 3]), 5, 24);
        let got: Arc<Vec<i64>> = cache.get(1, 0).unwrap();
        assert_eq!(*got, vec![1, 2, 3]);
        assert_eq!(cache.location(1, 0), Some(5));
        assert!(cache.contains(1, 0));
        assert!(!cache.contains(1, 1));
        assert_eq!(cache.total_bytes(), 24);
        assert_eq!(cache.total_rows(), 3);
    }

    #[test]
    fn wrong_type_returns_none() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        let got: Option<Arc<Vec<String>>> = cache.get(1, 0);
        assert!(got.is_none());
    }

    #[test]
    fn drop_node_removes_only_that_nodes_partitions() {
        let cache = CacheManager::new();
        for p in 0..10usize {
            cache.put(7, p, Arc::new(vec![p]), p % 3, 8);
        }
        let lost = cache.drop_node(0);
        assert_eq!(lost, 4); // partitions 0,3,6,9
        assert_eq!(cache.cached_partitions(7), 6);
        assert!(!cache.contains(7, 0));
        assert!(cache.contains(7, 1));
    }

    #[test]
    fn drop_rdd_and_clear() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        cache.put(2, 0, Arc::new(vec![2i64]), 0, 8);
        assert_eq!(cache.drop_rdd(1), 1);
        assert_eq!(cache.cached_partitions(1), 0);
        assert_eq!(cache.cached_partitions(2), 1);
        cache.clear();
        assert_eq!(cache.total_bytes(), 0);
    }
}
