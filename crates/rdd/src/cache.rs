//! The cache ("memstore") manager.
//!
//! Shark keeps exactly one in-memory copy of each cached RDD partition and
//! relies on lineage, not replication, for fault tolerance (§2.2). The cache
//! manager therefore records which simulated node holds each partition so
//! that a node failure can invalidate exactly the partitions that lived
//! there; the scheduler then recomputes them from their lineage (Figure 9).

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use shark_common::hash::FxHashMap;

/// One cached partition.
#[derive(Clone)]
struct CachedPartition {
    data: Arc<dyn Any + Send + Sync>,
    node: usize,
    bytes: u64,
    rows: u64,
}

/// What an [`CacheManager::evict_rdd`] call removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictionStats {
    /// Partitions dropped.
    pub partitions: usize,
    /// Bytes freed.
    pub bytes: u64,
}

/// Tracks cached RDD partitions, their sizes and their node placement, plus
/// a per-RDD last-access clock so a memory manager can evict whole RDDs in
/// least-recently-used order ([`CacheManager::lru_rdd`] +
/// [`CacheManager::evict_rdd`]).
#[derive(Default)]
pub struct CacheManager {
    entries: RwLock<FxHashMap<(usize, usize), CachedPartition>>,
    /// Last-access tick per cached RDD (LRU order for whole-RDD eviction).
    touches: RwLock<FxHashMap<usize, u64>>,
    clock: AtomicU64,
}

impl CacheManager {
    /// Create an empty cache manager.
    pub fn new() -> CacheManager {
        CacheManager::default()
    }

    /// Store a computed partition. `node` is the simulated worker that holds
    /// the only copy.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        rdd_id: usize,
        partition: usize,
        data: Arc<Vec<T>>,
        node: usize,
        bytes: u64,
    ) {
        let rows = data.len() as u64;
        self.entries.write().insert(
            (rdd_id, partition),
            CachedPartition {
                data,
                node,
                bytes,
                rows,
            },
        );
        self.touch_rdd(rdd_id);
    }

    /// Fetch a cached partition if present, refreshing the RDD's LRU clock.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        rdd_id: usize,
        partition: usize,
    ) -> Option<Arc<Vec<T>>> {
        let data = {
            let guard = self.entries.read();
            let entry = guard.get(&(rdd_id, partition))?;
            entry.data.clone()
        };
        self.touch_rdd(rdd_id);
        data.downcast::<Vec<T>>().ok()
    }

    /// Mark an RDD as just-used for LRU purposes.
    pub fn touch_rdd(&self, rdd_id: usize) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.touches.write().insert(rdd_id, tick);
    }

    /// The node holding a cached partition, if cached.
    pub fn location(&self, rdd_id: usize, partition: usize) -> Option<usize> {
        self.entries
            .read()
            .get(&(rdd_id, partition))
            .map(|e| e.node)
    }

    /// Whether a partition is cached.
    pub fn contains(&self, rdd_id: usize, partition: usize) -> bool {
        self.entries.read().contains_key(&(rdd_id, partition))
    }

    /// Number of partitions cached for an RDD.
    pub fn cached_partitions(&self, rdd_id: usize) -> usize {
        self.entries
            .read()
            .keys()
            .filter(|(id, _)| *id == rdd_id)
            .count()
    }

    /// Total bytes cached across all RDDs.
    pub fn total_bytes(&self) -> u64 {
        self.entries.read().values().map(|e| e.bytes).sum()
    }

    /// Bytes cached for one RDD.
    pub fn rdd_bytes(&self, rdd_id: usize) -> u64 {
        self.entries
            .read()
            .iter()
            .filter(|((id, _), _)| *id == rdd_id)
            .map(|(_, e)| e.bytes)
            .sum()
    }

    /// Per-RDD byte accounting: `(rdd_id, bytes)` for every RDD with at
    /// least one cached partition, sorted by id.
    pub fn per_rdd_bytes(&self) -> Vec<(usize, u64)> {
        let mut by_rdd: FxHashMap<usize, u64> = FxHashMap::default();
        for ((id, _), e) in self.entries.read().iter() {
            *by_rdd.entry(*id).or_insert(0) += e.bytes;
        }
        let mut out: Vec<(usize, u64)> = by_rdd.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// The cached RDD that was least recently touched, if any.
    pub fn lru_rdd(&self) -> Option<usize> {
        let cached: std::collections::HashSet<usize> =
            self.entries.read().keys().map(|(id, _)| *id).collect();
        self.touches
            .read()
            .iter()
            .filter(|(id, _)| cached.contains(id))
            .min_by_key(|(_, &tick)| tick)
            .map(|(&id, _)| id)
    }

    /// Evict every cached partition of one RDD, returning how many
    /// partitions and bytes were freed. Unlike a node failure this is a
    /// *policy* eviction: the data is recomputable from lineage, so the
    /// caller only needs the accounting.
    pub fn evict_rdd(&self, rdd_id: usize) -> EvictionStats {
        let mut stats = EvictionStats::default();
        {
            let mut guard = self.entries.write();
            guard.retain(|(id, _), e| {
                if *id == rdd_id {
                    stats.partitions += 1;
                    stats.bytes += e.bytes;
                    false
                } else {
                    true
                }
            });
        }
        self.touches.write().remove(&rdd_id);
        stats
    }

    /// Total rows cached across all RDDs.
    pub fn total_rows(&self) -> u64 {
        self.entries.read().values().map(|e| e.rows).sum()
    }

    /// Drop every partition cached on `node` (simulating the node's death),
    /// returning the number of partitions lost.
    pub fn drop_node(&self, node: usize) -> usize {
        let mut guard = self.entries.write();
        let before = guard.len();
        guard.retain(|_, e| e.node != node);
        before - guard.len()
    }

    /// Drop all cached partitions of one RDD (uncache / table drop).
    pub fn drop_rdd(&self, rdd_id: usize) -> usize {
        self.evict_rdd(rdd_id).partitions
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.touches.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64, 2, 3]), 5, 24);
        let got: Arc<Vec<i64>> = cache.get(1, 0).unwrap();
        assert_eq!(*got, vec![1, 2, 3]);
        assert_eq!(cache.location(1, 0), Some(5));
        assert!(cache.contains(1, 0));
        assert!(!cache.contains(1, 1));
        assert_eq!(cache.total_bytes(), 24);
        assert_eq!(cache.total_rows(), 3);
    }

    #[test]
    fn wrong_type_returns_none() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        let got: Option<Arc<Vec<String>>> = cache.get(1, 0);
        assert!(got.is_none());
    }

    #[test]
    fn drop_node_removes_only_that_nodes_partitions() {
        let cache = CacheManager::new();
        for p in 0..10usize {
            cache.put(7, p, Arc::new(vec![p]), p % 3, 8);
        }
        let lost = cache.drop_node(0);
        assert_eq!(lost, 4); // partitions 0,3,6,9
        assert_eq!(cache.cached_partitions(7), 6);
        assert!(!cache.contains(7, 0));
        assert!(cache.contains(7, 1));
    }

    #[test]
    fn byte_accounting_per_rdd() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 100);
        cache.put(1, 1, Arc::new(vec![2i64]), 1, 50);
        cache.put(2, 0, Arc::new(vec![3i64]), 0, 30);
        assert_eq!(cache.rdd_bytes(1), 150);
        assert_eq!(cache.rdd_bytes(2), 30);
        assert_eq!(cache.rdd_bytes(9), 0);
        assert_eq!(cache.per_rdd_bytes(), vec![(1, 150), (2, 30)]);
        assert_eq!(cache.total_bytes(), 180);
    }

    #[test]
    fn evict_rdd_frees_partitions_and_bytes() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 100);
        cache.put(1, 1, Arc::new(vec![2i64]), 1, 50);
        cache.put(2, 0, Arc::new(vec![3i64]), 0, 30);
        let stats = cache.evict_rdd(1);
        assert_eq!(
            stats,
            EvictionStats {
                partitions: 2,
                bytes: 150
            }
        );
        assert!(!cache.contains(1, 0));
        assert!(cache.contains(2, 0));
        assert_eq!(cache.evict_rdd(1), EvictionStats::default());
    }

    #[test]
    fn lru_order_follows_touches() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        cache.put(2, 0, Arc::new(vec![2i64]), 0, 8);
        cache.put(3, 0, Arc::new(vec![3i64]), 0, 8);
        // Access order: 1, 3 — leaving 2 least recently used.
        let _: Option<Arc<Vec<i64>>> = cache.get(1, 0);
        let _: Option<Arc<Vec<i64>>> = cache.get(3, 0);
        assert_eq!(cache.lru_rdd(), Some(2));
        cache.evict_rdd(2);
        assert_eq!(cache.lru_rdd(), Some(1));
        cache.touch_rdd(1);
        assert_eq!(cache.lru_rdd(), Some(3));
        cache.clear();
        assert_eq!(cache.lru_rdd(), None);
    }

    #[test]
    fn drop_rdd_and_clear() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        cache.put(2, 0, Arc::new(vec![2i64]), 0, 8);
        assert_eq!(cache.drop_rdd(1), 1);
        assert_eq!(cache.cached_partitions(1), 0);
        assert_eq!(cache.cached_partitions(2), 1);
        cache.clear();
        assert_eq!(cache.total_bytes(), 0);
    }
}
