//! The cache ("memstore") manager.
//!
//! Shark keeps exactly one in-memory copy of each cached RDD partition and
//! relies on lineage, not replication, for fault tolerance (§2.2). The cache
//! manager therefore records which simulated node holds each partition so
//! that a node failure can invalidate exactly the partitions that lived
//! there; the scheduler then recomputes them from their lineage (Figure 9).
//!
//! Accounting, recency and pinning are all *partition*-granular: every
//! cached `(rdd, partition)` pair carries its own last-access tick and pin
//! count, so a memory manager can evict exactly the coldest partitions
//! ([`CacheManager::lru_partition`] + [`CacheManager::evict_partition`])
//! instead of dropping whole RDDs — whole-RDD eviction
//! ([`CacheManager::evict_rdd`]) remains as the wholesale limit case.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use shark_common::hash::FxHashMap;

/// One cached partition.
#[derive(Clone)]
struct CachedPartition {
    data: Arc<dyn Any + Send + Sync>,
    node: usize,
    bytes: u64,
    rows: u64,
}

/// What an eviction call removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictionStats {
    /// Partitions dropped.
    pub partitions: usize,
    /// Bytes freed.
    pub bytes: u64,
}

/// One cached RDD partition eligible for eviction, as reported by
/// [`CacheManager::lru_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedPartitionInfo {
    /// Owning RDD id.
    pub rdd_id: usize,
    /// Partition index.
    pub partition: usize,
    /// Cached bytes.
    pub bytes: u64,
    /// Last-access tick (smaller = colder).
    pub last_tick: u64,
}

/// Tracks cached RDD partitions, their sizes and their node placement, plus
/// a per-partition last-access clock and pin counts so a memory manager can
/// evict individual partitions in least-recently-used order.
/// Callback invoked with `(rdd_id, partition, bytes)` after each successful
/// *policy* eviction (not node failures or drops) — the hook a serving layer
/// uses to observe or demote evicted RDD partitions without the cache
/// depending on it.
pub type EvictionObserver = Box<dyn Fn(usize, usize, u64) + Send + Sync>;

#[derive(Default)]
pub struct CacheManager {
    entries: RwLock<FxHashMap<(usize, usize), CachedPartition>>,
    /// Last-access tick per cached partition (partition-granular LRU).
    touches: RwLock<FxHashMap<(usize, usize), u64>>,
    /// Pin counts per partition: pinned partitions are never LRU victims.
    pins: RwLock<FxHashMap<(usize, usize), usize>>,
    clock: AtomicU64,
    /// Observer of policy evictions (last installed wins).
    eviction_observer: RwLock<Option<EvictionObserver>>,
}

impl CacheManager {
    /// Create an empty cache manager.
    pub fn new() -> CacheManager {
        CacheManager::default()
    }

    /// Store a computed partition. `node` is the simulated worker that holds
    /// the only copy.
    pub fn put<T: Send + Sync + 'static>(
        &self,
        rdd_id: usize,
        partition: usize,
        data: Arc<Vec<T>>,
        node: usize,
        bytes: u64,
    ) {
        let rows = data.len() as u64;
        self.entries.write().insert(
            (rdd_id, partition),
            CachedPartition {
                data,
                node,
                bytes,
                rows,
            },
        );
        self.touch_partition(rdd_id, partition);
    }

    /// Fetch a cached partition if present, refreshing its LRU tick.
    pub fn get<T: Send + Sync + 'static>(
        &self,
        rdd_id: usize,
        partition: usize,
    ) -> Option<Arc<Vec<T>>> {
        let data = {
            let guard = self.entries.read();
            let entry = guard.get(&(rdd_id, partition))?;
            entry.data.clone()
        };
        self.touch_partition(rdd_id, partition);
        data.downcast::<Vec<T>>().ok()
    }

    /// Mark one partition as just-used for LRU purposes.
    pub fn touch_partition(&self, rdd_id: usize, partition: usize) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.touches.write().insert((rdd_id, partition), tick);
    }

    /// Mark every cached partition of an RDD as just-used.
    pub fn touch_rdd(&self, rdd_id: usize) {
        let partitions: Vec<usize> = {
            let guard = self.entries.read();
            guard
                .keys()
                .filter(|(id, _)| *id == rdd_id)
                .map(|(_, p)| *p)
                .collect()
        };
        for p in partitions {
            self.touch_partition(rdd_id, p);
        }
    }

    /// Pin one cached partition against eviction. Pins nest; release with
    /// [`CacheManager::unpin_partition`].
    pub fn pin_partition(&self, rdd_id: usize, partition: usize) {
        // Taking the entries lock first serializes this against
        // `evict_partition` (same lock order), so a pin either lands before
        // the eviction's pin re-check or waits until the slot is gone —
        // never in between.
        let _entries = self.entries.read();
        *self.pins.write().entry((rdd_id, partition)).or_insert(0) += 1;
    }

    /// Release one pin on a partition.
    pub fn unpin_partition(&self, rdd_id: usize, partition: usize) {
        let mut pins = self.pins.write();
        if let Some(count) = pins.get_mut(&(rdd_id, partition)) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&(rdd_id, partition));
            }
        }
    }

    /// Whether a partition is currently pinned.
    pub fn is_pinned(&self, rdd_id: usize, partition: usize) -> bool {
        self.pins.read().contains_key(&(rdd_id, partition))
    }

    /// The node holding a cached partition, if cached.
    pub fn location(&self, rdd_id: usize, partition: usize) -> Option<usize> {
        self.entries
            .read()
            .get(&(rdd_id, partition))
            .map(|e| e.node)
    }

    /// Whether a partition is cached.
    pub fn contains(&self, rdd_id: usize, partition: usize) -> bool {
        self.entries.read().contains_key(&(rdd_id, partition))
    }

    /// Number of partitions cached for an RDD.
    pub fn cached_partitions(&self, rdd_id: usize) -> usize {
        self.entries
            .read()
            .keys()
            .filter(|(id, _)| *id == rdd_id)
            .count()
    }

    /// Total bytes cached across all RDDs.
    pub fn total_bytes(&self) -> u64 {
        self.entries.read().values().map(|e| e.bytes).sum()
    }

    /// Bytes cached for one RDD.
    pub fn rdd_bytes(&self, rdd_id: usize) -> u64 {
        self.entries
            .read()
            .iter()
            .filter(|((id, _), _)| *id == rdd_id)
            .map(|(_, e)| e.bytes)
            .sum()
    }

    /// Per-RDD byte accounting: `(rdd_id, bytes)` for every RDD with at
    /// least one cached partition, sorted by id.
    pub fn per_rdd_bytes(&self) -> Vec<(usize, u64)> {
        let mut by_rdd: FxHashMap<usize, u64> = FxHashMap::default();
        for ((id, _), e) in self.entries.read().iter() {
            *by_rdd.entry(*id).or_insert(0) += e.bytes;
        }
        let mut out: Vec<(usize, u64)> = by_rdd.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Every cached, unpinned partition with its bytes and last-access tick
    /// — the candidate list for partition-granular LRU eviction.
    pub fn lru_candidates(&self) -> Vec<CachedPartitionInfo> {
        let entries = self.entries.read();
        let touches = self.touches.read();
        let pins = self.pins.read();
        entries
            .iter()
            .filter(|(key, _)| !pins.contains_key(key))
            .map(|(&(rdd_id, partition), e)| CachedPartitionInfo {
                rdd_id,
                partition,
                bytes: e.bytes,
                last_tick: touches.get(&(rdd_id, partition)).copied().unwrap_or(0),
            })
            .collect()
    }

    /// The cached, unpinned partition that was least recently touched.
    pub fn lru_partition(&self) -> Option<(usize, usize)> {
        self.lru_candidates()
            .into_iter()
            .min_by_key(|c| (c.last_tick, c.rdd_id, c.partition))
            .map(|c| (c.rdd_id, c.partition))
    }

    /// The cached RDD holding the least recently touched unpinned partition,
    /// if any (whole-RDD LRU, derived from the partition clock).
    pub fn lru_rdd(&self) -> Option<usize> {
        self.lru_partition().map(|(id, _)| id)
    }

    /// Evict one cached partition, returning the accounting. Unlike a node
    /// failure this is a *policy* eviction: the data is recomputable from
    /// lineage, so the caller only needs the accounting. Pinned partitions
    /// are refused (zero stats returned): pins are re-checked here, under
    /// the entries lock, so a pin taken after a caller's
    /// [`CacheManager::lru_candidates`] snapshot still protects its
    /// partition.
    pub fn evict_partition(&self, rdd_id: usize, partition: usize) -> EvictionStats {
        let removed = {
            let mut entries = self.entries.write();
            if self.pins.read().contains_key(&(rdd_id, partition)) {
                return EvictionStats::default();
            }
            entries.remove(&(rdd_id, partition))
        };
        self.touches.write().remove(&(rdd_id, partition));
        match removed {
            Some(e) => {
                self.notify_evicted(rdd_id, partition, e.bytes);
                EvictionStats {
                    partitions: 1,
                    bytes: e.bytes,
                }
            }
            None => EvictionStats::default(),
        }
    }

    /// Evict every cached partition of one RDD, returning how many
    /// partitions and bytes were freed.
    pub fn evict_rdd(&self, rdd_id: usize) -> EvictionStats {
        let mut stats = EvictionStats::default();
        let mut evicted: Vec<(usize, u64)> = Vec::new();
        {
            let mut guard = self.entries.write();
            guard.retain(|(id, partition), e| {
                if *id == rdd_id {
                    stats.partitions += 1;
                    stats.bytes += e.bytes;
                    evicted.push((*partition, e.bytes));
                    false
                } else {
                    true
                }
            });
        }
        self.touches.write().retain(|(id, _), _| *id != rdd_id);
        for (partition, bytes) in evicted {
            self.notify_evicted(rdd_id, partition, bytes);
        }
        stats
    }

    /// Install the policy-eviction observer (last installed wins). The
    /// observer fires after the partition is already gone from the cache
    /// and must not call back into this manager.
    pub fn set_eviction_observer(&self, observer: EvictionObserver) {
        *self.eviction_observer.write() = Some(observer);
    }

    fn notify_evicted(&self, rdd_id: usize, partition: usize, bytes: u64) {
        if let Some(observer) = self.eviction_observer.read().as_ref() {
            observer(rdd_id, partition, bytes);
        }
    }

    /// Total rows cached across all RDDs.
    pub fn total_rows(&self) -> u64 {
        self.entries.read().values().map(|e| e.rows).sum()
    }

    /// Drop every partition cached on `node` (simulating the node's death),
    /// returning the number of partitions lost.
    pub fn drop_node(&self, node: usize) -> usize {
        let mut guard = self.entries.write();
        let before = guard.len();
        guard.retain(|_, e| e.node != node);
        before - guard.len()
    }

    /// Drop all cached partitions of one RDD (uncache / table drop).
    pub fn drop_rdd(&self, rdd_id: usize) -> usize {
        self.evict_rdd(rdd_id).partitions
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.touches.write().clear();
        self.pins.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64, 2, 3]), 5, 24);
        let got: Arc<Vec<i64>> = cache.get(1, 0).unwrap();
        assert_eq!(*got, vec![1, 2, 3]);
        assert_eq!(cache.location(1, 0), Some(5));
        assert!(cache.contains(1, 0));
        assert!(!cache.contains(1, 1));
        assert_eq!(cache.total_bytes(), 24);
        assert_eq!(cache.total_rows(), 3);
    }

    #[test]
    fn wrong_type_returns_none() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        let got: Option<Arc<Vec<String>>> = cache.get(1, 0);
        assert!(got.is_none());
    }

    #[test]
    fn drop_node_removes_only_that_nodes_partitions() {
        let cache = CacheManager::new();
        for p in 0..10usize {
            cache.put(7, p, Arc::new(vec![p]), p % 3, 8);
        }
        let lost = cache.drop_node(0);
        assert_eq!(lost, 4); // partitions 0,3,6,9
        assert_eq!(cache.cached_partitions(7), 6);
        assert!(!cache.contains(7, 0));
        assert!(cache.contains(7, 1));
    }

    #[test]
    fn byte_accounting_per_rdd() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 100);
        cache.put(1, 1, Arc::new(vec![2i64]), 1, 50);
        cache.put(2, 0, Arc::new(vec![3i64]), 0, 30);
        assert_eq!(cache.rdd_bytes(1), 150);
        assert_eq!(cache.rdd_bytes(2), 30);
        assert_eq!(cache.rdd_bytes(9), 0);
        assert_eq!(cache.per_rdd_bytes(), vec![(1, 150), (2, 30)]);
        assert_eq!(cache.total_bytes(), 180);
    }

    #[test]
    fn evict_rdd_frees_partitions_and_bytes() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 100);
        cache.put(1, 1, Arc::new(vec![2i64]), 1, 50);
        cache.put(2, 0, Arc::new(vec![3i64]), 0, 30);
        let stats = cache.evict_rdd(1);
        assert_eq!(
            stats,
            EvictionStats {
                partitions: 2,
                bytes: 150
            }
        );
        assert!(!cache.contains(1, 0));
        assert!(cache.contains(2, 0));
        assert_eq!(cache.evict_rdd(1), EvictionStats::default());
    }

    #[test]
    fn evict_partition_frees_only_that_partition() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 100);
        cache.put(1, 1, Arc::new(vec![2i64]), 1, 50);
        let stats = cache.evict_partition(1, 0);
        assert_eq!(
            stats,
            EvictionStats {
                partitions: 1,
                bytes: 100
            }
        );
        assert!(!cache.contains(1, 0));
        assert!(cache.contains(1, 1));
        assert_eq!(cache.total_bytes(), 50);
        assert_eq!(cache.evict_partition(1, 0), EvictionStats::default());
    }

    #[test]
    fn lru_order_follows_touches() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        cache.put(2, 0, Arc::new(vec![2i64]), 0, 8);
        cache.put(3, 0, Arc::new(vec![3i64]), 0, 8);
        // Access order: 1, 3 — leaving 2 least recently used.
        let _: Option<Arc<Vec<i64>>> = cache.get(1, 0);
        let _: Option<Arc<Vec<i64>>> = cache.get(3, 0);
        assert_eq!(cache.lru_rdd(), Some(2));
        assert_eq!(cache.lru_partition(), Some((2, 0)));
        cache.evict_rdd(2);
        assert_eq!(cache.lru_rdd(), Some(1));
        cache.touch_rdd(1);
        assert_eq!(cache.lru_rdd(), Some(3));
        cache.clear();
        assert_eq!(cache.lru_rdd(), None);
    }

    #[test]
    fn partition_lru_is_finer_than_rdd_lru() {
        let cache = CacheManager::new();
        // One RDD, three partitions, touched in order 0, 2 — partition 1 is
        // the coldest even though the *RDD* was just used.
        cache.put(5, 0, Arc::new(vec![0i64]), 0, 8);
        cache.put(5, 1, Arc::new(vec![1i64]), 1, 8);
        cache.put(5, 2, Arc::new(vec![2i64]), 2, 8);
        let _: Option<Arc<Vec<i64>>> = cache.get(5, 0);
        let _: Option<Arc<Vec<i64>>> = cache.get(5, 2);
        assert_eq!(cache.lru_partition(), Some((5, 1)));
        let stats = cache.evict_partition(5, 1);
        assert_eq!(stats.partitions, 1);
        assert_eq!(cache.cached_partitions(5), 2);
        assert_eq!(cache.lru_partition(), Some((5, 0)));
    }

    #[test]
    fn pinned_partitions_are_never_lru_victims() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        cache.put(1, 1, Arc::new(vec![2i64]), 1, 8);
        // Partition 0 is the coldest, but pinned.
        cache.pin_partition(1, 0);
        assert!(cache.is_pinned(1, 0));
        assert_eq!(cache.lru_partition(), Some((1, 1)));
        assert_eq!(cache.lru_candidates().len(), 1);
        // Pins nest.
        cache.pin_partition(1, 0);
        cache.unpin_partition(1, 0);
        assert!(cache.is_pinned(1, 0));
        cache.unpin_partition(1, 0);
        assert!(!cache.is_pinned(1, 0));
        assert_eq!(cache.lru_partition(), Some((1, 0)));
    }

    #[test]
    fn evict_partition_refuses_pinned_partitions() {
        // A pin taken after a caller snapshotted its LRU candidates must
        // still protect the partition: eviction re-checks pins itself.
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        cache.pin_partition(1, 0);
        assert_eq!(cache.evict_partition(1, 0), EvictionStats::default());
        assert!(cache.contains(1, 0));
        cache.unpin_partition(1, 0);
        assert_eq!(cache.evict_partition(1, 0).partitions, 1);
        assert!(!cache.contains(1, 0));
    }

    #[test]
    fn drop_rdd_and_clear() {
        let cache = CacheManager::new();
        cache.put(1, 0, Arc::new(vec![1i64]), 0, 8);
        cache.put(2, 0, Arc::new(vec![2i64]), 0, 8);
        assert_eq!(cache.drop_rdd(1), 1);
        assert_eq!(cache.cached_partitions(1), 0);
        assert_eq!(cache.cached_partitions(2), 1);
        cache.clear();
        assert_eq!(cache.total_bytes(), 0);
    }
}
