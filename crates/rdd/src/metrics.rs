//! Per-task execution metrics.
//!
//! Tasks in this reproduction execute for real over scaled-down data; the
//! metrics they accumulate (rows, bytes, expression operations) are scaled
//! by the context's `sim_scale` factor and fed into the
//! [`shark_cluster::CostModel`] to obtain paper-scale simulated durations.

use shark_cluster::{InputSource, OutputSink, TaskCostInput};

/// Metrics accumulated while a single task computes one partition.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMetrics {
    /// Rows read from the task's input source (source RDDs and shuffle fetches).
    pub rows_in: u64,
    /// Bytes read from the input source.
    pub bytes_in: u64,
    /// Rows produced by the task.
    pub rows_out: u64,
    /// Bytes produced by the task.
    pub bytes_out: u64,
    /// Total expression / comparison operations performed.
    pub ops: f64,
    /// Rows the task had to sort (ORDER BY, sort-based shuffle).
    pub sort_rows: u64,
    /// Where the task's input came from (set by the source/shuffle readers;
    /// the "most expensive" source observed wins).
    pub input_source: InputSource,
}

impl Default for TaskMetrics {
    fn default() -> Self {
        TaskMetrics {
            rows_in: 0,
            bytes_in: 0,
            rows_out: 0,
            bytes_out: 0,
            ops: 0.0,
            sort_rows: 0,
            input_source: InputSource::Local,
        }
    }
}

/// Ranking of input sources by how expensive they are to read; used when a
/// task reads from several sources (e.g. a zip of a cached and an on-disk
/// RDD) to pick the dominant one for the cost model.
fn source_rank(s: InputSource) -> u8 {
    match s {
        InputSource::Local => 0,
        InputSource::CachedColumnar => 1,
        InputSource::CachedRows => 2,
        InputSource::ShuffleMemory => 3,
        InputSource::ShuffleDisk => 4,
        InputSource::Dfs => 5,
    }
}

impl TaskMetrics {
    /// A fresh, empty metrics record.
    pub fn new() -> TaskMetrics {
        TaskMetrics::default()
    }

    /// Record reading `rows`/`bytes` from `source`.
    pub fn record_input(&mut self, rows: u64, bytes: u64, source: InputSource) {
        self.rows_in += rows;
        self.bytes_in += bytes;
        if source_rank(source) > source_rank(self.input_source) {
            self.input_source = source;
        }
    }

    /// Record producing `rows`/`bytes` of output.
    pub fn record_output(&mut self, rows: u64, bytes: u64) {
        self.rows_out = rows;
        self.bytes_out = bytes;
    }

    /// Charge `ops` expression/comparison operations.
    pub fn add_ops(&mut self, ops: f64) {
        self.ops += ops;
    }

    /// Charge a sort of `rows` rows.
    pub fn add_sort(&mut self, rows: u64) {
        self.sort_rows += rows;
    }

    /// Merge metrics from a nested computation (e.g. recomputing a parent
    /// partition that was not cached).
    pub fn merge(&mut self, other: &TaskMetrics) {
        self.rows_in += other.rows_in;
        self.bytes_in += other.bytes_in;
        self.ops += other.ops;
        self.sort_rows += other.sort_rows;
        if source_rank(other.input_source) > source_rank(self.input_source) {
            self.input_source = other.input_source;
        }
    }

    /// Convert to a [`TaskCostInput`] for the cost model, scaling data
    /// volumes by `scale` (the ratio between simulated and actual data size)
    /// and attaching the output sink.
    pub fn to_cost_input(&self, scale: f64, output: OutputSink) -> TaskCostInput {
        let expr_ops_per_row = if self.rows_in > 0 {
            self.ops / self.rows_in as f64
        } else {
            0.0
        };
        TaskCostInput {
            rows_in: (self.rows_in as f64 * scale) as u64,
            bytes_in: (self.bytes_in as f64 * scale) as u64,
            rows_out: (self.rows_out as f64 * scale) as u64,
            bytes_out: (self.bytes_out as f64 * scale) as u64,
            input: self.input_source,
            output,
            expr_ops_per_row,
            sort_rows: (self.sort_rows as f64 * scale) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_source_upgrades_to_most_expensive() {
        let mut m = TaskMetrics::new();
        m.record_input(10, 100, InputSource::CachedColumnar);
        assert_eq!(m.input_source, InputSource::CachedColumnar);
        m.record_input(10, 100, InputSource::Dfs);
        assert_eq!(m.input_source, InputSource::Dfs);
        m.record_input(10, 100, InputSource::CachedRows);
        assert_eq!(m.input_source, InputSource::Dfs);
        assert_eq!(m.rows_in, 30);
        assert_eq!(m.bytes_in, 300);
    }

    #[test]
    fn cost_input_scales_volumes() {
        let mut m = TaskMetrics::new();
        m.record_input(100, 1000, InputSource::Dfs);
        m.record_output(10, 50);
        m.add_ops(300.0);
        let c = m.to_cost_input(10.0, OutputSink::Collect);
        assert_eq!(c.rows_in, 1000);
        assert_eq!(c.bytes_in, 10_000);
        assert_eq!(c.rows_out, 100);
        assert_eq!(c.bytes_out, 500);
        assert!((c.expr_ops_per_row - 3.0).abs() < 1e-12);
        assert_eq!(c.output, OutputSink::Collect);
    }

    #[test]
    fn merge_combines_nested_metrics() {
        let mut a = TaskMetrics::new();
        a.record_input(5, 50, InputSource::CachedRows);
        let mut b = TaskMetrics::new();
        b.record_input(10, 100, InputSource::Dfs);
        b.add_ops(7.0);
        b.add_sort(3);
        a.merge(&b);
        assert_eq!(a.rows_in, 15);
        assert_eq!(a.bytes_in, 150);
        assert_eq!(a.ops, 7.0);
        assert_eq!(a.sort_rows, 3);
        assert_eq!(a.input_source, InputSource::Dfs);
    }

    #[test]
    fn zero_rows_gives_zero_ops_per_row() {
        let m = TaskMetrics::new();
        let c = m.to_cost_input(1.0, OutputSink::None);
        assert_eq!(c.expr_ops_per_row, 0.0);
    }
}
