//! The RDD abstraction: lineage-tracked, immutable, partitioned collections.
//!
//! [`Rdd<T>`] is a cheap handle (an `Arc` to the underlying implementation
//! plus the driver context). Transformations (`map`, `filter`, `union`,
//! `zip_partitions`, …) build new RDDs lazily; actions (`collect`, `count`,
//! `reduce`, …) trigger the scheduler in [`crate::scheduler`], which runs
//! every required shuffle map stage and then the result stage, timing both
//! on the simulated cluster.
//!
//! Wide (shuffle) operations on key/value RDDs live in [`crate::pair`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use shark_cluster::{InputSource, OutputSink};
use shark_common::size::estimate_slice;
use shark_common::{EstimateSize, Result};

use crate::context::RddContext;
use crate::metrics::TaskMetrics;
use crate::scheduler;

/// Marker trait for types that can be RDD elements.
///
/// Blanket-implemented for anything cloneable, thread-safe and size-estimable.
pub trait Data: Clone + Send + Sync + EstimateSize + 'static {}
impl<T: Clone + Send + Sync + EstimateSize + 'static> Data for T {}

/// Type-erased view of an RDD used for lineage traversal by the scheduler.
pub trait Lineage: Send + Sync {
    /// Unique id of the RDD.
    fn id(&self) -> usize;
    /// Descriptive name (operator type).
    fn name(&self) -> String;
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// Direct parent RDDs (narrow dependencies).
    fn parents(&self) -> Vec<Arc<dyn Lineage>>;
    /// Direct shuffle (wide) dependencies.
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>>;
}

/// Type-erased handle to a shuffle dependency: knows how to run its map
/// stage and whether its output is already materialized.
pub trait ShuffleDepHandle: Send + Sync {
    /// The shuffle's id in the shuffle manager.
    fn shuffle_id(&self) -> usize;
    /// Number of reduce-side buckets the map stage produces.
    fn num_buckets(&self) -> usize;
    /// The lineage of the map-side parent RDD.
    fn parent_lineage(&self) -> Arc<dyn Lineage>;
    /// Whether all map output for this shuffle is present.
    fn is_materialized(&self, ctx: &RddContext) -> bool;
    /// Execute the map stage, writing buckets + statistics to the shuffle
    /// manager and timing the stage on the simulated cluster.
    fn run_map_stage(&self, ctx: &RddContext) -> Result<crate::context::StageReport>;
}

/// The implementation trait behind [`Rdd<T>`].
pub trait RddImpl<T: Data>: Send + Sync {
    /// Unique id of the RDD.
    fn id(&self) -> usize;
    /// Descriptive operator name.
    fn name(&self) -> String;
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// Compute one partition, accumulating metrics for the cost model.
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<T>>;
    /// Direct narrow parents (for lineage traversal).
    fn parents(&self) -> Vec<Arc<dyn Lineage>>;
    /// Direct shuffle dependencies.
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        Vec::new()
    }
    /// Preferred node for a partition (data locality), if any.
    fn preferred_node(&self, _ctx: &RddContext, _partition: usize) -> Option<usize> {
        None
    }
}

/// A Resilient Distributed Dataset: an immutable, partitioned, lineage-
/// tracked collection of `T` values.
pub struct Rdd<T: Data> {
    pub(crate) ctx: RddContext,
    pub(crate) inner: Arc<dyn RddImpl<T>>,
    cache_flag: Arc<AtomicBool>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            ctx: self.ctx.clone(),
            inner: self.inner.clone(),
            cache_flag: self.cache_flag.clone(),
        }
    }
}

impl<T: Data> Lineage for Rdd<T> {
    fn id(&self) -> usize {
        self.inner.id()
    }
    fn name(&self) -> String {
        self.inner.name()
    }
    fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        self.inner.parents()
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        self.inner.shuffle_deps()
    }
}

impl<T: Data> Rdd<T> {
    /// Wrap an implementation into an RDD handle.
    pub fn new(ctx: RddContext, inner: Arc<dyn RddImpl<T>>) -> Rdd<T> {
        Rdd {
            ctx,
            inner,
            cache_flag: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The driver context this RDD belongs to.
    pub fn context(&self) -> &RddContext {
        &self.ctx
    }

    /// Unique id of this RDD.
    pub fn id(&self) -> usize {
        self.inner.id()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }

    /// Descriptive name of the producing operator.
    pub fn name(&self) -> String {
        self.inner.name()
    }

    /// A type-erased lineage handle for this RDD.
    pub fn lineage(&self) -> Arc<dyn Lineage> {
        Arc::new(self.clone())
    }

    /// Mark this RDD to be cached in the memstore after its next computation.
    /// Returns a handle sharing the same underlying dataset.
    pub fn cache(&self) -> Rdd<T> {
        self.cache_flag.store(true, Ordering::Relaxed);
        self.clone()
    }

    /// Whether this RDD is marked for caching.
    pub fn is_cached(&self) -> bool {
        self.cache_flag.load(Ordering::Relaxed)
    }

    /// Remove this RDD's partitions from the cache.
    pub fn uncache(&self) {
        self.cache_flag.store(false, Ordering::Relaxed);
        self.ctx.cache().drop_rdd(self.id());
    }

    /// Preferred node for `partition`: the node caching it, or a parent's
    /// preference.
    pub fn preferred_node(&self, ctx: &RddContext, partition: usize) -> Option<usize> {
        ctx.cache()
            .location(self.id(), partition)
            .or_else(|| self.inner.preferred_node(ctx, partition))
    }

    /// Compute one partition, consulting and populating the cache.
    ///
    /// When tracing is active and a trace context is installed on the
    /// current thread, each operator's computation records a span named
    /// after the operator (`filter`, `shuffle_read`, `memstore_scan(t)`,
    /// …) tagged with the partition and output rows — the raw material
    /// `EXPLAIN ANALYZE` aggregates. Disabled-mode cost is one atomic
    /// load.
    pub fn compute_partition(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<T>> {
        if let Some(cached) = ctx.cache().get::<T>(self.id(), partition) {
            let bytes = estimate_slice(cached.as_slice()) as u64;
            metrics.record_input(cached.len() as u64, bytes, InputSource::CachedRows);
            if shark_obs::active() {
                shark_obs::event(
                    "rdd-cache-hit",
                    &[
                        ("operator", &self.inner.name()),
                        ("partition", &partition.to_string()),
                        ("rows", &cached.len().to_string()),
                    ],
                );
            }
            return Ok((*cached).clone());
        }
        let span = if shark_obs::active() {
            shark_obs::span(&self.inner.name())
        } else {
            None
        };
        if let Some(span) = &span {
            span.set_partition(partition);
        }
        let bytes_before = metrics.bytes_in;
        let data = self.inner.compute(ctx, partition, metrics)?;
        if let Some(span) = &span {
            span.set_rows(data.len() as u64);
            span.set_bytes(metrics.bytes_in.saturating_sub(bytes_before));
        }
        drop(span);
        if self.is_cached() {
            let bytes = estimate_slice(&data) as u64;
            let alive = {
                let sim = ctx.state.cluster.lock();
                sim.alive_nodes()
            };
            let node = if alive.is_empty() {
                0
            } else {
                alive[partition % alive.len()]
            };
            ctx.cache()
                .put(self.id(), partition, Arc::new(data.clone()), node, bytes);
        }
        Ok(data)
    }

    // ----- transformations ----------------------------------------------------

    /// Apply a function to every element.
    pub fn map<U: Data, F>(&self, f: F) -> Rdd<U>
    where
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        self.map_partitions_named("map", 1.0, move |_, part| {
            part.into_iter().map(&f).collect()
        })
    }

    /// Keep only elements satisfying the predicate.
    pub fn filter<F>(&self, f: F) -> Rdd<T>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        self.map_partitions_named("filter", 1.0, move |_, part| {
            part.into_iter().filter(|x| f(x)).collect()
        })
    }

    /// Apply a function producing zero or more outputs per element.
    pub fn flat_map<U: Data, F>(&self, f: F) -> Rdd<U>
    where
        F: Fn(T) -> Vec<U> + Send + Sync + 'static,
    {
        self.map_partitions_named("flat_map", 1.5, move |_, part| {
            part.into_iter().flat_map(&f).collect()
        })
    }

    /// Apply a function to each whole partition.
    pub fn map_partitions<U: Data, F>(&self, f: F) -> Rdd<U>
    where
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        self.map_partitions_named("map_partitions", 1.0, move |_, part| f(part))
    }

    /// Apply a function to each whole partition, receiving the partition index.
    pub fn map_partitions_with_index<U: Data, F>(&self, f: F) -> Rdd<U>
    where
        F: Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        self.map_partitions_named("map_partitions_with_index", 1.0, f)
    }

    /// Internal: named partition-wise transformation charging `ops_per_row`
    /// expression operations per input row.
    pub fn map_partitions_named<U: Data, F>(&self, name: &str, ops_per_row: f64, f: F) -> Rdd<U>
    where
        F: Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        let inner = MapPartitionsRdd {
            id: self.ctx.next_rdd_id(),
            name: name.to_string(),
            parent: self.clone(),
            f: Arc::new(f),
            ops_per_row,
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Concatenate this RDD with another (partitions are appended).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let inner = UnionRdd {
            id: self.ctx.next_rdd_id(),
            parents: vec![self.clone(), other.clone()],
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Combine corresponding partitions of two RDDs with a function. Both
    /// RDDs must have the same number of partitions. This is the narrow
    /// (no-shuffle) join primitive used for co-partitioned and broadcast
    /// joins (§3.4).
    pub fn zip_partitions<B: Data, U: Data, F>(&self, other: &Rdd<B>, f: F) -> Rdd<U>
    where
        F: Fn(Vec<T>, Vec<B>) -> Vec<U> + Send + Sync + 'static,
    {
        assert_eq!(
            self.num_partitions(),
            other.num_partitions(),
            "zip_partitions requires equal partition counts"
        );
        let inner = ZipPartitionsRdd {
            id: self.ctx.next_rdd_id(),
            left: self.clone(),
            right: other.clone(),
            f: Arc::new(f),
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Turn each element into a `(key, element)` pair.
    pub fn key_by<K: Data, F>(&self, f: F) -> Rdd<(K, T)>
    where
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        self.map(move |x| (f(&x), x))
    }

    // ----- actions --------------------------------------------------------------

    /// Open a streaming job over this RDD: shuffle dependencies run now,
    /// result-stage partitions run one at a time as the caller requests
    /// them (see [`scheduler::StreamingJob`]). This is the incremental
    /// alternative to [`Rdd::collect`] for consumers that want batches as
    /// partitions finish — or want to stop early.
    pub fn stream(&self, name: &str) -> Result<scheduler::StreamingJob<T>> {
        scheduler::StreamingJob::new(&self.ctx, self, name)
    }

    /// Gather all elements to the driver, in partition order.
    pub fn collect(&self) -> Result<Vec<T>> {
        let parts = scheduler::run_job(&self.ctx, self, "collect", OutputSink::Collect, |v| v)?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Count the elements.
    pub fn count(&self) -> Result<u64> {
        let counts = scheduler::run_job(&self.ctx, self, "count", OutputSink::None, |v| {
            v.len() as u64
        })?;
        Ok(counts.into_iter().sum())
    }

    /// Reduce all elements with a binary function. Returns `None` for an
    /// empty RDD.
    pub fn reduce<F>(&self, f: F) -> Result<Option<T>>
    where
        F: Fn(T, T) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let g = f.clone();
        let partials = scheduler::run_job(&self.ctx, self, "reduce", OutputSink::Collect, {
            move |v: Vec<T>| v.into_iter().reduce(|a, b| g(a, b))
        })?;
        Ok(partials.into_iter().flatten().reduce(|a, b| f(a, b)))
    }

    /// Return up to `n` elements (collects, then truncates — acceptable at
    /// simulation scale).
    pub fn take(&self, n: usize) -> Result<Vec<T>> {
        let mut all = self.collect()?;
        all.truncate(n);
        Ok(all)
    }

    /// The first element, if any.
    pub fn first(&self) -> Result<Option<T>> {
        Ok(self.take(1)?.into_iter().next())
    }
}

// ---------------------------------------------------------------------------
// Narrow RDD implementations
// ---------------------------------------------------------------------------

/// Source RDD whose partitions are produced by a generator function.
pub struct GeneratorRdd<T: Data> {
    pub(crate) id: usize,
    pub(crate) partitions: usize,
    pub(crate) source: InputSource,
    #[allow(clippy::type_complexity)]
    pub(crate) f: Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
}

impl<T: Data> RddImpl<T> for GeneratorRdd<T> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        format!("source({:?})", self.source)
    }
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn compute(
        &self,
        _ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<T>> {
        let data = (self.f)(partition);
        let bytes = estimate_slice(&data) as u64;
        metrics.record_input(data.len() as u64, bytes, self.source);
        Ok(data)
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        Vec::new()
    }
}

/// Narrow transformation applying a closure to each partition.
pub struct MapPartitionsRdd<T: Data, U: Data> {
    id: usize,
    name: String,
    parent: Rdd<T>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(usize, Vec<T>) -> Vec<U> + Send + Sync>,
    ops_per_row: f64,
}

impl<T: Data, U: Data> RddImpl<U> for MapPartitionsRdd<T, U> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        self.name.clone()
    }
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<U>> {
        let input = self.parent.compute_partition(ctx, partition, metrics)?;
        metrics.add_ops(input.len() as f64 * self.ops_per_row);
        Ok((self.f)(partition, input))
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        vec![self.parent.lineage()]
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        self.parent.shuffle_deps()
    }
    fn preferred_node(&self, ctx: &RddContext, partition: usize) -> Option<usize> {
        self.parent.preferred_node(ctx, partition)
    }
}

/// Union of several RDDs: partitions are concatenated in order.
pub struct UnionRdd<T: Data> {
    id: usize,
    parents: Vec<Rdd<T>>,
}

impl<T: Data> UnionRdd<T> {
    fn locate(&self, partition: usize) -> (usize, usize) {
        let mut p = partition;
        for (i, parent) in self.parents.iter().enumerate() {
            if p < parent.num_partitions() {
                return (i, p);
            }
            p -= parent.num_partitions();
        }
        panic!("partition {partition} out of range for union");
    }
}

impl<T: Data> RddImpl<T> for UnionRdd<T> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        "union".to_string()
    }
    fn num_partitions(&self) -> usize {
        self.parents.iter().map(|p| p.num_partitions()).sum()
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<T>> {
        let (pi, pp) = self.locate(partition);
        self.parents[pi].compute_partition(ctx, pp, metrics)
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        self.parents.iter().map(|p| p.lineage()).collect()
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        self.parents.iter().flat_map(|p| p.shuffle_deps()).collect()
    }
    fn preferred_node(&self, ctx: &RddContext, partition: usize) -> Option<usize> {
        let (pi, pp) = self.locate(partition);
        self.parents[pi].preferred_node(ctx, pp)
    }
}

/// Narrow, partition-wise combination of two RDDs (co-partitioned joins,
/// broadcast joins, zipping features with labels, …).
pub struct ZipPartitionsRdd<A: Data, B: Data, U: Data> {
    id: usize,
    left: Rdd<A>,
    right: Rdd<B>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(Vec<A>, Vec<B>) -> Vec<U> + Send + Sync>,
}

impl<A: Data, B: Data, U: Data> RddImpl<U> for ZipPartitionsRdd<A, B, U> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        "zip_partitions".to_string()
    }
    fn num_partitions(&self) -> usize {
        self.left.num_partitions()
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<U>> {
        let l = self.left.compute_partition(ctx, partition, metrics)?;
        let r = self.right.compute_partition(ctx, partition, metrics)?;
        metrics.add_ops((l.len() + r.len()) as f64);
        Ok((self.f)(l, r))
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        vec![self.left.lineage(), self.right.lineage()]
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        let mut deps = self.left.shuffle_deps();
        deps.extend(self.right.shuffle_deps());
        deps
    }
    fn preferred_node(&self, ctx: &RddContext, partition: usize) -> Option<usize> {
        self.left
            .preferred_node(ctx, partition)
            .or_else(|| self.right.preferred_node(ctx, partition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RddContext;

    fn ctx() -> RddContext {
        RddContext::local()
    }

    #[test]
    fn parallelize_collect_roundtrip() {
        let ctx = ctx();
        let data: Vec<i64> = (0..100).collect();
        let rdd = ctx.parallelize(data.clone(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        assert_eq!(rdd.collect().unwrap(), data);
    }

    #[test]
    fn map_filter_flat_map() {
        let ctx = ctx();
        let rdd = ctx.parallelize((0i64..10).collect(), 3);
        let out = rdd
            .map(|x| x * 2)
            .filter(|x| *x % 4 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect()
            .unwrap();
        assert_eq!(out, vec![0, 1, 4, 5, 8, 9, 12, 13, 16, 17]);
    }

    #[test]
    fn count_and_reduce() {
        let ctx = ctx();
        let rdd = ctx.parallelize((1i64..=100).collect(), 5);
        assert_eq!(rdd.count().unwrap(), 100);
        assert_eq!(rdd.reduce(|a, b| a + b).unwrap(), Some(5050));
        let empty = ctx.parallelize(Vec::<i64>::new(), 3);
        assert_eq!(empty.reduce(|a, b| a + b).unwrap(), None);
        assert_eq!(empty.count().unwrap(), 0);
    }

    #[test]
    fn take_and_first() {
        let ctx = ctx();
        let rdd = ctx.parallelize((0i64..10).collect(), 4);
        assert_eq!(rdd.take(3).unwrap(), vec![0, 1, 2]);
        assert_eq!(rdd.first().unwrap(), Some(0));
    }

    #[test]
    fn union_concatenates() {
        let ctx = ctx();
        let a = ctx.parallelize(vec![1i64, 2], 2);
        let b = ctx.parallelize(vec![3i64, 4, 5], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 4);
        assert_eq!(u.collect().unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(u.count().unwrap(), 5);
    }

    #[test]
    fn zip_partitions_joins_aligned_data() {
        let ctx = ctx();
        let a = ctx.parallelize((0i64..6).collect(), 3);
        let b = ctx.parallelize((100i64..106).collect(), 3);
        let z = a.zip_partitions(&b, |l, r| {
            l.into_iter()
                .zip(r)
                .map(|(x, y)| x + y)
                .collect::<Vec<i64>>()
        });
        assert_eq!(z.collect().unwrap(), vec![100, 102, 104, 106, 108, 110]);
    }

    #[test]
    #[should_panic(expected = "equal partition counts")]
    fn zip_partitions_rejects_mismatched_counts() {
        let ctx = ctx();
        let a = ctx.parallelize((0i64..6).collect(), 3);
        let b = ctx.parallelize((0i64..6).collect(), 2);
        let _ = a.zip_partitions(&b, |l, _| l);
    }

    #[test]
    fn key_by_builds_pairs() {
        let ctx = ctx();
        let rdd = ctx.parallelize(vec![1i64, 2, 3], 1);
        let pairs = rdd.key_by(|x| x % 2).collect().unwrap();
        assert_eq!(pairs, vec![(1, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn caching_avoids_recomputation_and_uncache_restores_it() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ctx = ctx();
        let computed = Arc::new(AtomicUsize::new(0));
        let counter = computed.clone();
        let rdd = ctx
            .generate(4, InputSource::Dfs, move |p| {
                counter.fetch_add(1, Ordering::SeqCst);
                vec![p as i64]
            })
            .cache();
        assert!(rdd.is_cached());
        rdd.collect().unwrap();
        assert_eq!(computed.load(Ordering::SeqCst), 4);
        rdd.collect().unwrap();
        // Served from cache: no extra generator invocations.
        assert_eq!(computed.load(Ordering::SeqCst), 4);
        assert_eq!(ctx.cache().cached_partitions(rdd.id()), 4);
        rdd.uncache();
        assert_eq!(ctx.cache().cached_partitions(rdd.id()), 0);
        rdd.collect().unwrap();
        assert_eq!(computed.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn lost_cached_partitions_are_recomputed_from_lineage() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ctx = ctx();
        let computed = Arc::new(AtomicUsize::new(0));
        let counter = computed.clone();
        let rdd = ctx
            .generate(8, InputSource::Dfs, move |p| {
                counter.fetch_add(1, Ordering::SeqCst);
                vec![p as i64, p as i64 + 1]
            })
            .cache();
        let full: Vec<i64> = rdd.collect().unwrap();
        assert_eq!(computed.load(Ordering::SeqCst), 8);

        // Kill a node: its cached partitions disappear.
        let lost = ctx.fail_node(1);
        assert!(lost > 0, "node 1 should have held cached partitions");

        // Re-running the query recomputes only the lost partitions and
        // produces the same result (lineage-based recovery, §2.3).
        let again: Vec<i64> = rdd.collect().unwrap();
        let mut a = full.clone();
        let mut b = again.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(computed.load(Ordering::SeqCst), 8 + lost);
    }

    #[test]
    fn job_reports_are_recorded() {
        let ctx = ctx();
        let rdd = ctx.parallelize((0i64..50).collect(), 5);
        rdd.map(|x| x + 1).collect().unwrap();
        let report = ctx.last_job().expect("job report");
        assert_eq!(report.name, "collect");
        assert_eq!(report.total_tasks(), 5);
        assert!(report.sim_duration > 0.0);
    }

    #[test]
    fn lineage_exposes_parents() {
        let ctx = ctx();
        let rdd = ctx.parallelize((0i64..10).collect(), 2);
        let mapped = rdd.map(|x| x * 2);
        let lin = mapped.lineage();
        assert_eq!(lin.parents().len(), 1);
        assert_eq!(lin.parents()[0].id(), rdd.id());
        assert!(lin.shuffle_deps().is_empty());
    }
}
