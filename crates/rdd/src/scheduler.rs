//! The DAG scheduler.
//!
//! Actions call [`run_job`]: the scheduler walks the target RDD's lineage,
//! runs the map stage of every shuffle dependency that is not yet
//! materialized (in dependency order), then runs the result stage. Every
//! task executes for real in-process; its measured metrics are converted to
//! a simulated duration by the cost model and the whole stage is placed on
//! the simulated cluster to obtain paper-scale timings, which are recorded
//! in a [`JobReport`].

use std::hash::Hash;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use shark_cluster::{OutputSink, TaskSpec};
use shark_common::size::estimate_slice;
use shark_common::{EstimateSize, Result, SharkError};

use crate::context::{JobReport, RddContext, StageReport};
use crate::executor::Executor;
use crate::metrics::TaskMetrics;
use crate::pair::Aggregator;
use crate::rdd::{Data, Lineage, Rdd};
use crate::shuffle::MapOutputStats;

/// Cached handles into the unified metrics registry for per-stage input
/// totals (the aggregate of every task's [`TaskMetrics`]), so finishing a
/// stage costs two atomic adds instead of registry lookups.
struct StageObs {
    rows_in: Arc<shark_obs::Counter>,
    bytes_in: Arc<shark_obs::Counter>,
}

fn stage_obs() -> &'static StageObs {
    static OBS: std::sync::OnceLock<StageObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = shark_obs::metrics();
        StageObs {
            rows_in: reg.counter(
                "shark_stage_rows_in_total",
                "Rows read by executed stage tasks (map + result stages)",
            ),
            bytes_in: reg.counter(
                "shark_stage_bytes_in_total",
                "Bytes read by executed stage tasks (map + result stages)",
            ),
        }
    })
}

/// The result of executing one task in-process.
pub(crate) struct TaskOutcome<U> {
    pub value: U,
    pub duration: f64,
    pub preferred: Option<usize>,
    pub rows_in: u64,
    pub bytes_in: u64,
}

/// Execute `n` tasks (optionally on the shared executor), preserving order.
pub(crate) fn run_tasks<U, F>(parallel: bool, n: usize, f: F) -> Result<Vec<TaskOutcome<U>>>
where
    U: Send,
    F: Fn(usize) -> Result<TaskOutcome<U>> + Send + Sync,
{
    if !parallel || n <= 1 {
        return (0..n).map(&f).collect();
    }
    let slots: Mutex<Vec<Option<Result<TaskOutcome<U>>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let panicked = AtomicBool::new(false);
    // Tasks adopt the caller's trace context so per-operator spans computed
    // off-thread still land in the query's span tree.
    let trace = shark_obs::current();
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
        .map(|i| {
            let slots = &slots;
            let panicked = &panicked;
            let f = &f;
            Box::new(move || {
                let _trace = trace.as_ref().map(|t| t.attach());
                // A panic in a user closure must not poison the shared
                // worker pool; it is latched and reported as an execution
                // error once the whole stage has drained.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                    Ok(result) => slots.lock()[i] = Some(result),
                    Err(_) => panicked.store(true, Ordering::SeqCst),
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    Executor::global().run_scoped(tasks);
    if panicked.load(Ordering::SeqCst) {
        return Err(SharkError::Execution("a task thread panicked".into()));
    }
    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("task result missing"))
        .collect()
}

/// Simulate the stage on the cluster and build its report plus the ordered
/// task outputs.
fn finish_stage<U>(
    ctx: &RddContext,
    name: &str,
    outcomes: Vec<TaskOutcome<U>>,
) -> (StageReport, Vec<U>) {
    let specs: Vec<TaskSpec> = outcomes
        .iter()
        .map(|o| TaskSpec {
            duration: o.duration,
            preferred_node: o.preferred,
        })
        .collect();
    let sim = ctx.state.cluster.lock().simulate_stage(&specs);
    let report = StageReport {
        name: name.to_string(),
        num_tasks: outcomes.len(),
        sim_duration: sim.duration,
        speculative_copies: sim.speculative_copies,
        tasks_rerun: sim.tasks_rerun,
        rows_in: outcomes.iter().map(|o| o.rows_in).sum(),
        bytes_in: outcomes.iter().map(|o| o.bytes_in).sum(),
    };
    stage_obs().rows_in.add(report.rows_in);
    stage_obs().bytes_in.add(report.bytes_in);
    if shark_obs::active() {
        shark_obs::event(
            "stage-sim",
            &[
                ("stage", name),
                ("tasks", &report.num_tasks.to_string()),
                ("sim_seconds", &format!("{:.6}", report.sim_duration)),
            ],
        );
    }
    (report, outcomes.into_iter().map(|o| o.value).collect())
}

/// Run the map stage of every shuffle dependency reachable from `lineage`
/// that has not been materialized yet, in dependency order. Returns the
/// reports of the stages that were actually executed.
pub fn ensure_shuffle_deps(ctx: &RddContext, lineage: &dyn Lineage) -> Result<Vec<StageReport>> {
    let mut reports = Vec::new();
    for parent in lineage.parents() {
        reports.extend(ensure_shuffle_deps(ctx, parent.as_ref())?);
    }
    for dep in lineage.shuffle_deps() {
        reports.extend(ensure_shuffle_deps(ctx, dep.parent_lineage().as_ref())?);
        if !dep.is_materialized(ctx) {
            reports.push(dep.run_map_stage(ctx)?);
        }
    }
    Ok(reports)
}

/// Run an action over `rdd`: materialize its shuffle dependencies, execute
/// the result stage applying `f` to each partition, time everything on the
/// simulated cluster, record a [`JobReport`], and return the per-partition
/// results in partition order.
pub fn run_job<T, U, F>(
    ctx: &RddContext,
    rdd: &Rdd<T>,
    name: &str,
    sink: OutputSink,
    f: F,
) -> Result<Vec<U>>
where
    T: Data,
    U: Send + EstimateSize,
    F: Fn(Vec<T>) -> U + Send + Sync,
{
    let wall = Instant::now();
    let mut stages = ensure_shuffle_deps(ctx, rdd)?;
    let scale = ctx.config().sim_scale;
    let outcomes = run_tasks(
        ctx.config().parallel_tasks,
        rdd.num_partitions(),
        |partition| {
            let mut metrics = TaskMetrics::new();
            let data = rdd.compute_partition(ctx, partition, &mut metrics)?;
            let rows = data.len() as u64;
            let value = f(data);
            metrics.record_output(rows, value.estimated_size() as u64);
            let cost = metrics.to_cost_input(scale, sink);
            let duration = ctx.cost_model().task_duration(&cost);
            Ok(TaskOutcome {
                value,
                duration,
                preferred: rdd.preferred_node(ctx, partition),
                rows_in: metrics.rows_in,
                bytes_in: metrics.bytes_in,
            })
        },
    )?;
    let (report, values) = finish_stage(ctx, "result", outcomes);
    stages.push(report);
    let sim_duration = stages.iter().map(|s| s.sim_duration).sum();
    ctx.record_job(JobReport {
        name: name.to_string(),
        stages,
        sim_duration,
        real_duration: wall.elapsed().as_secs_f64(),
    });
    Ok(values)
}

/// A job whose result-stage partitions are executed on demand, one at a
/// time, so the caller can consume output incrementally and stop early.
///
/// Construction runs every shuffle map stage the target RDD depends on
/// (exactly like [`run_job`] would); each [`StreamingJob::run_partition`]
/// call then executes one result-stage task in-process and places it on the
/// simulated cluster as a single-task stage — the pipelined-delivery model,
/// where the driver hands a partition's rows to the client as soon as that
/// partition finishes instead of waiting for the whole stage barrier.
/// Partitions that are never requested are never computed, which is what
/// lets a LIMIT query stop launching tasks once it has enough rows.
///
/// A [`JobReport`] covering the stages actually executed is recorded when
/// the job is dropped (or explicitly via [`StreamingJob::finish`]).
pub struct StreamingJob<T: Data> {
    ctx: RddContext,
    rdd: Rdd<T>,
    name: String,
    stages: Vec<StageReport>,
    /// Simulated seconds spent in the up-front shuffle stages, which run
    /// before any partition can stream.
    sim_base: f64,
    /// Simulated busy time per delivery slot. Streamed partition tasks are
    /// list-scheduled greedily onto these slots, so a job whose partitions
    /// were computed by `n` concurrent workers is charged the makespan of
    /// that schedule instead of the serial sum — unlike the context's
    /// global simulated clock, this is not advanced by concurrent jobs.
    sim_slots: Vec<f64>,
    wall: Instant,
    partitions_run: usize,
    finished: bool,
}

impl<T: Data> StreamingJob<T> {
    /// Prepare a streaming job over `rdd`: materialize its shuffle
    /// dependencies now so every subsequent partition request is a pure
    /// result-stage task.
    pub fn new(ctx: &RddContext, rdd: &Rdd<T>, name: &str) -> Result<StreamingJob<T>> {
        let wall = Instant::now();
        let stages = ensure_shuffle_deps(ctx, rdd)?;
        let sim_base = stages.iter().map(|s| s.sim_duration).sum();
        Ok(StreamingJob {
            ctx: ctx.clone(),
            rdd: rdd.clone(),
            name: name.to_string(),
            stages,
            sim_base,
            sim_slots: vec![0.0],
            wall,
            partitions_run: 0,
            finished: false,
        })
    }

    /// Number of partitions the result stage has in total.
    pub fn num_partitions(&self) -> usize {
        self.rdd.num_partitions()
    }

    /// How many result-stage partitions have been executed so far.
    pub fn partitions_run(&self) -> usize {
        self.partitions_run
    }

    /// Simulated seconds charged by *this job's* stages so far: the
    /// up-front shuffle stages plus the makespan of the streamed partition
    /// tasks over the job's delivery slots. Stable under concurrency,
    /// unlike deltas of the shared cluster clock.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_base + self.sim_slots.iter().copied().fold(0.0, f64::max)
    }

    /// Declare how many workers computed streamed partitions concurrently.
    /// Later partition tasks are booked onto that many simulated delivery
    /// slots (greedy list scheduling), so prefetched streams are charged
    /// wall-clock-shaped time instead of the serial sum. Only honored
    /// before any partition has been booked.
    pub fn set_sim_parallelism(&mut self, slots: usize) {
        if self.partitions_run == 0 {
            self.sim_slots = vec![0.0; slots.max(1)];
        }
    }

    /// Execute the result-stage task for one partition: compute it
    /// in-process, transform the rows with `f` (which may charge extra work
    /// — e.g. a per-partition sort — to the task's metrics), and time the
    /// task on the simulated cluster as a single-task stage.
    pub fn run_partition<U, F>(&mut self, partition: usize, sink: OutputSink, f: F) -> Result<U>
    where
        U: Send + EstimateSize,
        F: FnOnce(Vec<T>, &mut TaskMetrics) -> U,
    {
        let outcome = execute_partition_task(&self.ctx, &self.rdd, partition, sink, f)?;
        Ok(self.absorb_outcome(partition, outcome))
    }

    /// Book a task outcome computed elsewhere (a prefetch worker): simulate
    /// it on the cluster as a single-task stage and fold it into this job's
    /// report. Called in delivery order, so the simulated clock advances
    /// exactly as it would under serial streaming.
    fn absorb_outcome<U: Send>(&mut self, partition: usize, outcome: TaskOutcome<U>) -> U {
        let (report, mut values) = finish_stage(
            &self.ctx,
            &format!("stream-result({partition})"),
            vec![outcome],
        );
        // Greedy list scheduling: charge the task to the least-loaded
        // delivery slot. With one slot this degenerates to the serial sum.
        let slot = self
            .sim_slots
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.sim_slots[slot] += report.sim_duration;
        self.stages.push(report);
        self.partitions_run += 1;
        values.pop().expect("single task outcome")
    }

    /// Turn this job into a [`PipelinedJob`] delivering `order`'s partitions
    /// through one fixed per-partition transformation. With a prefetch depth
    /// of 0 the partitions still run serially inside `next()`; with depth
    /// `n ≥ 1` morsels on the shared executor compute up to `n` partitions
    /// ahead of the consumer.
    pub fn pipelined<U, F>(self, order: Vec<usize>, sink: OutputSink, f: F) -> PipelinedJob<T, U>
    where
        U: Send + EstimateSize + 'static,
        F: Fn(Vec<T>, &mut TaskMetrics) -> U + Send + Sync + 'static,
    {
        PipelinedJob {
            job: self,
            order: Arc::new(order),
            sink,
            f: Arc::new(f),
            prefetch: 0,
            pool: None,
            env: None,
            delivered: 0,
            prefetch_hits: 0,
            latched: false,
        }
    }

    /// Record the [`JobReport`] for the work done so far. Idempotent; also
    /// invoked on drop so abandoning a stream mid-way still leaves a report.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let sim_duration = self.sim_seconds();
        let stages = std::mem::take(&mut self.stages);
        self.ctx.record_job(JobReport {
            name: self.name.clone(),
            stages,
            sim_duration,
            real_duration: self.wall.elapsed().as_secs_f64(),
        });
    }
}

impl<T: Data> Drop for StreamingJob<T> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Run one result-stage task in-process without simulating it yet: compute
/// the partition, apply `f`, and price the task with the cost model. Panics
/// inside the task (a user closure blowing up) are converted to execution
/// errors so both the serial and the prefetched streaming paths fail the
/// same way.
fn execute_partition_task<T, U, F>(
    ctx: &RddContext,
    rdd: &Rdd<T>,
    partition: usize,
    sink: OutputSink,
    f: F,
) -> Result<TaskOutcome<U>>
where
    T: Data,
    U: Send + EstimateSize,
    F: FnOnce(Vec<T>, &mut TaskMetrics) -> U,
{
    let scale = ctx.config().sim_scale;
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut metrics = TaskMetrics::new();
        let data = rdd.compute_partition(ctx, partition, &mut metrics)?;
        let rows = data.len() as u64;
        let value = f(data, &mut metrics);
        metrics.record_output(rows, value.estimated_size() as u64);
        let cost = metrics.to_cost_input(scale, sink);
        Ok(TaskOutcome {
            value,
            duration: ctx.cost_model().task_duration(&cost),
            preferred: rdd.preferred_node(ctx, partition),
            rows_in: metrics.rows_in,
            bytes_in: metrics.bytes_in,
        })
    }))
    .unwrap_or_else(|_| {
        Err(SharkError::Execution(format!(
            "stream task for partition {partition} panicked"
        )))
    })
}

/// Shared state between a [`PipelinedJob`]'s consumer and its morsels: a
/// bounded, *ordered* channel. Morsel tasks claim positions in the planned
/// order while they are within `prefetch` of the consumer's cursor, park
/// results in `ready`, and no new positions are claimed once `cancelled`
/// is set.
struct PrefetchState<U> {
    /// Next position (index into the order) a morsel may claim.
    next_claim: usize,
    /// The consumer's cursor position.
    deliver_pos: usize,
    /// Completed outcomes keyed by position.
    ready: std::collections::HashMap<usize, Result<TaskOutcome<U>>>,
    /// Positions claimed whose morsel has not finished yet. [`PipelinedJob::finish`]
    /// waits for this to reach zero, so cancellation-on-drop always drains
    /// in-flight work before the job report is recorded.
    in_flight: usize,
    /// No new positions may be claimed (consumer dropped/stopped or a task
    /// failed). Claimed in-flight morsels still park their result.
    cancelled: bool,
}

struct PrefetchShared<U> {
    state: std::sync::Mutex<PrefetchState<U>>,
    changed: std::sync::Condvar,
    prefetch: usize,
}

impl<U> PrefetchShared<U> {
    fn lock(&self) -> std::sync::MutexGuard<'_, PrefetchState<U>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn cancel(&self) {
        self.lock().cancelled = true;
        self.changed.notify_all();
    }
}

/// Everything a prefetch morsel needs, shared between the consumer (which
/// pumps after each delivery) and completed morsels (which pump to refill
/// the window).
struct PumpEnv<T: Data, U: Send + EstimateSize + 'static> {
    ctx: RddContext,
    rdd: Rdd<T>,
    order: Arc<Vec<usize>>,
    sink: OutputSink,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(Vec<T>, &mut TaskMetrics) -> U + Send + Sync>,
    /// Consumer's trace context: morsels computed ahead on the shared
    /// executor still attach their spans to the query's span tree.
    trace: Option<shark_obs::TraceContext>,
    /// Concurrency cap: at most this many morsels of this job may be
    /// queued or running on the shared executor at once.
    max_workers: usize,
    shared: Arc<PrefetchShared<U>>,
}

/// Claim every position currently allowed by the prefetch window and the
/// concurrency cap, submitting one executor morsel per claim. Called by the
/// consumer when the window moves and by each finished morsel, so the
/// window refills without any dedicated per-query threads.
fn pump<T: Data, U: Send + EstimateSize + 'static>(env: &Arc<PumpEnv<T, U>>) {
    loop {
        let pos = {
            let mut state = env.shared.lock();
            if state.cancelled
                || state.next_claim >= env.order.len()
                || state.next_claim >= state.deliver_pos + env.shared.prefetch
                || state.in_flight >= env.max_workers
            {
                return;
            }
            let pos = state.next_claim;
            state.next_claim += 1;
            state.in_flight += 1;
            pos
        };
        let env = env.clone();
        Executor::global().spawn(move || {
            let _trace = env.trace.as_ref().map(|t| t.attach());
            let partition = env.order[pos];
            let f = env.f.clone();
            let outcome = execute_partition_task(&env.ctx, &env.rdd, partition, env.sink, {
                move |rows, m| f(rows, m)
            });
            {
                let mut state = env.shared.lock();
                state.in_flight -= 1;
                if outcome.is_err() {
                    // Delivery is ordered, so this error will surface at or
                    // before `pos`; work beyond it would be wasted.
                    state.cancelled = true;
                }
                state.ready.insert(pos, outcome);
                env.shared.changed.notify_all();
            }
            pump(&env);
        });
    }
}

/// A streaming job whose result partitions are delivered in a fixed planned
/// order, optionally computed ahead of the consumer as morsels on the
/// shared work-stealing [`Executor`] (the pipelined-delivery model with
/// prefetching).
///
/// * `prefetch = 0` — serial: each [`PipelinedJob::next`] call executes one
///   partition inline, exactly like [`StreamingJob::run_partition`].
/// * `prefetch = n ≥ 1` — up to `n` partitions are claimed ahead of the
///   cursor and submitted as morsels to the shared executor (bounded by the
///   host's parallelism). Results are delivered strictly in planned order;
///   cluster simulation and the [`JobReport`] are booked at delivery time,
///   with the concurrent execution reflected in the simulated makespan via
///   [`StreamingJob::set_sim_parallelism`].
///
/// Dropping the job (or calling [`PipelinedJob::finish`]) cancels the
/// stream: no further partitions are claimed, in-flight morsels are
/// drained, and the job report covering the *delivered* partitions is
/// recorded.
pub struct PipelinedJob<T: Data, U: Send + EstimateSize + 'static> {
    job: StreamingJob<T>,
    order: Arc<Vec<usize>>,
    sink: OutputSink,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(Vec<T>, &mut TaskMetrics) -> U + Send + Sync>,
    prefetch: usize,
    pool: Option<Arc<PrefetchShared<U>>>,
    env: Option<Arc<PumpEnv<T, U>>>,
    delivered: usize,
    prefetch_hits: u64,
    /// Set on error or explicit finish: no further partitions execute or
    /// deliver, so the recorded report stays accurate.
    latched: bool,
}

impl<T: Data, U: Send + EstimateSize + 'static> PipelinedJob<T, U> {
    /// Set the prefetch depth. Only honored before the first partition is
    /// delivered (the pool spins up lazily on the first [`Self::next`]).
    pub fn set_prefetch(&mut self, depth: usize) {
        if self.pool.is_none() && self.delivered == 0 {
            self.prefetch = depth;
        }
    }

    /// The configured prefetch depth.
    pub fn prefetch(&self) -> usize {
        self.prefetch
    }

    /// Partitions in the planned delivery order.
    pub fn planned(&self) -> usize {
        self.order.len()
    }

    /// Partitions delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Total result-stage partitions of the underlying RDD.
    pub fn num_partitions(&self) -> usize {
        self.job.num_partitions()
    }

    /// Deliveries that found their partition already computed by a prefetch
    /// worker (the consumer never had to wait for the claim).
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Simulated seconds charged by this job's stages so far.
    pub fn sim_seconds(&self) -> f64 {
        self.job.sim_seconds()
    }

    /// Deliver the next partition in planned order as `(partition, value)`,
    /// or `None` when the plan is exhausted. After an error the job is
    /// latched: no further partitions execute and subsequent calls return
    /// `None`.
    // Not an `Iterator`: delivery is fallible and the job must keep
    // ownership for cancellation/report bookkeeping.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(usize, U)>> {
        if self.latched || self.delivered >= self.order.len() {
            return Ok(None);
        }
        let partition = self.order[self.delivered];
        if self.prefetch == 0 {
            // Serial path: run the task inline on the consumer's thread.
            let f = self.f.clone();
            let result = self
                .job
                .run_partition(partition, self.sink, move |rows, m| f(rows, m));
            return match result {
                Ok(value) => {
                    self.delivered += 1;
                    Ok(Some((partition, value)))
                }
                Err(err) => {
                    self.latched = true;
                    Err(err)
                }
            };
        }
        self.ensure_pool();
        let pool = self.pool.clone().expect("pool just started");
        let (outcome, was_ready) = {
            let mut state = pool.lock();
            let pos = state.deliver_pos;
            let was_ready = state.ready.contains_key(&pos);
            loop {
                if state.ready.contains_key(&pos) {
                    break;
                }
                if state.cancelled && pos >= state.next_claim {
                    // Nothing in flight will ever produce this position.
                    return Ok(None);
                }
                state = pool.changed.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            let outcome = state.ready.remove(&pos).expect("ready outcome");
            state.deliver_pos += 1;
            pool.changed.notify_all();
            (outcome, was_ready)
        };
        // The window moved: claim and submit the next morsel(s).
        if let Some(env) = &self.env {
            pump(env);
        }
        if was_ready {
            self.prefetch_hits += 1;
        }
        match outcome {
            Ok(outcome) => {
                self.delivered += 1;
                let value = self.job.absorb_outcome(partition, outcome);
                Ok(Some((partition, value)))
            }
            Err(err) => {
                // Latch and stop the pool: a failed stream never resumes.
                self.latched = true;
                pool.cancel();
                Err(err)
            }
        }
    }

    /// Stop the stream (draining in-flight morsels) and record the job
    /// report covering everything delivered so far. Latches the job: a
    /// later `next()` delivers nothing, so the recorded report stays
    /// accurate. Idempotent; also runs on drop.
    pub fn finish(&mut self) {
        self.latched = true;
        if let Some(pool) = &self.pool {
            pool.cancel();
            // Claimed morsels still finish on the executor; wait for them
            // so nothing of this job runs after finish() returns (callers
            // release resources — e.g. pinned partitions — right after).
            let mut state = pool.lock();
            while state.in_flight > 0 {
                state = pool.changed.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.job.finish();
    }

    /// Set up the prefetch channel and submit the first morsels on first use.
    fn ensure_pool(&mut self) {
        if self.pool.is_some() {
            return;
        }
        let shared = Arc::new(PrefetchShared {
            state: std::sync::Mutex::new(PrefetchState {
                next_claim: 0,
                deliver_pos: 0,
                ready: std::collections::HashMap::new(),
                in_flight: 0,
                cancelled: false,
            }),
            changed: std::sync::Condvar::new(),
            prefetch: self.prefetch,
        });
        // The *window* (how far execution may run ahead) is `prefetch`; the
        // morsel concurrency is additionally capped by the host's
        // parallelism — a single slot can still fill a deep window, extra
        // concurrency only pays off when morsels actually run in parallel.
        let parallelism = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(4);
        let max_workers = self.prefetch.min(self.order.len()).min(parallelism).max(1);
        self.job.set_sim_parallelism(max_workers);
        let env = Arc::new(PumpEnv {
            ctx: self.job.ctx.clone(),
            rdd: self.job.rdd.clone(),
            order: self.order.clone(),
            sink: self.sink,
            f: self.f.clone(),
            trace: shark_obs::current(),
            max_workers,
            shared: shared.clone(),
        });
        pump(&env);
        self.pool = Some(shared);
        self.env = Some(env);
    }
}

impl<T: Data, U: Send + EstimateSize + 'static> Drop for PipelinedJob<T, U> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Shared implementation of the shuffle map stages: compute each parent
/// partition, bucket its records, store the buckets plus per-bucket
/// statistics in the shuffle manager, and time the stage.
fn run_map_stage_generic<K, PV, S, F>(
    ctx: &RddContext,
    parent: &Rdd<(K, PV)>,
    shuffle_id: usize,
    num_buckets: usize,
    name: &str,
    bucketize: F,
) -> Result<StageReport>
where
    K: Data + Hash + Eq,
    PV: Data,
    S: Data,
    F: Fn(Vec<(K, PV)>, usize) -> Vec<Vec<(K, S)>> + Send + Sync,
{
    let num_map_tasks = parent.num_partitions();
    ctx.shuffle_manager()
        .register(shuffle_id, num_map_tasks, num_buckets);
    let scale = ctx.config().sim_scale;
    let sort_shuffle = ctx.config().cluster.profile.sort_based_shuffle;

    let outcomes = run_tasks(ctx.config().parallel_tasks, num_map_tasks, |partition| {
        let mut metrics = TaskMetrics::new();
        let data = parent.compute_partition(ctx, partition, &mut metrics)?;
        let input_rows = data.len() as u64;
        let span = if shark_obs::active() {
            shark_obs::span("shuffle-write")
        } else {
            None
        };
        if let Some(span) = &span {
            span.set_partition(partition);
        }
        let buckets = bucketize(data, num_buckets);
        let bucket_bytes: Vec<u64> = buckets.iter().map(|b| estimate_slice(b) as u64).collect();
        let bucket_rows: Vec<u64> = buckets.iter().map(|b| b.len() as u64).collect();
        let total_bytes: u64 = bucket_bytes.iter().sum();
        let total_rows: u64 = bucket_rows.iter().sum();
        if let Some(span) = &span {
            span.set_rows(total_rows);
            span.set_bytes(total_bytes);
        }
        drop(span);
        // Hash-partitioning each record costs roughly one operation per row.
        metrics.add_ops(input_rows as f64);
        if sort_shuffle {
            metrics.add_sort(total_rows);
        }
        metrics.record_output(total_rows, total_bytes);
        ctx.shuffle_manager().put_map_output(
            shuffle_id,
            partition,
            buckets,
            MapOutputStats {
                bucket_bytes,
                bucket_rows,
            },
        )?;
        let cost = metrics.to_cost_input(scale, OutputSink::Shuffle);
        let duration = ctx.cost_model().task_duration(&cost);
        Ok(TaskOutcome {
            value: (),
            duration,
            preferred: parent.preferred_node(ctx, partition),
            rows_in: metrics.rows_in,
            bytes_in: metrics.bytes_in,
        })
    })?;

    let (report, _) = finish_stage(ctx, name, outcomes);
    Ok(report)
}

/// Map stage that hash-partitions records without combining.
pub(crate) fn run_shuffle_map_stage_raw<K, V>(
    ctx: &RddContext,
    parent: &Rdd<(K, V)>,
    shuffle_id: usize,
    num_buckets: usize,
) -> Result<StageReport>
where
    K: Data + Hash + Eq,
    V: Data,
{
    run_map_stage_generic(
        ctx,
        parent,
        shuffle_id,
        num_buckets,
        &format!("shuffle-map({shuffle_id})"),
        |data, buckets| {
            let mut out: Vec<Vec<(K, V)>> = (0..buckets).map(|_| Vec::new()).collect();
            for (k, v) in data {
                let b = shark_common::hash::hash_partition(&k, buckets);
                out[b].push((k, v));
            }
            out
        },
    )
}

/// Map stage that hash-partitions records and combines values per key
/// map-side with an [`Aggregator`] (partial aggregation, §3.1).
pub(crate) fn run_shuffle_map_stage_combined<K, V, C>(
    ctx: &RddContext,
    parent: &Rdd<(K, V)>,
    shuffle_id: usize,
    num_buckets: usize,
    agg: &Aggregator<V, C>,
) -> Result<StageReport>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    let agg = agg.clone();
    run_map_stage_generic(
        ctx,
        parent,
        shuffle_id,
        num_buckets,
        &format!("shuffle-map-combine({shuffle_id})"),
        move |data, buckets| {
            let mut tables: Vec<std::collections::HashMap<K, C>> = (0..buckets)
                .map(|_| std::collections::HashMap::new())
                .collect();
            for (k, v) in data {
                let b = shark_common::hash::hash_partition(&k, buckets);
                let table = &mut tables[b];
                match table.remove(&k) {
                    Some(c) => {
                        table.insert(k, (agg.merge_value)(c, v));
                    }
                    None => {
                        table.insert(k, (agg.create)(v));
                    }
                }
            }
            tables
                .into_iter()
                .map(|t| t.into_iter().collect())
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{RddConfig, RddContext};
    use shark_cluster::ClusterConfig;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn run_tasks_sequential_and_parallel_agree() {
        let f = |i: usize| {
            Ok(TaskOutcome {
                value: i * 2,
                duration: 0.1,
                preferred: None,
                rows_in: 1,
                bytes_in: 8,
            })
        };
        let seq = run_tasks(false, 16, f).unwrap();
        let par = run_tasks(true, 16, f).unwrap();
        let seq_vals: Vec<usize> = seq.into_iter().map(|o| o.value).collect();
        let par_vals: Vec<usize> = par.into_iter().map(|o| o.value).collect();
        assert_eq!(seq_vals, par_vals);
        assert_eq!(seq_vals[7], 14);
    }

    #[test]
    fn run_tasks_propagates_errors() {
        let r = run_tasks(false, 4, |i| {
            if i == 2 {
                Err(SharkError::Execution("boom".into()))
            } else {
                Ok(TaskOutcome {
                    value: (),
                    duration: 0.0,
                    preferred: None,
                    rows_in: 0,
                    bytes_in: 0,
                })
            }
        });
        assert!(r.is_err());
        let r = run_tasks(true, 4, |i| {
            if i == 2 {
                Err(SharkError::Execution("boom".into()))
            } else {
                Ok(TaskOutcome {
                    value: (),
                    duration: 0.0,
                    preferred: None,
                    rows_in: 0,
                    bytes_in: 0,
                })
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn run_tasks_reports_panics_as_errors_even_when_every_worker_panics() {
        // Every task panics, so every worker thread dies; run_tasks must
        // still return an Execution error rather than propagate the panic
        // out of the thread scope.
        let r = std::panic::catch_unwind(|| {
            run_tasks(true, 8, |_| -> Result<TaskOutcome<()>> {
                panic!("task blew up");
            })
        });
        let inner = r.expect("panic escaped run_tasks");
        match inner {
            Err(SharkError::Execution(msg)) => assert!(msg.contains("panicked")),
            Err(other) => panic!("expected Execution error, got {other:?}"),
            Ok(_) => panic!("expected Execution error, got Ok"),
        }
    }

    #[test]
    fn parallel_context_produces_same_results() {
        let config = RddConfig {
            cluster: ClusterConfig::small(4, 2),
            default_partitions: 8,
            sim_scale: 1.0,
            parallel_tasks: true,
        };
        let ctx = RddContext::new(config);
        let rdd = ctx.parallelize((0i64..1000).collect(), 16);
        let sum = rdd.map(|x| x * 3).reduce(|a, b| a + b).unwrap();
        assert_eq!(sum, Some(3 * 999 * 1000 / 2));
        let mut counts = rdd
            .map(|x| (x % 7, 1i64))
            .reduce_by_key(8, |a, b| a + b)
            .collect()
            .unwrap();
        counts.sort();
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<i64>(), 1000);
    }

    #[test]
    fn streaming_job_matches_collect_and_counts_stages() {
        let ctx = RddContext::local();
        let rdd = ctx.parallelize((0i64..100).collect(), 8).map(|x| x * 2);
        let expected = rdd.collect().unwrap();
        let mut job = rdd.stream("stream-collect").unwrap();
        assert_eq!(job.num_partitions(), 8);
        let mut streamed = Vec::new();
        for p in 0..job.num_partitions() {
            let batch: Vec<i64> = job
                .run_partition(p, shark_cluster::OutputSink::Collect, |rows, _m| rows)
                .unwrap();
            streamed.extend(batch);
        }
        assert_eq!(streamed, expected);
        assert_eq!(job.partitions_run(), 8);
        job.finish();
        let report = ctx.last_job().unwrap();
        assert_eq!(report.name, "stream-collect");
        assert_eq!(report.stages.len(), 8);
        assert!(report.sim_duration > 0.0);
    }

    #[test]
    fn streaming_job_stopped_early_runs_only_requested_partitions() {
        let ctx = RddContext::local();
        let computed = Arc::new(AtomicUsize::new(0));
        let counter = computed.clone();
        let rdd = ctx.generate(8, shark_cluster::InputSource::Dfs, move |p| {
            counter.fetch_add(1, Ordering::SeqCst);
            vec![p as i64]
        });
        {
            let mut job = rdd.stream("early-stop").unwrap();
            for p in 0..3 {
                job.run_partition(p, shark_cluster::OutputSink::Collect, |rows, _m| rows)
                    .unwrap();
            }
            // Dropped here: the report must cover exactly the 3 tasks run.
        }
        assert_eq!(computed.load(Ordering::SeqCst), 3);
        let report = ctx.last_job().unwrap();
        assert_eq!(report.stages.len(), 3);
    }

    #[test]
    fn streaming_job_runs_shuffle_deps_up_front() {
        let ctx = RddContext::local();
        let rdd = ctx.parallelize((0i64..100).collect(), 4);
        let reduced = rdd.map(|x| (x % 5, x)).reduce_by_key(4, |a, b| a + b);
        let mut job = reduced.stream("stream-agg").unwrap();
        let mut pairs = Vec::new();
        for p in 0..job.num_partitions() {
            pairs.extend(
                job.run_partition(p, shark_cluster::OutputSink::Collect, |rows, _m| rows)
                    .unwrap(),
            );
        }
        pairs.sort();
        let mut expected = reduced.collect().unwrap();
        expected.sort();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn pipelined_job_matches_serial_delivery_for_every_prefetch_depth() {
        let ctx = RddContext::local();
        let rdd = ctx.parallelize((0i64..400).collect(), 16).map(|x| x * 3);
        let expected = rdd.collect().unwrap();
        let mut sim_serial = None;
        let parallelism = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        for prefetch in [0usize, 1, 2, 7, 32] {
            let mut job = rdd
                .stream(&format!("pipelined({prefetch})"))
                .unwrap()
                .pipelined(
                    (0..16).collect(),
                    shark_cluster::OutputSink::Collect,
                    |rows, _m| rows,
                );
            job.set_prefetch(prefetch);
            let mut streamed = Vec::new();
            let mut partitions = Vec::new();
            while let Some((p, batch)) = job.next().unwrap() {
                partitions.push(p);
                streamed.extend(batch);
            }
            assert_eq!(streamed, expected, "prefetch={prefetch}");
            assert_eq!(partitions, (0..16).collect::<Vec<usize>>());
            assert_eq!(job.delivered(), 16);
            job.finish();
            // Delivered rows are identical at every depth; the simulated
            // cost reflects how many morsels ran concurrently — at most the
            // serial sum (prefetch 0/1 matches it exactly), strictly less
            // once two or more partitions can overlap.
            let sim = job.sim_seconds();
            match sim_serial {
                None => sim_serial = Some(sim),
                Some(reference) => {
                    assert!(
                        sim <= reference + 1e-9,
                        "prefetch={prefetch}: {sim} > {reference}"
                    );
                    if prefetch <= 1 {
                        assert!((sim - reference).abs() < 1e-9, "prefetch={prefetch}");
                    } else if parallelism >= 2 {
                        assert!(
                            sim < reference - 1e-9,
                            "prefetch={prefetch}: no overlap booked"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_job_respects_custom_order_and_window_bound() {
        let ctx = RddContext::local();
        let executed = Arc::new(AtomicUsize::new(0));
        let counter = executed.clone();
        let rdd = ctx.generate(8, shark_cluster::InputSource::Dfs, move |p| {
            counter.fetch_add(1, Ordering::SeqCst);
            vec![p as i64]
        });
        let order = vec![5usize, 1, 6, 0, 7, 2, 3, 4];
        let mut job = rdd.stream("ordered").unwrap().pipelined(
            order.clone(),
            shark_cluster::OutputSink::Collect,
            |rows, _m| rows,
        );
        job.set_prefetch(2);
        let (p0, rows0) = job.next().unwrap().expect("first partition");
        assert_eq!(p0, 5);
        assert_eq!(rows0, vec![5]);
        // Stop after one delivery: with a window of 2 at most
        // delivered + prefetch partitions may ever have executed, and
        // finish() joins the workers so the count is final.
        job.finish();
        // finish() latches: nothing further may execute or deliver, so the
        // recorded report stays accurate.
        assert!(job.next().unwrap().is_none(), "delivery after finish()");
        let ran = executed.load(Ordering::SeqCst);
        assert!(ran <= 1 + 2, "window violated: {ran} partitions ran");
        drop(job);
        assert_eq!(executed.load(Ordering::SeqCst), ran, "work after cancel");
        let report = ctx.last_job().unwrap();
        assert_eq!(report.stages.len(), 1, "only the delivered stage booked");
    }

    #[test]
    fn pipelined_job_surfaces_worker_errors_in_order_and_latches() {
        let ctx = RddContext::local();
        let rdd = ctx.generate(6, shark_cluster::InputSource::Dfs, |p| {
            if p == 2 {
                panic!("partition 2 exploded");
            }
            vec![p as i64]
        });
        for prefetch in [0usize, 3] {
            let mut job = rdd.stream("failing").unwrap().pipelined(
                (0..6).collect(),
                shark_cluster::OutputSink::Collect,
                |rows, _m| rows,
            );
            job.set_prefetch(prefetch);
            // Partitions 0 and 1 deliver even though a worker may already
            // have hit the partition-2 failure.
            assert_eq!(job.next().unwrap().unwrap().0, 0);
            assert_eq!(job.next().unwrap().unwrap().0, 1);
            let err = job.next().unwrap_err();
            assert!(
                err.to_string().contains("panicked"),
                "prefetch={prefetch}: {err}"
            );
            // Latched: subsequent calls deliver nothing, ever.
            assert!(job.next().unwrap().is_none(), "prefetch={prefetch}");
            assert!(job.next().unwrap().is_none(), "prefetch={prefetch}");
        }
    }

    #[test]
    fn job_sim_time_includes_shuffle_stages() {
        let ctx = RddContext::local();
        let rdd = ctx.parallelize((0i64..100).collect(), 4);
        rdd.map(|x| (x % 10, x))
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .unwrap();
        let job = ctx.last_job().unwrap();
        assert!(job.stages.len() >= 2);
        assert!(job.sim_duration > 0.0);
        assert!(job.real_duration >= 0.0);
    }
}
