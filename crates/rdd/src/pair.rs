//! Key/value (pair) RDD operations: shuffles, aggregations, joins, and the
//! Partial-DAG-Execution hooks.
//!
//! The wide operations here introduce shuffle dependencies: `reduce_by_key`,
//! `group_by_key`, `combine_by_key`, `partition_by`, `cogroup` and `join`.
//! In addition, [`Rdd::pre_shuffle`] materializes just the *map side* of a
//! shuffle and hands back a [`PreShuffledRdd`] whose statistics
//! ([`crate::shuffle::ShuffleSummary`]) the query optimizer
//! can inspect before deciding how to consume the shuffle — the mechanism
//! behind the paper's partial DAG execution (§3.1): choosing map vs. shuffle
//! joins, picking the number of reducers, and bin-packing skewed buckets.

use std::collections::HashMap;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use shark_cluster::InputSource;
use shark_common::Result;

use crate::context::{RddContext, StageReport};
use crate::metrics::TaskMetrics;
use crate::rdd::{Data, Lineage, Rdd, RddImpl, ShuffleDepHandle};
use crate::scheduler;
use crate::shuffle::ShuffleSummary;

/// Combiner functions used for shuffle-time aggregation, mirroring Spark's
/// `Aggregator`: `create` turns the first value for a key into a combiner,
/// `merge_value` folds further values in, and `merge_combiners` merges
/// map-side partial aggregates on the reduce side.
pub struct Aggregator<V, C> {
    /// Create a combiner from the first value observed for a key.
    pub create: Arc<dyn Fn(V) -> C + Send + Sync>,
    /// Fold one more value into an existing combiner.
    pub merge_value: Arc<dyn Fn(C, V) -> C + Send + Sync>,
    /// Merge two partial combiners.
    pub merge_combiners: Arc<dyn Fn(C, C) -> C + Send + Sync>,
}

impl<V, C> Clone for Aggregator<V, C> {
    fn clone(&self) -> Self {
        Aggregator {
            create: self.create.clone(),
            merge_value: self.merge_value.clone(),
            merge_combiners: self.merge_combiners.clone(),
        }
    }
}

impl<V, C> Aggregator<V, C> {
    /// Build an aggregator from the three combiner functions.
    pub fn new<FC, FV, FM>(create: FC, merge_value: FV, merge_combiners: FM) -> Aggregator<V, C>
    where
        FC: Fn(V) -> C + Send + Sync + 'static,
        FV: Fn(C, V) -> C + Send + Sync + 'static,
        FM: Fn(C, C) -> C + Send + Sync + 'static,
    {
        Aggregator {
            create: Arc::new(create),
            merge_value: Arc::new(merge_value),
            merge_combiners: Arc::new(merge_combiners),
        }
    }
}

/// The input source a reduce task reads shuffle data from, per the profile
/// (§5: Shark keeps map output in memory, Hadoop spills it to disk).
pub(crate) fn shuffle_fetch_source(ctx: &RddContext) -> InputSource {
    if ctx.config().cluster.profile.shuffle_to_disk {
        InputSource::ShuffleDisk
    } else {
        InputSource::ShuffleMemory
    }
}

// ---------------------------------------------------------------------------
// Shuffle dependencies
// ---------------------------------------------------------------------------

/// Shuffle dependency that combines values map-side with an [`Aggregator`]
/// (stores `(K, C)` pairs).
pub struct CombineShuffleDep<K: Data + Hash + Eq, V: Data, C: Data> {
    pub(crate) shuffle_id: usize,
    pub(crate) num_buckets: usize,
    pub(crate) parent: Rdd<(K, V)>,
    pub(crate) aggregator: Aggregator<V, C>,
}

impl<K: Data + Hash + Eq, V: Data, C: Data> ShuffleDepHandle for CombineShuffleDep<K, V, C> {
    fn shuffle_id(&self) -> usize {
        self.shuffle_id
    }
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }
    fn parent_lineage(&self) -> Arc<dyn Lineage> {
        self.parent.lineage()
    }
    fn is_materialized(&self, ctx: &RddContext) -> bool {
        ctx.shuffle_manager().is_complete(self.shuffle_id)
    }
    fn run_map_stage(&self, ctx: &RddContext) -> Result<StageReport> {
        scheduler::run_shuffle_map_stage_combined(
            ctx,
            &self.parent,
            self.shuffle_id,
            self.num_buckets,
            &self.aggregator,
        )
    }
}

/// Shuffle dependency without map-side combining (stores raw `(K, V)` pairs).
pub struct RepartitionShuffleDep<K: Data + Hash + Eq, V: Data> {
    pub(crate) shuffle_id: usize,
    pub(crate) num_buckets: usize,
    pub(crate) parent: Rdd<(K, V)>,
}

impl<K: Data + Hash + Eq, V: Data> ShuffleDepHandle for RepartitionShuffleDep<K, V> {
    fn shuffle_id(&self) -> usize {
        self.shuffle_id
    }
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }
    fn parent_lineage(&self) -> Arc<dyn Lineage> {
        self.parent.lineage()
    }
    fn is_materialized(&self, ctx: &RddContext) -> bool {
        ctx.shuffle_manager().is_complete(self.shuffle_id)
    }
    fn run_map_stage(&self, ctx: &RddContext) -> Result<StageReport> {
        scheduler::run_shuffle_map_stage_raw(ctx, &self.parent, self.shuffle_id, self.num_buckets)
    }
}

// ---------------------------------------------------------------------------
// Wide RDD implementations
// ---------------------------------------------------------------------------

/// Result of `combine_by_key` / `reduce_by_key` / `group_by_key`: reads the
/// map-side-combined shuffle output and merges combiners per key.
pub struct ShuffledRdd<K: Data + Hash + Eq, V: Data, C: Data> {
    id: usize,
    num_partitions: usize,
    dep: Arc<CombineShuffleDep<K, V, C>>,
}

impl<K: Data + Hash + Eq, V: Data, C: Data> RddImpl<(K, C)> for ShuffledRdd<K, V, C> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        "shuffled".to_string()
    }
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<(K, C)>> {
        let (pairs, bytes): (Vec<(K, C)>, u64) = ctx
            .shuffle_manager()
            .fetch(self.dep.shuffle_id, partition)?;
        metrics.record_input(pairs.len() as u64, bytes, shuffle_fetch_source(ctx));
        metrics.add_ops(pairs.len() as f64 * 2.0);
        let mut table: HashMap<K, C> = HashMap::new();
        let merge = self.dep.aggregator.merge_combiners.clone();
        for (k, c) in pairs {
            match table.remove(&k) {
                Some(existing) => {
                    table.insert(k, merge(existing, c));
                }
                None => {
                    table.insert(k, c);
                }
            }
        }
        Ok(table.into_iter().collect())
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        vec![self.dep.parent.lineage()]
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        vec![self.dep.clone()]
    }
}

/// Result of `partition_by`: the same pairs, hash-partitioned by key.
pub struct RepartitionedRdd<K: Data + Hash + Eq, V: Data> {
    id: usize,
    num_partitions: usize,
    dep: Arc<RepartitionShuffleDep<K, V>>,
}

impl<K: Data + Hash + Eq, V: Data> RddImpl<(K, V)> for RepartitionedRdd<K, V> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        "repartitioned".to_string()
    }
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<(K, V)>> {
        let (pairs, bytes): (Vec<(K, V)>, u64) = ctx
            .shuffle_manager()
            .fetch(self.dep.shuffle_id, partition)?;
        metrics.record_input(pairs.len() as u64, bytes, shuffle_fetch_source(ctx));
        Ok(pairs)
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        vec![self.dep.parent.lineage()]
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        vec![self.dep.clone()]
    }
}

/// Result of `cogroup`: for each key, the values from both sides.
pub struct CoGroupedRdd<K: Data + Hash + Eq, V: Data, W: Data> {
    id: usize,
    num_partitions: usize,
    left: Arc<RepartitionShuffleDep<K, V>>,
    right: Arc<RepartitionShuffleDep<K, W>>,
}

impl<K: Data + Hash + Eq, V: Data, W: Data> RddImpl<(K, (Vec<V>, Vec<W>))>
    for CoGroupedRdd<K, V, W>
{
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        "cogroup".to_string()
    }
    fn num_partitions(&self) -> usize {
        self.num_partitions
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<(K, (Vec<V>, Vec<W>))>> {
        let (lpairs, lbytes): (Vec<(K, V)>, u64) = ctx
            .shuffle_manager()
            .fetch(self.left.shuffle_id, partition)?;
        let (rpairs, rbytes): (Vec<(K, W)>, u64) = ctx
            .shuffle_manager()
            .fetch(self.right.shuffle_id, partition)?;
        let source = shuffle_fetch_source(ctx);
        metrics.record_input(lpairs.len() as u64, lbytes, source);
        metrics.record_input(rpairs.len() as u64, rbytes, source);
        metrics.add_ops((lpairs.len() + rpairs.len()) as f64 * 2.0);

        let mut table: HashMap<K, (Vec<V>, Vec<W>)> = HashMap::new();
        for (k, v) in lpairs {
            table.entry(k).or_default().0.push(v);
        }
        for (k, w) in rpairs {
            table.entry(k).or_default().1.push(w);
        }
        Ok(table.into_iter().collect())
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        vec![self.left.parent.lineage(), self.right.parent.lineage()]
    }
    fn shuffle_deps(&self) -> Vec<Arc<dyn ShuffleDepHandle>> {
        vec![self.left.clone(), self.right.clone()]
    }
}

/// Reads an already-materialized shuffle with an arbitrary assignment of
/// buckets to partitions (used by PDE to coalesce small buckets, §3.1.2).
pub struct ShuffleReadRdd<K: Data + Hash + Eq, V: Data> {
    id: usize,
    shuffle_id: usize,
    assignment: Arc<Vec<Vec<usize>>>,
    parent_lineage: Arc<dyn Lineage>,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K: Data + Hash + Eq, V: Data> RddImpl<(K, V)> for ShuffleReadRdd<K, V> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        "shuffle_read".to_string()
    }
    fn num_partitions(&self) -> usize {
        self.assignment.len()
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<(K, V)>> {
        let mut out = Vec::new();
        let source = shuffle_fetch_source(ctx);
        for &bucket in &self.assignment[partition] {
            let (pairs, bytes): (Vec<(K, V)>, u64) =
                ctx.shuffle_manager().fetch(self.shuffle_id, bucket)?;
            metrics.record_input(pairs.len() as u64, bytes, source);
            out.extend(pairs);
        }
        Ok(out)
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        vec![self.parent_lineage.clone()]
    }
}

/// Like [`ShuffleReadRdd`] but aggregates the fetched values per key with an
/// [`Aggregator`] (the reduce side of a PDE-planned aggregation).
pub struct ShuffleReadAggRdd<K: Data + Hash + Eq, V: Data, C: Data> {
    id: usize,
    shuffle_id: usize,
    assignment: Arc<Vec<Vec<usize>>>,
    aggregator: Aggregator<V, C>,
    parent_lineage: Arc<dyn Lineage>,
    _marker: PhantomData<fn() -> K>,
}

impl<K: Data + Hash + Eq, V: Data, C: Data> RddImpl<(K, C)> for ShuffleReadAggRdd<K, V, C> {
    fn id(&self) -> usize {
        self.id
    }
    fn name(&self) -> String {
        "shuffle_read_agg".to_string()
    }
    fn num_partitions(&self) -> usize {
        self.assignment.len()
    }
    fn compute(
        &self,
        ctx: &RddContext,
        partition: usize,
        metrics: &mut TaskMetrics,
    ) -> Result<Vec<(K, C)>> {
        let source = shuffle_fetch_source(ctx);
        let mut table: HashMap<K, C> = HashMap::new();
        for &bucket in &self.assignment[partition] {
            let (pairs, bytes): (Vec<(K, V)>, u64) =
                ctx.shuffle_manager().fetch(self.shuffle_id, bucket)?;
            metrics.record_input(pairs.len() as u64, bytes, source);
            metrics.add_ops(pairs.len() as f64 * 2.0);
            for (k, v) in pairs {
                match table.remove(&k) {
                    Some(c) => {
                        table.insert(k, (self.aggregator.merge_value)(c, v));
                    }
                    None => {
                        table.insert(k, (self.aggregator.create)(v));
                    }
                }
            }
        }
        Ok(table.into_iter().collect())
    }
    fn parents(&self) -> Vec<Arc<dyn Lineage>> {
        vec![self.parent_lineage.clone()]
    }
}

// ---------------------------------------------------------------------------
// The PDE handle: a materialized map side
// ---------------------------------------------------------------------------

/// A shuffle whose map stage has already run. Exposes the gathered
/// statistics and lets the caller choose how to read the reduce side — the
/// run-time re-optimization point of Partial DAG Execution.
pub struct PreShuffledRdd<K: Data + Hash + Eq, V: Data> {
    ctx: RddContext,
    shuffle_id: usize,
    num_buckets: usize,
    summary: ShuffleSummary,
    stage: StageReport,
    parent_lineage: Arc<dyn Lineage>,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K: Data + Hash + Eq, V: Data> PreShuffledRdd<K, V> {
    /// Aggregated map-output statistics (sizes and record counts per bucket).
    pub fn summary(&self) -> &ShuffleSummary {
        &self.summary
    }

    /// The simulated timing of the map stage that produced this shuffle.
    pub fn stage_report(&self) -> &StageReport {
        &self.stage
    }

    /// Number of fine-grained buckets produced by the map stage.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// The shuffle id in the shuffle manager.
    pub fn shuffle_id(&self) -> usize {
        self.shuffle_id
    }

    /// Read the shuffle with an explicit assignment of buckets to reduce
    /// partitions (each inner vector is one reduce task's bucket list).
    pub fn read(&self, assignment: Vec<Vec<usize>>) -> Rdd<(K, V)> {
        let inner = ShuffleReadRdd {
            id: self.ctx.next_rdd_id(),
            shuffle_id: self.shuffle_id,
            assignment: Arc::new(assignment),
            parent_lineage: self.parent_lineage.clone(),
            _marker: PhantomData,
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Read the shuffle with one reduce partition per bucket.
    pub fn read_identity(&self) -> Rdd<(K, V)> {
        self.read((0..self.num_buckets).map(|b| vec![b]).collect())
    }

    /// Read the shuffle, aggregating values per key with `agg`, using an
    /// explicit bucket assignment.
    pub fn read_aggregated<C: Data>(
        &self,
        assignment: Vec<Vec<usize>>,
        agg: Aggregator<V, C>,
    ) -> Rdd<(K, C)> {
        let inner = ShuffleReadAggRdd {
            id: self.ctx.next_rdd_id(),
            shuffle_id: self.shuffle_id,
            assignment: Arc::new(assignment),
            aggregator: agg,
            parent_lineage: self.parent_lineage.clone(),
            _marker: PhantomData,
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Fetch the entire shuffle to the driver (used when PDE decides the
    /// relation is small enough to broadcast, §3.1.1).
    pub fn collect_all(&self) -> Result<Vec<(K, V)>> {
        self.read_identity().collect()
    }
}

// ---------------------------------------------------------------------------
// Pair operations on Rdd<(K, V)>
// ---------------------------------------------------------------------------

impl<K: Data + Hash + Eq, V: Data> Rdd<(K, V)> {
    /// Generic shuffle aggregation with map-side combining.
    pub fn combine_by_key<C: Data>(
        &self,
        num_partitions: usize,
        agg: Aggregator<V, C>,
    ) -> Rdd<(K, C)> {
        let num_partitions = num_partitions.max(1);
        let dep = Arc::new(CombineShuffleDep {
            shuffle_id: self.ctx.next_shuffle_id(),
            num_buckets: num_partitions,
            parent: self.clone(),
            aggregator: agg,
        });
        let inner = ShuffledRdd {
            id: self.ctx.next_rdd_id(),
            num_partitions,
            dep,
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Merge all values of each key with a binary function.
    pub fn reduce_by_key<F>(&self, num_partitions: usize, f: F) -> Rdd<(K, V)>
    where
        F: Fn(V, V) -> V + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let f1 = f.clone();
        let f2 = f.clone();
        self.combine_by_key(
            num_partitions,
            Aggregator::new(|v| v, move |c, v| f1(c, v), move |a, b| f2(a, b)),
        )
    }

    /// Group all values of each key into a vector.
    pub fn group_by_key(&self, num_partitions: usize) -> Rdd<(K, Vec<V>)> {
        self.combine_by_key(
            num_partitions,
            Aggregator::new(
                |v| vec![v],
                |mut c: Vec<V>, v| {
                    c.push(v);
                    c
                },
                |mut a: Vec<V>, mut b: Vec<V>| {
                    a.append(&mut b);
                    a
                },
            ),
        )
    }

    /// Hash-partition the pairs by key without aggregating (DISTRIBUTE BY /
    /// co-partitioning, §3.4).
    pub fn partition_by(&self, num_partitions: usize) -> Rdd<(K, V)> {
        let num_partitions = num_partitions.max(1);
        let dep = Arc::new(RepartitionShuffleDep {
            shuffle_id: self.ctx.next_shuffle_id(),
            num_buckets: num_partitions,
            parent: self.clone(),
        });
        let inner = RepartitionedRdd {
            id: self.ctx.next_rdd_id(),
            num_partitions,
            dep,
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Transform the values, keeping the keys.
    pub fn map_values<U: Data, F>(&self, f: F) -> Rdd<(K, U)>
    where
        F: Fn(V) -> U + Send + Sync + 'static,
    {
        self.map(move |(k, v)| (k, f(v)))
    }

    /// The keys of all pairs.
    pub fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k)
    }

    /// The values of all pairs.
    pub fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v)
    }

    /// For each key, gather the values from both RDDs.
    #[allow(clippy::type_complexity)]
    pub fn cogroup<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> Rdd<(K, (Vec<V>, Vec<W>))> {
        let num_partitions = num_partitions.max(1);
        let left = Arc::new(RepartitionShuffleDep {
            shuffle_id: self.ctx.next_shuffle_id(),
            num_buckets: num_partitions,
            parent: self.clone(),
        });
        let right = Arc::new(RepartitionShuffleDep {
            shuffle_id: self.ctx.next_shuffle_id(),
            num_buckets: num_partitions,
            parent: other.clone(),
        });
        let inner = CoGroupedRdd {
            id: self.ctx.next_rdd_id(),
            num_partitions,
            left,
            right,
        };
        Rdd::new(self.ctx.clone(), Arc::new(inner))
    }

    /// Inner equi-join on the key (shuffle join).
    pub fn join<W: Data>(&self, other: &Rdd<(K, W)>, num_partitions: usize) -> Rdd<(K, (V, W))> {
        self.cogroup(other, num_partitions)
            .flat_map(|(k, (vs, ws))| {
                let mut out = Vec::with_capacity(vs.len() * ws.len());
                for v in &vs {
                    for w in &ws {
                        out.push((k.clone(), (v.clone(), w.clone())));
                    }
                }
                out
            })
    }

    /// Count occurrences of each key on the driver.
    pub fn count_by_key(&self) -> Result<HashMap<K, u64>> {
        let counts = self
            .map(|(k, _)| (k, 1u64))
            .reduce_by_key(self.ctx.config().default_partitions, |a, b| a + b)
            .collect()?;
        Ok(counts.into_iter().collect())
    }

    /// Run the map side of a shuffle *now*, without aggregation, and return
    /// a handle exposing its statistics (the PDE hook).
    pub fn pre_shuffle(&self, num_buckets: usize) -> Result<PreShuffledRdd<K, V>> {
        let num_buckets = num_buckets.max(1);
        let shuffle_id = self.ctx.next_shuffle_id();
        scheduler::ensure_shuffle_deps(&self.ctx, &self.lineage_ref())?;
        let stage = scheduler::run_shuffle_map_stage_raw(&self.ctx, self, shuffle_id, num_buckets)?;
        let summary = self.ctx.shuffle_manager().summary(shuffle_id)?;
        self.ctx.record_job(crate::context::JobReport {
            name: format!("pre_shuffle({shuffle_id})"),
            sim_duration: stage.sim_duration,
            real_duration: 0.0,
            stages: vec![stage.clone()],
        });
        Ok(PreShuffledRdd {
            ctx: self.ctx.clone(),
            shuffle_id,
            num_buckets,
            summary,
            stage,
            parent_lineage: self.lineage(),
            _marker: PhantomData,
        })
    }

    /// Like [`Rdd::pre_shuffle`], but combines values map-side with `agg`
    /// first (partial aggregation before the statistics are gathered).
    pub fn pre_shuffle_combined<C: Data>(
        &self,
        num_buckets: usize,
        agg: Aggregator<V, C>,
    ) -> Result<PreShuffledRdd<K, C>> {
        let num_buckets = num_buckets.max(1);
        let shuffle_id = self.ctx.next_shuffle_id();
        scheduler::ensure_shuffle_deps(&self.ctx, &self.lineage_ref())?;
        let stage = scheduler::run_shuffle_map_stage_combined(
            &self.ctx,
            self,
            shuffle_id,
            num_buckets,
            &agg,
        )?;
        let summary = self.ctx.shuffle_manager().summary(shuffle_id)?;
        self.ctx.record_job(crate::context::JobReport {
            name: format!("pre_shuffle_combined({shuffle_id})"),
            sim_duration: stage.sim_duration,
            real_duration: 0.0,
            stages: vec![stage.clone()],
        });
        Ok(PreShuffledRdd {
            ctx: self.ctx.clone(),
            shuffle_id,
            num_buckets,
            summary,
            stage,
            parent_lineage: self.lineage(),
            _marker: PhantomData,
        })
    }

    fn lineage_ref(&self) -> Rdd<(K, V)> {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RddContext;

    fn ctx() -> RddContext {
        RddContext::local()
    }

    fn word_pairs(ctx: &RddContext) -> Rdd<(String, i64)> {
        let words = vec![
            ("a".to_string(), 1i64),
            ("b".to_string(), 1),
            ("a".to_string(), 2),
            ("c".to_string(), 5),
            ("b".to_string(), 3),
            ("a".to_string(), 4),
        ];
        ctx.parallelize(words, 3)
    }

    #[test]
    fn reduce_by_key_sums_per_key() {
        let ctx = ctx();
        let mut out = word_pairs(&ctx)
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 7),
                ("b".to_string(), 4),
                ("c".to_string(), 5)
            ]
        );
    }

    #[test]
    fn group_by_key_collects_values() {
        let ctx = ctx();
        let mut out = word_pairs(&ctx).group_by_key(2).collect().unwrap();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let a = &out[0];
        assert_eq!(a.0, "a");
        let mut vals = a.1.clone();
        vals.sort();
        assert_eq!(vals, vec![1, 2, 4]);
    }

    #[test]
    fn partition_by_preserves_data_and_co_locates_keys() {
        let ctx = ctx();
        let parted = word_pairs(&ctx).partition_by(4);
        assert_eq!(parted.num_partitions(), 4);
        let mut out = parted.collect().unwrap();
        out.sort();
        assert_eq!(out.len(), 6);
        // All pairs with the same key end up in the same partition: verify by
        // computing each partition and checking key disjointness.
        let per_part = scheduler::run_job(
            &ctx,
            &parted,
            "inspect",
            shark_cluster::OutputSink::Collect,
            |v| v,
        )
        .unwrap();
        let mut seen: HashMap<String, usize> = HashMap::new();
        for (pi, part) in per_part.iter().enumerate() {
            for (k, _) in part {
                if let Some(prev) = seen.insert(k.clone(), pi) {
                    assert_eq!(prev, pi, "key {k} split across partitions");
                }
            }
        }
    }

    #[test]
    fn join_matches_keys() {
        let ctx = ctx();
        let left = ctx.parallelize(
            vec![
                (1i64, "l1".to_string()),
                (2, "l2".to_string()),
                (3, "l3".to_string()),
            ],
            2,
        );
        let right = ctx.parallelize(vec![(2i64, 20.0f64), (3, 30.0), (3, 33.0), (4, 40.0)], 2);
        let mut joined = left.join(&right, 3).collect().unwrap();
        joined.sort_by_key(|a| (a.0, a.1 .1 as i64));
        assert_eq!(
            joined,
            vec![
                (2, ("l2".to_string(), 20.0)),
                (3, ("l3".to_string(), 30.0)),
                (3, ("l3".to_string(), 33.0)),
            ]
        );
    }

    #[test]
    fn cogroup_includes_unmatched_keys() {
        let ctx = ctx();
        let left = ctx.parallelize(vec![(1i64, 10i64)], 1);
        let right = ctx.parallelize(vec![(2i64, 20i64)], 1);
        let mut out = left.cogroup(&right, 2).collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (1, (vec![10], vec![])));
        assert_eq!(out[1], (2, (vec![], vec![20])));
    }

    #[test]
    fn map_values_keys_values() {
        let ctx = ctx();
        let rdd = ctx.parallelize(vec![(1i64, 2i64), (3, 4)], 1);
        assert_eq!(
            rdd.map_values(|v| v * 10).collect().unwrap(),
            vec![(1, 20), (3, 40)]
        );
        assert_eq!(rdd.keys().collect().unwrap(), vec![1, 3]);
        assert_eq!(rdd.values().collect().unwrap(), vec![2, 4]);
    }

    #[test]
    fn count_by_key_counts() {
        let ctx = ctx();
        let counts = word_pairs(&ctx).count_by_key().unwrap();
        assert_eq!(counts.get("a"), Some(&3));
        assert_eq!(counts.get("b"), Some(&2));
        assert_eq!(counts.get("c"), Some(&1));
    }

    #[test]
    fn pre_shuffle_exposes_statistics_and_reads_back() {
        let ctx = ctx();
        let pre = word_pairs(&ctx).pre_shuffle(8).unwrap();
        let summary = pre.summary();
        assert_eq!(summary.num_buckets, 8);
        assert_eq!(summary.total_rows, 6);
        assert_eq!(summary.bucket_rows.iter().sum::<u64>(), 6);
        // Identity read returns everything.
        let mut all = pre.collect_all().unwrap();
        all.sort();
        assert_eq!(all.len(), 6);
        // Coalesced read into 2 partitions also returns everything.
        let coalesced = pre
            .read(vec![(0..4).collect(), (4..8).collect()])
            .collect()
            .unwrap();
        assert_eq!(coalesced.len(), 6);
    }

    #[test]
    fn pre_shuffle_combined_partially_aggregates() {
        let ctx = ctx();
        let agg = Aggregator::new(|v: i64| v, |c, v| c + v, |a, b| a + b);
        let pre = word_pairs(&ctx)
            .pre_shuffle_combined(4, agg.clone())
            .unwrap();
        // Map-side combining means at most one record per (map task, key).
        assert!(pre.summary().total_rows <= 6);
        let mut out = pre
            .read_aggregated(vec![(0..4).collect()], agg)
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 7),
                ("b".to_string(), 4),
                ("c".to_string(), 5)
            ]
        );
    }

    #[test]
    fn chained_shuffles_work() {
        let ctx = ctx();
        // word count, then count how many words have each count value.
        let counts = word_pairs(&ctx).reduce_by_key(4, |a, b| a + b);
        let by_total = counts
            .map(|(_, total)| (total, 1i64))
            .reduce_by_key(2, |a, b| a + b);
        let mut out = by_total.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![(4, 1), (5, 1), (7, 1)]);
        // The job report should show multiple stages ran.
        let report = ctx.last_job().unwrap();
        assert!(
            report.stages.len() >= 2,
            "stages: {:?}",
            report.stages.len()
        );
    }
}
