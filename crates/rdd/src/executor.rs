//! The shared work-stealing task executor.
//!
//! Every job in the process — batch stages submitted through the DAG
//! scheduler's [`run_tasks`](crate::scheduler) and streamed morsels pumped
//! by [`PipelinedJob`](crate::PipelinedJob) — runs on one process-wide pool
//! of worker threads instead of spawning a fresh `std::thread::scope` per
//! query. A *morsel* is one partition task; workers keep their own deque
//! (newest-first, for cache locality) and steal the oldest morsel from a
//! sibling when their own deque and the shared injector run dry, so a query
//! with a single long partition cannot strand the other workers idle while
//! a concurrent query has morsels queued.
//!
//! The pool size is taken from the `SHARK_EXECUTOR_THREADS` environment
//! variable when the global executor is first touched (falling back to the
//! host's available parallelism); serving layers may fix it earlier via
//! [`Executor::configure_global`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Distinguishes worker threads of different executors (unit tests create
/// private pools next to the global one).
static NEXT_EXECUTOR_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(executor id, worker index)` when the current thread is a pool
    /// worker — lets `spawn` from inside a task target the worker's own
    /// deque instead of the shared injector.
    static WORKER: std::cell::Cell<Option<(u64, usize)>> = const { std::cell::Cell::new(None) };
}

struct ExecutorShared {
    id: u64,
    /// Tasks submitted from outside the pool, oldest first.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; the owner pushes and pops at the back, thieves
    /// take from the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Pairs with `wake` to park idle workers without losing notifications:
    /// producers bump `pending` and notify while holding the lock.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Tasks enqueued anywhere but not yet picked up.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    steals: AtomicU64,
}

impl ExecutorShared {
    /// Take one task: own deque (newest first), then the injector, then
    /// steal the oldest task from another worker's deque.
    fn find_task(&self, index: usize) -> Option<Task> {
        if let Some(task) = lock(&self.locals[index]).pop_back() {
            return Some(task);
        }
        if let Some(task) = lock(&self.injector).pop_front() {
            return Some(task);
        }
        for offset in 1..self.locals.len() {
            let victim = (index + offset) % self.locals.len();
            if let Some(task) = lock(&self.locals[victim]).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn push(&self, task: Task, worker: Option<usize>) {
        match worker {
            Some(index) => lock(&self.locals[index]).push_back(task),
            None => lock(&self.injector).push_back(task),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Notify under the sleep lock so a worker that just checked
        // `pending` and is about to wait cannot miss the wakeup.
        let _guard = lock(&self.sleep);
        self.wake.notify_one();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: Arc<ExecutorShared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id, index))));
    loop {
        if let Some(task) = shared.find_task(index) {
            if shared.pending.fetch_sub(1, Ordering::SeqCst) > 1 {
                // More work is queued: cascade the wakeup to a sibling.
                let _guard = lock(&shared.sleep);
                shared.wake.notify_one();
            }
            // A panicking task must not take the worker down with it: the
            // submitter observes the panic through its own completion state
            // (e.g. `run_tasks` latches an execution error), and the worker
            // moves on to the next morsel.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            continue;
        }
        let guard = lock(&shared.sleep);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.pending.load(Ordering::SeqCst) > 0 {
            continue;
        }
        drop(shared.wake.wait(guard));
    }
}

/// A work-stealing pool of worker threads executing boxed tasks (morsels).
///
/// Most callers use the process-wide instance returned by
/// [`Executor::global`]; tests may build private pools with
/// [`Executor::new`], which are shut down (draining queued tasks first) on
/// drop.
pub struct Executor {
    shared: Arc<ExecutorShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Build a private pool with `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Executor {
        let threads = threads.max(1);
        let shared = Arc::new(ExecutorShared {
            id: NEXT_EXECUTOR_ID.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("shark-worker-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, handles }
    }

    /// The process-wide executor, created on first use. Its size comes from
    /// [`Executor::configure_global`] if that ran first, else the
    /// `SHARK_EXECUTOR_THREADS` environment variable, else the host's
    /// available parallelism.
    pub fn global() -> &'static Executor {
        global_cell().get_or_init(|| Executor::new(default_threads()))
    }

    /// Fix the global executor's thread count before anything uses it.
    /// Returns `false` (without resizing) when the global pool already
    /// exists — pool size is a process-lifetime decision.
    pub fn configure_global(threads: usize) -> bool {
        let mut installed = false;
        global_cell().get_or_init(|| {
            installed = true;
            Executor::new(threads)
        });
        installed
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.locals.len()
    }

    /// Tasks queued but not yet picked up by a worker.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// How many tasks were stolen from another worker's deque — a liveness
    /// signal for the stealing path, surfaced for tests and diagnostics.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Submit one task. From a pool worker the task lands on that worker's
    /// own deque (newest-first); from any other thread it goes to the
    /// shared injector.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let worker = WORKER.with(|w| w.get()).and_then(|(id, index)| {
            if id == self.shared.id {
                Some(index)
            } else {
                None
            }
        });
        self.shared.push(Box::new(f), worker);
    }

    /// Run a batch of borrowed tasks to completion, blocking the caller
    /// until every task has executed. The caller's thread helps drain the
    /// batch, so this makes progress even when every pool worker is busy
    /// with other queries — and it is what lets the DAG scheduler submit
    /// stage tasks that borrow from the stack.
    pub fn run_scoped<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        struct Batch {
            queue: Mutex<VecDeque<Task>>,
            done: Mutex<usize>,
            cv: Condvar,
        }
        impl Batch {
            fn run_one(&self) -> bool {
                let task = lock(&self.queue).pop_front();
                match task {
                    Some(task) => {
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                        *lock(&self.done) += 1;
                        self.cv.notify_all();
                        true
                    }
                    None => false,
                }
            }
        }
        let n = tasks.len();
        if n == 0 {
            return;
        }
        // SAFETY: the borrowed closures are erased to 'static so pool
        // workers can hold them, but this function does not return until
        // `done == n`, i.e. until every closure has finished running — so
        // no closure outlives the borrows it captures.
        let tasks: VecDeque<Task> = tasks
            .into_iter()
            .map(|task| unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task)
            })
            .collect();
        let batch = Arc::new(Batch {
            queue: Mutex::new(tasks),
            done: Mutex::new(0),
            cv: Condvar::new(),
        });
        // One ticket per task: a ticket runs at most one batch task, so the
        // batch can never occupy more than `n` workers, and tickets finding
        // the queue already drained (by the caller or siblings) are no-ops.
        for _ in 0..n.min(self.threads()) {
            let batch = batch.clone();
            self.spawn(move || {
                batch.run_one();
            });
        }
        while batch.run_one() {}
        let mut done = lock(&batch.done);
        while *done < n {
            done = batch.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = lock(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn global_cell() -> &'static OnceLock<Executor> {
    static GLOBAL: OnceLock<Executor> = OnceLock::new();
    &GLOBAL
}

fn default_threads() -> usize {
    if let Ok(value) = std::env::var("SHARK_EXECUTOR_THREADS") {
        if let Ok(threads) = value.trim().parse::<usize>() {
            return threads.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn spawn_runs_every_task() {
        let pool = Executor::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..64 {
            let count = count.clone();
            let done = done.clone();
            pool.spawn(move || {
                count.fetch_add(1, Ordering::SeqCst);
                *lock(&done.0) += 1;
                done.1.notify_all();
            });
        }
        let mut finished = lock(&done.0);
        while *finished < 64 {
            finished = done.1.wait(finished).unwrap();
        }
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn run_scoped_borrows_from_the_stack_and_waits_for_completion() {
        let pool = Executor::new(3);
        let results: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
            .map(|i| {
                let results = &results;
                Box::new(move || {
                    results[i].store(i * 7 + 1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        for (i, slot) in results.iter().enumerate() {
            assert_eq!(slot.load(Ordering::SeqCst), i * 7 + 1, "task {i}");
        }
    }

    #[test]
    fn workers_steal_from_a_loaded_sibling_deque() {
        let pool = Executor::new(4);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let ran = Arc::new(AtomicUsize::new(0));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        // One seed task spawns a burst of follow-ups from inside the pool:
        // they all land on the seed worker's own deque, so the only way the
        // other three workers ever run one is by stealing it.
        {
            let pool_shared = pool.shared.clone();
            let gate = gate.clone();
            let ran = ran.clone();
            let done = done.clone();
            pool.spawn(move || {
                let worker = WORKER.with(|w| w.get()).expect("on a pool worker");
                assert_eq!(worker.0, pool_shared.id);
                for _ in 0..32 {
                    let ran = ran.clone();
                    let done = done.clone();
                    pool_shared.push(
                        Box::new(move || {
                            ran.fetch_add(1, Ordering::SeqCst);
                            *lock(&done.0) += 1;
                            done.1.notify_all();
                        }),
                        Some(worker.1),
                    );
                }
                // Hold the seed worker hostage until every follow-up ran:
                // the deque owner cannot drain its own backlog, so the
                // steal path must.
                let mut open = lock(&gate.0);
                while !*open {
                    open = gate.1.wait(open).unwrap();
                }
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut finished = lock(&done.0);
        while *finished < 32 {
            let now = std::time::Instant::now();
            assert!(
                now < deadline,
                "steal path stalled: {} of 32 ran",
                *finished
            );
            finished = done.1.wait_timeout(finished, deadline - now).unwrap().0;
        }
        drop(finished);
        *lock(&gate.0) = true;
        gate.1.notify_all();
        assert_eq!(ran.load(Ordering::SeqCst), 32);
        assert!(pool.steals() >= 32, "stolen {} of 32", pool.steals());
    }

    #[test]
    fn a_panicking_task_does_not_kill_the_worker() {
        let pool = Executor::new(1);
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        pool.spawn(|| panic!("task exploded"));
        let flag = done.clone();
        pool.spawn(move || {
            *lock(&flag.0) = true;
            flag.1.notify_all();
        });
        // The single worker must survive the first task's panic to run the
        // second one.
        let mut ok = lock(&done.0);
        while !*ok {
            let (guard, timeout) = done.1.wait_timeout(ok, Duration::from_secs(10)).unwrap();
            ok = guard;
            assert!(!timeout.timed_out(), "worker died with the panicking task");
        }
    }

    #[test]
    fn dropping_a_pool_drains_queued_tasks_first() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = Executor::new(2);
            for _ in 0..16 {
                let ran = ran.clone();
                pool.spawn(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop immediately: shutdown must not discard queued tasks.
        }
        assert_eq!(ran.load(Ordering::SeqCst), 16);
    }
}
