//! The driver-side context.
//!
//! [`RddContext`] plays the role of Spark's `SparkContext`: it owns the
//! simulated cluster, the shuffle and cache managers, and the cost model,
//! hands out RDD and shuffle identifiers, creates source RDDs, and records a
//! [`JobReport`] (stage timings, simulated duration) for every job it runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shark_cluster::{ClusterConfig, ClusterSim, CostModel, FailurePlan, InputSource};

use crate::cache::CacheManager;
use crate::rdd::{Data, GeneratorRdd, Rdd};
use crate::shuffle::ShuffleManager;

/// Configuration of an [`RddContext`].
#[derive(Debug, Clone)]
pub struct RddConfig {
    /// The simulated cluster (size + engine cost profile).
    pub cluster: ClusterConfig,
    /// Default number of partitions for sources and shuffles.
    pub default_partitions: usize,
    /// Ratio between the data volume being *simulated* and the volume
    /// actually processed in-process. Metrics are multiplied by this factor
    /// before entering the cost model, letting laptop-sized runs reproduce
    /// cluster-scale timings.
    pub sim_scale: f64,
    /// Execute the tasks of a stage on multiple OS threads.
    pub parallel_tasks: bool,
}

impl Default for RddConfig {
    fn default() -> Self {
        RddConfig {
            cluster: ClusterConfig::small(4, 2),
            default_partitions: 8,
            sim_scale: 1.0,
            parallel_tasks: false,
        }
    }
}

impl RddConfig {
    /// A config that simulates the paper's 100-node Shark cluster.
    pub fn paper_shark() -> RddConfig {
        RddConfig {
            cluster: ClusterConfig::paper_shark_cluster(),
            default_partitions: 64,
            sim_scale: 1.0,
            parallel_tasks: false,
        }
    }

    /// Set the simulation scale factor.
    pub fn with_sim_scale(mut self, scale: f64) -> RddConfig {
        self.sim_scale = scale;
        self
    }

    /// Set the default partition count.
    pub fn with_default_partitions(mut self, n: usize) -> RddConfig {
        self.default_partitions = n.max(1);
        self
    }
}

/// Timing record for one stage of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Descriptive stage name (e.g. `"shuffle-map(3)"` or `"result"`).
    pub name: String,
    /// Number of tasks in the stage.
    pub num_tasks: usize,
    /// Simulated stage duration in seconds.
    pub sim_duration: f64,
    /// Number of speculative copies the simulator launched.
    pub speculative_copies: usize,
    /// Number of task executions lost to failures and re-run.
    pub tasks_rerun: usize,
    /// Total rows read by the stage's tasks (unscaled).
    pub rows_in: u64,
    /// Total bytes read by the stage's tasks (unscaled).
    pub bytes_in: u64,
}

/// Timing record for one job (action) run by the context.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobReport {
    /// Human-readable description of the action.
    pub name: String,
    /// Per-stage breakdown, in execution order.
    pub stages: Vec<StageReport>,
    /// Total simulated duration in seconds.
    pub sim_duration: f64,
    /// Wall-clock seconds spent actually executing the scaled-down job.
    pub real_duration: f64,
}

impl JobReport {
    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.num_tasks).sum()
    }
}

pub(crate) struct ContextState {
    pub(crate) config: RddConfig,
    pub(crate) cost: CostModel,
    pub(crate) cluster: Mutex<ClusterSim>,
    pub(crate) shuffle: ShuffleManager,
    pub(crate) cache: CacheManager,
    next_rdd_id: AtomicUsize,
    next_shuffle_id: AtomicUsize,
    pub(crate) reports: Mutex<Vec<JobReport>>,
}

/// The driver: creates RDDs, runs jobs, owns cluster/shuffle/cache state.
///
/// Cloning an `RddContext` is cheap and shares all state.
#[derive(Clone)]
pub struct RddContext {
    pub(crate) state: Arc<ContextState>,
}

impl RddContext {
    /// Create a context with the given configuration.
    pub fn new(config: RddConfig) -> RddContext {
        config
            .cluster
            .validate()
            .expect("invalid cluster configuration");
        let cost = CostModel::new(config.cluster.profile.clone());
        let cluster = ClusterSim::new(config.cluster.clone());
        RddContext {
            state: Arc::new(ContextState {
                config,
                cost,
                cluster: Mutex::new(cluster),
                shuffle: ShuffleManager::new(),
                cache: CacheManager::new(),
                next_rdd_id: AtomicUsize::new(0),
                next_shuffle_id: AtomicUsize::new(0),
                reports: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Create a context over a specific cluster with default settings.
    pub fn with_cluster(cluster: ClusterConfig) -> RddContext {
        RddContext::new(RddConfig {
            cluster,
            ..RddConfig::default()
        })
    }

    /// A small local context suitable for tests.
    pub fn local() -> RddContext {
        RddContext::new(RddConfig::default())
    }

    /// The context configuration.
    pub fn config(&self) -> &RddConfig {
        &self.state.config
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.state.cost
    }

    /// The cache (memstore) manager.
    pub fn cache(&self) -> &CacheManager {
        &self.state.cache
    }

    /// The shuffle manager.
    pub fn shuffle_manager(&self) -> &ShuffleManager {
        &self.state.shuffle
    }

    /// Allocate a fresh RDD id.
    pub fn next_rdd_id(&self) -> usize {
        self.state.next_rdd_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a fresh shuffle id.
    pub fn next_shuffle_id(&self) -> usize {
        self.state.next_shuffle_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Current simulated time of the cluster (seconds since last reset).
    pub fn simulated_time(&self) -> f64 {
        self.state.cluster.lock().now()
    }

    /// Reset the simulated clock (start timing a new experiment/query).
    pub fn reset_simulation(&self) {
        self.state.cluster.lock().reset();
    }

    /// Install a failure plan on the simulated cluster and immediately drop
    /// the cached partitions of nodes whose failure time has already passed.
    pub fn set_failure_plan(&self, plan: FailurePlan) {
        let now = self.state.cluster.lock().now();
        for node in plan.failed_nodes_by(now) {
            self.state.cache.drop_node(node);
        }
        self.state.cluster.lock().set_failure_plan(plan);
    }

    /// Kill a node *now*: drops its cached partitions and marks it failed
    /// for the remainder of the simulation.
    pub fn fail_node(&self, node: usize) -> usize {
        let now = self.state.cluster.lock().now();
        let lost = self.state.cache.drop_node(node);
        self.state
            .cluster
            .lock()
            .set_failure_plan(FailurePlan::single(node, now));
        lost
    }

    /// Number of worker nodes currently alive.
    pub fn alive_nodes(&self) -> usize {
        self.state.cluster.lock().alive_nodes().len()
    }

    /// Charge the simulated cost of broadcasting `bytes` bytes from the
    /// master to every worker (tree broadcast), advancing the clock.
    pub fn charge_broadcast(&self, bytes: u64) -> f64 {
        let nodes = self.state.config.cluster.num_nodes.max(2) as f64;
        let bw = self.state.config.cluster.profile.network_bw;
        let scaled = bytes as f64 * self.state.config.sim_scale;
        let cost = (scaled / bw) * nodes.log2().max(1.0);
        self.state.cluster.lock().advance(cost);
        cost
    }

    /// Advance the simulated clock by an externally computed cost (e.g. a
    /// DFS bulk load modelled by [`shark_cluster::DfsModel`]).
    pub fn advance_simulation(&self, seconds: f64) {
        self.state.cluster.lock().advance(seconds);
    }

    /// Simulate an externally constructed stage (e.g. a table-load stage
    /// built by the SQL layer) on the cluster, advancing the clock.
    pub fn simulate_external_stage(
        &self,
        specs: &[shark_cluster::TaskSpec],
    ) -> shark_cluster::StageSimResult {
        self.state.cluster.lock().simulate_stage(specs)
    }

    /// Record a completed job report.
    pub(crate) fn record_job(&self, report: JobReport) {
        self.state.reports.lock().push(report);
    }

    /// The report of the most recently completed job, if any.
    pub fn last_job(&self) -> Option<JobReport> {
        self.state.reports.lock().last().cloned()
    }

    /// All job reports recorded so far.
    pub fn job_history(&self) -> Vec<JobReport> {
        self.state.reports.lock().clone()
    }

    /// Clear recorded job reports.
    pub fn clear_job_history(&self) {
        self.state.reports.lock().clear();
    }

    // ----- source RDD creation -------------------------------------------------

    /// Distribute an in-memory collection across `partitions` partitions.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> Rdd<T> {
        let partitions = partitions.max(1);
        let chunks: Vec<Vec<T>> = split_into(data, partitions);
        let chunks = Arc::new(chunks);
        self.generate(partitions, InputSource::Local, move |p| chunks[p].clone())
    }

    /// Create a source RDD whose partition `p` is produced by `f(p)`.
    ///
    /// `source` declares where the data conceptually lives (DFS file,
    /// cached columnar partition, …) so the cost model charges the right
    /// I/O. Data generators use this to avoid materializing whole datasets
    /// on the driver.
    pub fn generate<T: Data, F>(&self, partitions: usize, source: InputSource, f: F) -> Rdd<T>
    where
        F: Fn(usize) -> Vec<T> + Send + Sync + 'static,
    {
        let inner = GeneratorRdd {
            id: self.next_rdd_id(),
            partitions: partitions.max(1),
            source,
            f: Arc::new(f),
        };
        Rdd::new(self.clone(), Arc::new(inner))
    }
}

/// Split a vector into `n` nearly equal chunks (used by `parallelize`).
fn split_into<T>(mut data: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let total = data.len();
    let mut out = Vec::with_capacity(n);
    let base = total / n;
    let extra = total % n;
    // Draining from the front keeps order stable.
    let mut rest = data.split_off(0);
    for i in 0..n {
        let take = base + usize::from(i < extra);
        let tail = rest.split_off(take.min(rest.len()));
        out.push(rest);
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_into_balances_sizes() {
        let parts = split_into((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6]);
        assert_eq!(parts[2], vec![7, 8, 9]);
        let empty = split_into(Vec::<i32>::new(), 4);
        assert_eq!(empty.len(), 4);
        assert!(empty.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn ids_are_unique() {
        let ctx = RddContext::local();
        let a = ctx.next_rdd_id();
        let b = ctx.next_rdd_id();
        assert_ne!(a, b);
        assert_ne!(ctx.next_shuffle_id(), ctx.next_shuffle_id());
    }

    #[test]
    fn fail_node_drops_cache_and_shrinks_cluster() {
        let ctx = RddContext::local();
        ctx.cache().put(1, 0, Arc::new(vec![1i64]), 2, 8);
        ctx.cache().put(1, 1, Arc::new(vec![2i64]), 3, 8);
        let before = ctx.alive_nodes();
        let lost = ctx.fail_node(2);
        assert_eq!(lost, 1);
        assert_eq!(ctx.alive_nodes(), before - 1);
        assert!(ctx.cache().contains(1, 1));
        assert!(!ctx.cache().contains(1, 0));
    }

    #[test]
    fn broadcast_advances_clock() {
        let ctx = RddContext::local();
        let before = ctx.simulated_time();
        let cost = ctx.charge_broadcast(1 << 30);
        assert!(cost > 0.0);
        assert!(ctx.simulated_time() > before);
        ctx.reset_simulation();
        assert_eq!(ctx.simulated_time(), 0.0);
    }

    #[test]
    fn job_history_roundtrip() {
        let ctx = RddContext::local();
        assert!(ctx.last_job().is_none());
        ctx.record_job(JobReport {
            name: "test".into(),
            ..JobReport::default()
        });
        assert_eq!(ctx.last_job().unwrap().name, "test");
        assert_eq!(ctx.job_history().len(), 1);
        ctx.clear_job_history();
        assert!(ctx.job_history().is_empty());
    }
}
