//! # shark-rdd
//!
//! Resilient Distributed Datasets — the distributed-memory abstraction Shark
//! builds on (§2.2 of the paper) — implemented over the simulated cluster of
//! [`shark_cluster`].
//!
//! An [`Rdd<T>`] is an immutable, partitioned collection created either from
//! a source (generator or in-memory data) or by applying deterministic
//! operators (`map`, `filter`, `reduce_by_key`, `join`, …) to other RDDs.
//! Lineage is tracked per RDD; lost cached partitions are recomputed by
//! re-running the deterministic operators that produced them, which is the
//! fault-tolerance story evaluated in Figure 9.
//!
//! Key pieces:
//!
//! * [`RddContext`] — the driver: owns the shuffle manager, cache manager,
//!   cluster simulator, and cost model; creates source RDDs and runs jobs.
//! * [`Rdd`] — lazily evaluated transformations plus actions (`collect`,
//!   `count`, `reduce`, …) that trigger job execution.
//! * Pair-RDD operations (`reduce_by_key`, `group_by_key`, `join`,
//!   `partition_by`, `pre_shuffle`) in [`pair`].
//! * [`pair::PreShuffledRdd`] + [`pair::ShuffleReadRdd`] — the hooks Partial
//!   DAG Execution uses: materialize the map side of a shuffle, inspect the
//!   per-bucket statistics, then decide the reduce-side plan (join strategy,
//!   reducer count, bucket coalescing).
//! * [`cache::CacheManager`] — per-partition caching with node placement so
//!   simulated node failures invalidate the right partitions.

pub mod cache;
pub mod context;
pub mod executor;
pub mod metrics;
pub mod pair;
pub mod rdd;
pub mod scheduler;
pub mod shuffle;

pub use cache::{CacheManager, CachedPartitionInfo, EvictionObserver, EvictionStats};
pub use context::{JobReport, RddConfig, RddContext, StageReport};
pub use executor::Executor;
pub use metrics::TaskMetrics;
pub use pair::{Aggregator, PreShuffledRdd};
pub use rdd::{Data, Lineage, Rdd, RddImpl, ShuffleDepHandle};
pub use scheduler::{PipelinedJob, StreamingJob};
pub use shuffle::{MapOutputStats, ShuffleManager, ShuffleSummary};
