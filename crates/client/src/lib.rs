//! # shark-client
//!
//! A small blocking client for the shark-server TCP wire protocol
//! (`docs/wire-protocol.md`). It speaks the same frame codec the server
//! does ([`shark_server::net::frame`]), so there is exactly one encoder /
//! decoder in the workspace and a protocol change cannot silently fork.
//!
//! ```no_run
//! use shark_client::SharkClient;
//!
//! let mut client = SharkClient::connect("127.0.0.1:4848", "", "").unwrap();
//! let result = client.query("SELECT 1").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```
//!
//! Results stream: [`SharkClient::query_stream`] returns a [`RowStream`]
//! that yields batches as the server sends them, and reads exactly as
//! fast as the caller consumes — a paused consumer eventually blocks the
//! server's writes, which is the protocol's backpressure. Call
//! [`RowStream::cancel`] to stop an expensive query without dropping the
//! connection.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use shark_common::{Result, Row, Schema, SharkError};
use shark_server::net::frame::{self, Frame};

/// A fully drained query result.
#[derive(Debug, Clone)]
pub struct ClientResult {
    /// The result schema.
    pub schema: Schema,
    /// All delivered rows.
    pub rows: Vec<Row>,
    /// Result partitions the server streamed (0 for non-SELECTs).
    pub partitions: u64,
    /// Whether the server answered from its plan cache.
    pub plan_cache_hit: bool,
    /// Simulated cluster seconds the query cost.
    pub sim_seconds: f64,
    /// Whether the stream ended on a cancel instead of exhaustion.
    pub cancelled: bool,
}

/// A prepared statement registered on the server.
#[derive(Debug, Clone, Copy)]
pub struct PreparedStatement {
    /// Connection-scoped id to execute.
    pub statement_id: u64,
    /// The server's plan-cache fingerprint for the statement.
    pub fingerprint: u64,
}

/// A blocking connection to a shark server.
pub struct SharkClient {
    stream: TcpStream,
    session_id: u64,
}

impl SharkClient {
    /// Connect, handshake, and authenticate. `token` must match the
    /// server's configured auth token (empty when auth is disabled);
    /// `tenant` selects a server-side rate class ("" = default).
    pub fn connect(addr: impl ToSocketAddrs, token: &str, tenant: &str) -> Result<SharkClient> {
        let stream =
            TcpStream::connect(addr).map_err(|e| SharkError::Execution(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut client = SharkClient {
            stream,
            session_id: 0,
        };
        client.send(&Frame::Hello {
            token: token.to_string(),
            tenant: tenant.to_string(),
        })?;
        match client.recv()? {
            Frame::HelloOk { session_id, .. } => {
                client.session_id = session_id;
                Ok(client)
            }
            Frame::Error { kind, message } => {
                Err(SharkError::Execution(format!("{kind}: {message}")))
            }
            other => Err(SharkError::Execution(format!(
                "unexpected handshake reply: {other:?}"
            ))),
        }
    }

    /// The server-side session id backing this connection.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Run one statement and drain the whole result.
    pub fn query(&mut self, sql: &str) -> Result<ClientResult> {
        self.send(&Frame::Query {
            sql: sql.to_string(),
        })?;
        self.drain_result()
    }

    /// Run a SELECT and consume its batches incrementally.
    pub fn query_stream(&mut self, sql: &str) -> Result<RowStream<'_>> {
        self.send(&Frame::Query {
            sql: sql.to_string(),
        })?;
        self.start_stream()
    }

    /// Register a statement for repeated execution.
    pub fn prepare(&mut self, sql: &str) -> Result<PreparedStatement> {
        self.send(&Frame::Prepare {
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Frame::Prepared {
                statement_id,
                fingerprint,
            } => Ok(PreparedStatement {
                statement_id,
                fingerprint,
            }),
            Frame::Error { kind, message } => {
                Err(SharkError::Execution(format!("{kind}: {message}")))
            }
            other => Err(SharkError::Execution(format!(
                "unexpected Prepare reply: {other:?}"
            ))),
        }
    }

    /// Execute a prepared statement and drain the whole result.
    pub fn execute(&mut self, statement: PreparedStatement) -> Result<ClientResult> {
        self.send(&Frame::Execute {
            statement_id: statement.statement_id,
        })?;
        self.drain_result()
    }

    /// Orderly goodbye; the connection is unusable afterwards.
    pub fn close(mut self) -> Result<()> {
        self.send(&Frame::Close)
    }

    fn start_stream(&mut self) -> Result<RowStream<'_>> {
        let schema = match self.recv()? {
            Frame::ResultSchema { schema } => schema,
            Frame::Error { kind, message } => {
                return Err(SharkError::Execution(format!("{kind}: {message}")));
            }
            other => {
                return Err(SharkError::Execution(format!(
                    "expected ResultSchema, got {other:?}"
                )));
            }
        };
        Ok(RowStream {
            client: self,
            schema: Arc::new(schema),
            done: None,
            cancel_requested: false,
        })
    }

    fn drain_result(&mut self) -> Result<ClientResult> {
        let mut stream = self.start_stream()?;
        let mut rows = Vec::new();
        while let Some(batch) = stream.next_batch()? {
            rows.extend(batch);
        }
        let schema = (*stream.schema()).clone();
        let done = stream.finish()?;
        Ok(ClientResult {
            schema,
            rows,
            partitions: done.partitions,
            plan_cache_hit: done.plan_cache_hit,
            sim_seconds: done.sim_seconds,
            cancelled: done.cancelled,
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        frame::write_frame(&mut self.stream, frame)
            .map(|_| ())
            .map_err(|e| SharkError::Execution(format!("send: {e}")))
    }

    fn recv(&mut self) -> Result<Frame> {
        frame::read_frame(&mut self.stream)
            .map(|(frame, _)| frame)
            .map_err(|e| SharkError::Execution(format!("recv: {e}")))
    }
}

/// The terminal summary of one query.
#[derive(Debug, Clone, Copy)]
pub struct QuerySummary {
    /// Total rows the server delivered.
    pub rows: u64,
    /// Result partitions streamed.
    pub partitions: u64,
    /// Whether the plan came from the server's plan cache.
    pub plan_cache_hit: bool,
    /// Simulated cluster seconds.
    pub sim_seconds: f64,
    /// Whether a cancel ended the stream early.
    pub cancelled: bool,
}

/// An in-flight streamed query. Must be driven to completion (or
/// cancelled) before the connection can issue another request.
pub struct RowStream<'c> {
    client: &'c mut SharkClient,
    schema: Arc<Schema>,
    done: Option<QuerySummary>,
    cancel_requested: bool,
}

impl RowStream<'_> {
    /// The result schema.
    pub fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    /// The next batch of rows, or `None` once the server sent QueryDone.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done.is_some() {
            return Ok(None);
        }
        match self.client.recv()? {
            Frame::ResultBatch { rows } => Ok(Some(rows)),
            Frame::QueryDone {
                rows,
                partitions,
                plan_cache_hit,
                sim_seconds,
                cancelled,
            } => {
                self.done = Some(QuerySummary {
                    rows,
                    partitions,
                    plan_cache_hit,
                    sim_seconds,
                    cancelled,
                });
                Ok(None)
            }
            Frame::Error { kind, message } => {
                Err(SharkError::Execution(format!("{kind}: {message}")))
            }
            other => Err(SharkError::Execution(format!(
                "unexpected mid-stream frame: {other:?}"
            ))),
        }
    }

    /// Ask the server to stop the query at its next batch boundary. The
    /// stream must still be drained to its QueryDone.
    pub fn cancel(&mut self) -> Result<()> {
        if !self.cancel_requested && self.done.is_none() {
            self.cancel_requested = true;
            self.client.send(&Frame::Cancel)?;
        }
        Ok(())
    }

    /// Drain any remaining batches and return the terminal summary.
    pub fn finish(mut self) -> Result<QuerySummary> {
        while self.next_batch()?.is_some() {}
        Ok(self
            .done
            .expect("next_batch returned None without a summary"))
    }
}
