//! Minimal dense-vector helpers shared by the ML algorithms.

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot product dimensionality mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Element-wise sum `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// In-place `a += b`.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += *y;
    }
}

/// Scaled copy `a * s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Squared Euclidean distance between two vectors.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the closest center to `point` (ties broken by lowest index).
pub fn closest_center(point: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = 0usize;
    let mut best_dist = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = squared_distance(point, c);
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_add_scale() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(scale(&[1.0, -2.0], 2.0), vec![2.0, -4.0]);
        let mut a = vec![1.0, 1.0];
        add_assign(&mut a, &[2.0, 3.0]);
        assert_eq!(a, vec![3.0, 4.0]);
    }

    #[test]
    fn distances_and_closest() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let centers = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert_eq!(closest_center(&[1.0, 1.0], &centers), 0);
        assert_eq!(closest_center(&[9.0, 9.5], &centers), 1);
    }
}
