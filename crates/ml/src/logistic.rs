//! Distributed logistic regression by batch gradient descent (Listing 1).
//!
//! Each iteration maps every cached data point to its gradient contribution
//! and reduces the contributions to a single gradient on the driver — the
//! exact structure of the paper's `logRegress` example. The per-iteration
//! simulated time is recorded so Figure 11 can be regenerated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shark_common::Result;
use shark_rdd::Rdd;

use crate::linalg::{add, dot, scale};
use crate::IterationReport;

/// A trained logistic-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    /// The learned hyperplane.
    pub weights: Vec<f64>,
}

impl LogisticModel {
    /// Probability that `features` belongs to the positive class.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        1.0 / (1.0 + (-dot(&self.weights, features)).exp())
    }

    /// Predicted label (+1 / -1).
    pub fn predict(&self, features: &[f64]) -> f64 {
        if self.predict_probability(features) >= 0.5 {
            1.0
        } else {
            -1.0
        }
    }
}

/// Batch-gradient-descent logistic regression over an RDD of
/// `(features, label)` pairs with labels in {+1, -1}.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Number of gradient-descent iterations (the paper runs 10).
    pub iterations: usize,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Seed used for the random initial weights.
    pub seed: u64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            iterations: 10,
            learning_rate: 0.5,
            seed: 42,
        }
    }
}

impl LogisticRegression {
    /// Train on the given points, returning the model and per-iteration
    /// simulated timings.
    pub fn train(&self, points: &Rdd<(Vec<f64>, f64)>) -> Result<(LogisticModel, IterationReport)> {
        let dims = points.first()?.map(|(f, _)| f.len()).unwrap_or(0);
        let count = points.count()? as f64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // "var w = Vector(D, _ => 2 * rand.nextDouble - 1)" (Listing 1).
        let mut weights: Vec<f64> = (0..dims).map(|_| 2.0 * rng.gen::<f64>() - 1.0).collect();
        let mut report = IterationReport::default();
        let ctx = points.context().clone();

        for _ in 0..self.iterations {
            let before = ctx.simulated_time();
            let w = weights.clone();
            let gradient = points
                .map(move |(x, y)| {
                    let denom = 1.0 + (-y * dot(&w, &x)).exp();
                    scale(&x, (1.0 / denom - 1.0) * y)
                })
                .reduce(|a, b| add(&a, &b))?
                .unwrap_or_else(|| vec![0.0; dims]);
            let step = self.learning_rate / count.max(1.0);
            for (wi, gi) in weights.iter_mut().zip(&gradient) {
                *wi -= step * gi;
            }
            report.iteration_seconds.push(ctx.simulated_time() - before);
        }
        Ok((LogisticModel { weights }, report))
    }

    /// Fraction of points the model classifies correctly (collected on the
    /// driver — intended for tests and examples).
    pub fn accuracy(model: &LogisticModel, points: &Rdd<(Vec<f64>, f64)>) -> Result<f64> {
        let m = model.clone();
        let correct = points
            .map(move |(x, y)| {
                if m.predict(&x) == y.signum() {
                    1u64
                } else {
                    0u64
                }
            })
            .reduce(|a, b| a + b)?
            .unwrap_or(0);
        let total = points.count()?;
        Ok(if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_rdd::RddContext;

    fn separable_points(ctx: &RddContext, n: usize) -> Rdd<(Vec<f64>, f64)> {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<(Vec<f64>, f64)> = (0..n)
            .map(|_| {
                let label: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let features: Vec<f64> = (0..4)
                    .map(|_| label * 1.0 + (rng.gen::<f64>() - 0.5))
                    .collect();
                (features, label)
            })
            .collect();
        ctx.parallelize(data, 4)
    }

    #[test]
    fn learns_a_separating_hyperplane() {
        let ctx = RddContext::local();
        let points = separable_points(&ctx, 2000).cache();
        let lr = LogisticRegression {
            iterations: 15,
            learning_rate: 1.0,
            seed: 3,
        };
        let (model, report) = lr.train(&points).unwrap();
        assert_eq!(report.iterations(), 15);
        let acc = LogisticRegression::accuracy(&model, &points).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn iteration_times_are_recorded() {
        let ctx = RddContext::local();
        let points = separable_points(&ctx, 200).cache();
        let (_, report) = LogisticRegression::default().train(&points).unwrap();
        assert_eq!(report.iterations(), 10);
        assert!(report.mean_iteration_seconds() >= 0.0);
    }

    #[test]
    fn empty_input_yields_empty_model() {
        let ctx = RddContext::local();
        let points: Rdd<(Vec<f64>, f64)> = ctx.parallelize(vec![], 2);
        let (model, _) = LogisticRegression::default().train(&points).unwrap();
        assert!(model.weights.is_empty());
    }

    #[test]
    fn model_predictions_are_symmetric() {
        let model = LogisticModel {
            weights: vec![1.0, -1.0],
        };
        assert_eq!(model.predict(&[2.0, 0.0]), 1.0);
        assert_eq!(model.predict(&[0.0, 2.0]), -1.0);
        let p = model.predict_probability(&[0.0, 0.0]);
        assert!((p - 0.5).abs() < 1e-12);
    }
}
