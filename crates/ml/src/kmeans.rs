//! Distributed k-means clustering (Lloyd's algorithm), the second iterative
//! workload of §6.5 (Figure 12).
//!
//! Each iteration assigns every point to its closest center with a `map`,
//! sums per-center coordinates with `reduce_by_key`, and recomputes the
//! centers on the driver. As in the paper, the per-point work is heavier
//! than logistic regression (distance to every center), which is why the
//! relative speedup over the Hadoop baseline is smaller.

use shark_common::{Result, SharkError};
use shark_rdd::Rdd;

use crate::linalg::{add, closest_center, scale, squared_distance};
use crate::IterationReport;

/// A trained k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    /// The cluster centers.
    pub centers: Vec<Vec<f64>>,
}

impl KMeansModel {
    /// Index of the cluster a point belongs to.
    pub fn predict(&self, point: &[f64]) -> usize {
        closest_center(point, &self.centers)
    }

    /// Sum of squared distances from each given point to its closest center.
    pub fn cost(&self, points: &[Vec<f64>]) -> f64 {
        points
            .iter()
            .map(|p| squared_distance(p, &self.centers[self.predict(p)]))
            .sum()
    }
}

/// Lloyd's k-means over an RDD of feature vectors.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Number of Lloyd iterations (the paper runs 10).
    pub iterations: usize,
    /// Number of reduce partitions for the per-center aggregation.
    pub reduce_partitions: usize,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans {
            k: 10,
            iterations: 10,
            reduce_partitions: 8,
        }
    }
}

impl KMeans {
    /// Train on the given points, returning the model and per-iteration
    /// simulated timings.
    pub fn train(&self, points: &Rdd<Vec<f64>>) -> Result<(KMeansModel, IterationReport)> {
        if self.k == 0 {
            return Err(SharkError::Config("k must be positive".into()));
        }
        // Initialize centers from the first k points (deterministic).
        let mut centers: Vec<Vec<f64>> = points.take(self.k)?;
        if centers.is_empty() {
            return Err(SharkError::Execution(
                "cannot run k-means on an empty dataset".into(),
            ));
        }
        while centers.len() < self.k {
            // Fewer distinct points than k: duplicate the last center.
            let last = centers.last().cloned().unwrap();
            centers.push(last);
        }
        let mut report = IterationReport::default();
        let ctx = points.context().clone();

        for _ in 0..self.iterations {
            let before = ctx.simulated_time();
            let current = centers.clone();
            // (center index) -> (coordinate sum, count)
            let assigned = points.map(move |p| {
                let c = closest_center(&p, &current);
                (c as i64, (p, 1u64))
            });
            let totals = assigned
                .reduce_by_key(self.reduce_partitions, |(sa, ca), (sb, cb)| {
                    (add(&sa, &sb), ca + cb)
                })
                .collect()?;
            for (c, (sum, count)) in totals {
                if count > 0 {
                    centers[c as usize] = scale(&sum, 1.0 / count as f64);
                }
            }
            report.iteration_seconds.push(ctx.simulated_time() - before);
        }
        Ok((KMeansModel { centers }, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_rdd::RddContext;

    fn blob_data(n: usize) -> Vec<Vec<f64>> {
        // Three well separated blobs on a line.
        (0..n)
            .map(|i| {
                let c = (i % 3) as f64 * 100.0;
                let jitter = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                vec![c + jitter, c - jitter]
            })
            .collect()
    }

    #[test]
    fn finds_well_separated_clusters() {
        let ctx = RddContext::local();
        let points = ctx.parallelize(blob_data(900), 6).cache();
        let km = KMeans {
            k: 3,
            iterations: 10,
            reduce_partitions: 4,
        };
        let (model, report) = km.train(&points).unwrap();
        assert_eq!(report.iterations(), 10);
        assert_eq!(model.centers.len(), 3);
        // Each blob center (0, 100, 200 on the first axis) should be close
        // to some learned center.
        for target in [0.0, 100.0, 200.0] {
            let close = model.centers.iter().any(|c| (c[0] - target).abs() < 5.0);
            assert!(close, "no center near {target}: {:?}", model.centers);
        }
        // Points are assigned consistently.
        let sample = vec![100.2, 99.9];
        let cluster = model.predict(&sample);
        assert!((model.centers[cluster][0] - 100.0).abs() < 5.0);
    }

    #[test]
    fn cost_decreases_with_more_iterations() {
        let ctx = RddContext::local();
        let data = blob_data(300);
        let points = ctx.parallelize(data.clone(), 4).cache();
        let one = KMeans {
            k: 3,
            iterations: 1,
            reduce_partitions: 2,
        };
        let many = KMeans {
            k: 3,
            iterations: 8,
            reduce_partitions: 2,
        };
        let (m1, _) = one.train(&points).unwrap();
        let (m8, _) = many.train(&points).unwrap();
        assert!(m8.cost(&data) <= m1.cost(&data) + 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let ctx = RddContext::local();
        let points: Rdd<Vec<f64>> = ctx.parallelize(vec![], 2);
        assert!(KMeans::default().train(&points).is_err());
        let some = ctx.parallelize(vec![vec![1.0]], 1);
        let km = KMeans {
            k: 0,
            ..KMeans::default()
        };
        assert!(km.train(&some).is_err());
    }
}
