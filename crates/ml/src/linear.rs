//! Distributed linear regression by batch gradient descent (§4.1 lists it
//! among the algorithms Shark ships with).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shark_common::Result;
use shark_rdd::Rdd;

use crate::linalg::{add, dot, scale};
use crate::IterationReport;

/// A trained linear-regression model (no intercept; append a constant 1.0
/// feature if an intercept is needed).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Learned coefficients.
    pub weights: Vec<f64>,
}

impl LinearModel {
    /// Predict the target for a feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features)
    }
}

/// Batch-gradient-descent least-squares regression over `(features, target)`
/// pairs.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Number of gradient-descent iterations.
    pub iterations: usize,
    /// Step size.
    pub learning_rate: f64,
    /// Seed for the random initial weights.
    pub seed: u64,
}

impl Default for LinearRegression {
    fn default() -> Self {
        LinearRegression {
            iterations: 20,
            learning_rate: 0.1,
            seed: 17,
        }
    }
}

impl LinearRegression {
    /// Train on the given points, returning the model and per-iteration
    /// simulated timings.
    pub fn train(&self, points: &Rdd<(Vec<f64>, f64)>) -> Result<(LinearModel, IterationReport)> {
        let dims = points.first()?.map(|(f, _)| f.len()).unwrap_or(0);
        let count = points.count()? as f64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut weights: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>() * 0.01).collect();
        let mut report = IterationReport::default();
        let ctx = points.context().clone();

        for _ in 0..self.iterations {
            let before = ctx.simulated_time();
            let w = weights.clone();
            let gradient = points
                .map(move |(x, y)| {
                    let err = dot(&w, &x) - y;
                    scale(&x, err)
                })
                .reduce(|a, b| add(&a, &b))?
                .unwrap_or_else(|| vec![0.0; dims]);
            let step = self.learning_rate / count.max(1.0);
            for (wi, gi) in weights.iter_mut().zip(&gradient) {
                *wi -= step * gi;
            }
            report.iteration_seconds.push(ctx.simulated_time() - before);
        }
        Ok((LinearModel { weights }, report))
    }

    /// Mean squared error of a model over the points.
    pub fn mse(model: &LinearModel, points: &Rdd<(Vec<f64>, f64)>) -> Result<f64> {
        let m = model.clone();
        let sum = points
            .map(move |(x, y)| {
                let e = m.predict(&x) - y;
                e * e
            })
            .reduce(|a, b| a + b)?
            .unwrap_or(0.0);
        let n = points.count()? as f64;
        Ok(if n == 0.0 { 0.0 } else { sum / n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_rdd::RddContext;

    #[test]
    fn recovers_known_coefficients() {
        let ctx = RddContext::local();
        let true_w = [2.0, -3.0, 0.5];
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<(Vec<f64>, f64)> = (0..3000)
            .map(|_| {
                let x: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
                let y = dot(&true_w, &x) + (rng.gen::<f64>() - 0.5) * 0.01;
                (x, y)
            })
            .collect();
        let points = ctx.parallelize(data, 4).cache();
        let lr = LinearRegression {
            iterations: 200,
            learning_rate: 1.0,
            seed: 1,
        };
        let (model, report) = lr.train(&points).unwrap();
        assert_eq!(report.iterations(), 200);
        for (learned, expected) in model.weights.iter().zip(&true_w) {
            assert!(
                (learned - expected).abs() < 0.15,
                "learned {learned} vs {expected}"
            );
        }
        assert!(LinearRegression::mse(&model, &points).unwrap() < 0.05);
    }

    #[test]
    fn empty_input() {
        let ctx = RddContext::local();
        let points: Rdd<(Vec<f64>, f64)> = ctx.parallelize(vec![], 1);
        let (model, _) = LinearRegression::default().train(&points).unwrap();
        assert!(model.weights.is_empty());
    }
}
