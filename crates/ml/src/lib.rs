//! # shark-ml
//!
//! The machine-learning side of Shark (§4, §6.5): iterative algorithms
//! expressed as RDD `map`/`reduce` pipelines so that they share the engine,
//! the cached data and the lineage-based fault tolerance with SQL queries.
//!
//! Implemented algorithms, matching the paper:
//!
//! * [`logistic::LogisticRegression`] — gradient-descent logistic
//!   regression (Listing 1 / Figure 11),
//! * [`linear::LinearRegression`] — least-squares linear regression via
//!   gradient descent (mentioned in §4.1),
//! * [`kmeans::KMeans`] — Lloyd's k-means (Figure 12).
//!
//! All algorithms operate on plain tuples — `(features, label)` for the
//! supervised models, bare feature vectors for clustering — so any RDD
//! produced by `sql2rdd` plus a feature-extraction `map` can be fed in
//! directly.

pub mod kmeans;
pub mod linalg;
pub mod linear;
pub mod logistic;

pub use kmeans::KMeans;
pub use linear::LinearRegression;
pub use logistic::LogisticRegression;

/// Per-iteration timing of an iterative training run, used by the Figure 11
/// and Figure 12 experiments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IterationReport {
    /// Simulated seconds spent in each iteration.
    pub iteration_seconds: Vec<f64>,
}

impl IterationReport {
    /// Average simulated seconds per iteration.
    pub fn mean_iteration_seconds(&self) -> f64 {
        if self.iteration_seconds.is_empty() {
            0.0
        } else {
            self.iteration_seconds.iter().sum::<f64>() / self.iteration_seconds.len() as f64
        }
    }

    /// Number of iterations recorded.
    pub fn iterations(&self) -> usize {
        self.iteration_seconds.len()
    }
}
