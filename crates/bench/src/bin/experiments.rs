//! Regenerates every table and figure of the Shark paper's evaluation (§6)
//! on the simulated cluster and prints paper-vs-measured comparisons.
//!
//! Usage:
//!   cargo run --release -p shark-bench --bin experiments            # all figures
//!   cargo run --release -p shark-bench --bin experiments -- figure8 # one figure
//!
//! Figures: figure1, figure5, figure6, loading, figure7, figure8, figure9,
//! figure10, figure11, figure12, figure13, memory, pruning, skew.

use shark_cluster::{ClusterConfig, DfsModel, EngineProfile};
use shark_columnar::ColumnarPartition;
use shark_core::datasets::{register_ml_points, register_pavlo, register_tpch, register_warehouse};
use shark_core::{ExecConfig, SharkConfig, SharkContext};
use shark_datagen::ml::MlConfig;
use shark_datagen::pavlo::PavloConfig;
use shark_datagen::tpch::TpchConfig;
use shark_datagen::warehouse::WarehouseConfig;
use shark_ml::{KMeans, LogisticRegression};

/// Scale factor: how many paper-scale rows each in-process row represents.
const SCALE: f64 = 50_000.0;

fn shark_ctx(exec: ExecConfig, cached: bool) -> SharkContext {
    let cfg = SharkConfig::paper_shark()
        .with_sim_scale(SCALE)
        .with_exec(exec);
    let shark = SharkContext::new(cfg);
    let _ = cached;
    shark
}

fn hive_ctx() -> SharkContext {
    SharkContext::new(SharkConfig::paper_hive().with_sim_scale(SCALE))
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn row(label: &str, seconds: f64, extra: &str) {
    println!("  {label:<46} {seconds:>10.2} s   {extra}");
}

// ---------------------------------------------------------------------------
// Figure 1 / 5 / 6: Pavlo benchmark + real queries headline
// ---------------------------------------------------------------------------

fn pavlo_session(exec: ExecConfig, cached: bool, hive: bool) -> SharkContext {
    let shark = if hive {
        hive_ctx()
    } else {
        shark_ctx(exec, cached)
    };
    register_pavlo(&shark, &PavloConfig::default(), 32, cached).unwrap();
    if cached {
        shark.load_table("rankings").unwrap();
        shark.load_table("uservisits").unwrap();
    }
    shark
}

fn run_query(shark: &SharkContext, sql: &str) -> (f64, usize, Vec<String>) {
    shark.reset_simulation();
    let r = shark.sql(sql).expect("query failed");
    (r.sim_seconds, r.rows.len(), r.notes)
}

const PAVLO_SELECTION: &str = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 300";
const PAVLO_AGG_FINE: &str = "SELECT sourceIP, SUM(adRevenue) FROM uservisits GROUP BY sourceIP";
const PAVLO_AGG_COARSE: &str =
    "SELECT SUBSTR(sourceIP, 1, 7), SUM(adRevenue) FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 7)";
const PAVLO_JOIN: &str = "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) AS totalRevenue \
     FROM rankings R, uservisits UV \
     WHERE R.pageURL = UV.destURL AND UV.visitDate BETWEEN 10971 AND 10978 \
     GROUP BY UV.sourceIP";

fn figure5() {
    header("Figure 5 — Pavlo selection & aggregation (paper: Shark 1.1s/147s/32s, Hive ~hundreds of seconds)");
    let shark = pavlo_session(ExecConfig::shark(), true, false);
    let shark_disk = pavlo_session(ExecConfig::shark_disk(), false, false);
    let hive = pavlo_session(ExecConfig::hive(), false, true);
    for (name, sql) in [
        ("selection", PAVLO_SELECTION),
        ("aggregation, many groups", PAVLO_AGG_FINE),
        ("aggregation, ~1K groups", PAVLO_AGG_COARSE),
    ] {
        println!("  -- {name}");
        row("Shark (memstore)", run_query(&shark, sql).0, "");
        row("Shark (disk)", run_query(&shark_disk, sql).0, "");
        row("Hive", run_query(&hive, sql).0, "");
    }
}

fn figure6() {
    header(
        "Figure 6 — Pavlo join query (paper: copartitioned < Shark ~ Shark(disk) << Hive ~1500s)",
    );
    let shark = pavlo_session(ExecConfig::shark(), true, false);
    let (secs, rows, notes) = run_query(&shark, PAVLO_JOIN);
    row("Shark (memstore)", secs, &format!("{rows} groups"));
    for n in &notes {
        println!("      note: {n}");
    }
    let shark_disk = pavlo_session(ExecConfig::shark_disk(), false, false);
    row("Shark (disk)", run_query(&shark_disk, PAVLO_JOIN).0, "");
    let hive = pavlo_session(ExecConfig::hive(), false, true);
    row("Hive", run_query(&hive, PAVLO_JOIN).0, "");

    // Co-partitioned variant: CTAS both tables DISTRIBUTE BY the join key.
    let cop = pavlo_session(ExecConfig::shark(), true, false);
    cop.sql(
        "CREATE TABLE r_mem TBLPROPERTIES(\"shark.cache\"=\"true\") AS \
         SELECT pageURL, pageRank FROM rankings DISTRIBUTE BY pageURL",
    )
    .unwrap();
    cop.sql(
        "CREATE TABLE uv_mem TBLPROPERTIES(\"shark.cache\"=\"true\", \"copartition\"=\"r_mem\") AS \
         SELECT destURL, sourceIP, adRevenue, visitDate FROM uservisits DISTRIBUTE BY destURL",
    )
    .unwrap();
    let (secs, _, notes) = run_query(
        &cop,
        "SELECT sourceIP, SUM(adRevenue) FROM r_mem R, uv_mem UV \
         WHERE R.pageURL = UV.destURL AND UV.visitDate BETWEEN 10971 AND 10978 \
         GROUP BY UV.sourceIP",
    );
    row("Shark (co-partitioned)", secs, "");
    for n in notes.iter().filter(|n| n.contains("co-partitioned")) {
        println!("      note: {n}");
    }
}

fn loading() {
    header("§6.2.4 — data loading throughput (paper: memstore ingest ~5x HDFS ingest)");
    let cluster = ClusterConfig::paper_shark_cluster();
    let dfs = DfsModel::default();
    let bytes: u64 = 2 << 40; // the 2 TB uservisits table
    let rows: u64 = 15_500_000_000;
    let hdfs_secs = dfs.write_seconds(&cluster, bytes);
    let mem_secs = shark_cluster::hdfs::memstore_load_seconds(&cluster, bytes, rows);
    row("load 2 TB into HDFS (3x replication)", hdfs_secs, "");
    row("load 2 TB into Shark memstore", mem_secs, "");
    println!("  ratio: {:.1}x (paper: ~5x)", hdfs_secs / mem_secs);
}

fn figure1() {
    header("Figure 1 — headline: two warehouse queries + 1 logistic regression iteration (paper: 0.7s/0.96s/1.0s Shark vs 30-110s Hive/Hadoop)");
    figure10_inner(true);
    figure11_inner(true);
}

// ---------------------------------------------------------------------------
// Figure 7: TPC-H aggregation micro-benchmark
// ---------------------------------------------------------------------------

fn figure7() {
    header(
        "Figure 7 — TPC-H lineitem group-bys (paper: Shark ~1-6s in memory, Hive(tuned) 80-700s)",
    );
    let queries = [
        ("1 group (global count)", "SELECT COUNT(*) FROM lineitem"),
        (
            "7 groups (SHIPMODE)",
            "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode",
        ),
        (
            "~2.5K groups (RECEIPTDATE)",
            "SELECT l_receiptdate, COUNT(*) FROM lineitem GROUP BY l_receiptdate",
        ),
        (
            "high-cardinality groups (ORDERKEY)",
            "SELECT l_orderkey, COUNT(*) FROM lineitem GROUP BY l_orderkey",
        ),
    ];
    let shark = shark_ctx(ExecConfig::shark(), true);
    register_tpch(&shark, &TpchConfig::default(), 32, true).unwrap();
    shark.load_table("lineitem").unwrap();
    let shark_disk = shark_ctx(ExecConfig::shark_disk(), false);
    register_tpch(&shark_disk, &TpchConfig::default(), 32, false).unwrap();
    let hive = hive_ctx();
    register_tpch(&hive, &TpchConfig::default(), 32, false).unwrap();
    for (name, sql) in queries {
        println!("  -- {name}");
        row("Shark (memstore)", run_query(&shark, sql).0, "");
        row("Shark (disk)", run_query(&shark_disk, sql).0, "");
        row("Hive", run_query(&hive, sql).0, "");
    }
}

// ---------------------------------------------------------------------------
// Figure 8: join strategy selection at run time
// ---------------------------------------------------------------------------

fn figure8() {
    header("Figure 8 — join strategies chosen by optimizers (paper: static 105s, adaptive ~65s, static+adaptive ~35s => ~3x)");
    let sql = "SELECT l_orderkey, s_name FROM lineitem l JOIN supplier s \
               ON l.l_suppkey = s.s_suppkey WHERE is_special(s.s_address)";
    let tpch = TpchConfig {
        supplier_rows: 20_000,
        ..TpchConfig::default()
    };
    let run_mode = |label: &str, exec: ExecConfig| {
        let mut shark = shark_ctx(exec, true);
        shark.register_udf("is_special", |args| {
            shark_common::Value::Bool(
                args[0]
                    .as_str()
                    .map(|s| s.contains("SPECIAL"))
                    .unwrap_or(false),
            )
        });
        register_tpch(&shark, &tpch, 32, true).unwrap();
        shark.load_table("lineitem").unwrap();
        shark.load_table("supplier").unwrap();
        let (secs, rows, notes) = run_query(&shark, sql);
        row(label, secs, &format!("{rows} rows"));
        for n in notes.iter().filter(|n| n.contains("join")) {
            println!("      note: {n}");
        }
    };
    run_mode("Static plan (shuffle join)", ExecConfig::shark_static());
    let adaptive = ExecConfig {
        pde_prioritize_small_side: false,
        ..ExecConfig::shark()
    };
    run_mode("Adaptive (PDE, pre-shuffle both sides)", adaptive);
    run_mode(
        "Static + adaptive (pre-shuffle small side only)",
        ExecConfig::shark(),
    );
}

// ---------------------------------------------------------------------------
// Figure 9: fault tolerance
// ---------------------------------------------------------------------------

fn figure9() {
    header("Figure 9 — query time with failures (paper: full reload ~38s, no-failure ~12s, single failure ~15s, post-recovery ~11s)");
    let mut cluster = ClusterConfig::paper_shark_cluster();
    cluster.num_nodes = 50;
    let shark = SharkContext::new(
        SharkConfig {
            cluster,
            default_partitions: 100,
            ..SharkConfig::default()
        }
        .with_sim_scale(SCALE),
    );
    register_tpch(&shark, &TpchConfig::default(), 100, true).unwrap();
    let query = "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode";

    shark.reset_simulation();
    let load = shark.load_table("lineitem").unwrap();
    row("Full reload of the table", load.sim_seconds, "");
    row("No failures", run_query(&shark, query).0, "");
    let lost = shark.fail_node(7);
    row(
        "Single failure (recover via lineage)",
        run_query(&shark, query).0,
        &format!("{lost} partitions lost"),
    );
    row("Post-recovery", run_query(&shark, query).0, "");
}

// ---------------------------------------------------------------------------
// Figure 10: real warehouse queries
// ---------------------------------------------------------------------------

fn figure10_inner(headline_only: bool) {
    let queries = [
        (
            "Q1 (per-customer daily summary)",
            "SELECT customer_id, COUNT(*), AVG(buffering_ms), AVG(startup_ms), AVG(bitrate_kbps), SUM(play_seconds) \
             FROM sessions WHERE day = 15003 AND customer_id = 7 GROUP BY customer_id",
        ),
        (
            "Q2 (sessions by country, filtered)",
            "SELECT country, COUNT(*), COUNT(DISTINCT customer_id) FROM sessions \
             WHERE is_live = false AND errors = 0 AND rebuffer_count <= 10 AND play_seconds > 60 GROUP BY country",
        ),
        (
            "Q3 (all but two countries)",
            "SELECT country, COUNT(*), COUNT(DISTINCT customer_id) FROM sessions \
             WHERE country NOT IN ('US', 'CA') GROUP BY country",
        ),
        (
            "Q4 (top devices by quality)",
            "SELECT device, COUNT(*), AVG(quality_score) FROM sessions GROUP BY device ORDER BY 3 DESC LIMIT 10",
        ),
    ];
    let shark = shark_ctx(ExecConfig::shark(), true);
    register_warehouse(&shark, &WarehouseConfig::default(), true).unwrap();
    shark.load_table("sessions").unwrap();
    let hive = hive_ctx();
    register_warehouse(&hive, &WarehouseConfig::default(), false).unwrap();
    let limit = if headline_only { 2 } else { queries.len() };
    for (name, sql) in queries.iter().take(limit) {
        println!("  -- {name}");
        let (secs, _, notes) = run_query(&shark, sql);
        row("Shark (memstore)", secs, "");
        for n in notes.iter().filter(|n| n.contains("pruning")) {
            println!("      note: {n}");
        }
        if !headline_only {
            let shark_disk = shark_ctx(ExecConfig::shark_disk(), false);
            register_warehouse(&shark_disk, &WarehouseConfig::default(), false).unwrap();
            row("Shark (disk)", run_query(&shark_disk, sql).0, "");
        }
        row("Hive", run_query(&hive, sql).0, "");
    }
}

fn figure10() {
    header("Figure 10 — real Hive warehouse queries (paper: Shark 0.7-1.1s, Hive 40-100s)");
    figure10_inner(false);
}

// ---------------------------------------------------------------------------
// Figures 11 & 12: machine learning per-iteration times
// ---------------------------------------------------------------------------

fn ml_points_rdd(shark: &SharkContext, dims: usize) -> shark_rdd::Rdd<(Vec<f64>, f64)> {
    let table = shark.sql_to_rdd("SELECT * FROM points").unwrap();
    table
        .rdd
        .map(move |row| {
            let label = row.get_float(0).unwrap_or(0.0);
            let features: Vec<f64> = (1..=dims)
                .map(|i| row.get_float(i).unwrap_or(0.0))
                .collect();
            (features, label)
        })
        .cache()
}

fn figure11_inner(headline_only: bool) {
    let cfg = MlConfig::default();
    // Shark: data cached in the memstore, iterations reuse the cached RDD.
    let shark = shark_ctx(ExecConfig::shark(), true);
    register_ml_points(&shark, &cfg, 32, true).unwrap();
    shark.load_table("points").unwrap();
    let points = ml_points_rdd(&shark, cfg.dims);
    shark.reset_simulation();
    let (_, report) = LogisticRegression::default().train(&points).unwrap();
    row(
        "Shark — logistic regression / iteration",
        report.mean_iteration_seconds(),
        "",
    );
    if headline_only {
        return;
    }
    // Hadoop baselines: every iteration re-reads the input from the DFS.
    for (label, profile) in [
        (
            "Hadoop (binary input) / iteration",
            EngineProfile::hadoop_binary(),
        ),
        ("Hadoop (text input) / iteration", EngineProfile::hadoop()),
    ] {
        let mut cluster = ClusterConfig::paper_hive_cluster();
        cluster.profile = profile;
        let hadoop = SharkContext::new(
            SharkConfig {
                cluster,
                default_partitions: 200,
                exec: ExecConfig::hive(),
                ..SharkConfig::default()
            }
            .with_sim_scale(SCALE),
        );
        register_ml_points(&hadoop, &cfg, 32, false).unwrap();
        let points = {
            let table = hadoop.sql_to_rdd("SELECT * FROM points").unwrap();
            let dims = cfg.dims;
            table.rdd.map(move |row| {
                let label = row.get_float(0).unwrap_or(0.0);
                let features: Vec<f64> = (1..=dims)
                    .map(|i| row.get_float(i).unwrap_or(0.0))
                    .collect();
                (features, label)
            })
            // note: NOT cached — Hadoop re-reads the input every iteration
        };
        hadoop.reset_simulation();
        let (_, report) = LogisticRegression {
            iterations: 3,
            ..LogisticRegression::default()
        }
        .train(&points)
        .unwrap();
        row(label, report.mean_iteration_seconds(), "");
    }
}

fn figure11() {
    header("Figure 11 — logistic regression per-iteration (paper: Shark 0.96s, Hadoop binary ~60s, Hadoop text ~120s)");
    figure11_inner(false);
}

fn figure12() {
    header("Figure 12 — k-means per-iteration (paper: Shark 4.1s, Hadoop binary ~125s, Hadoop text ~185s)");
    let cfg = MlConfig::default();
    let shark = shark_ctx(ExecConfig::shark(), true);
    register_ml_points(&shark, &cfg, 32, true).unwrap();
    shark.load_table("points").unwrap();
    let features = ml_points_rdd(&shark, cfg.dims).map(|(f, _)| f).cache();
    shark.reset_simulation();
    let (_, report) = KMeans::default().train(&features).unwrap();
    row(
        "Shark — k-means / iteration",
        report.mean_iteration_seconds(),
        "",
    );
    for (label, profile) in [
        (
            "Hadoop (binary input) / iteration",
            EngineProfile::hadoop_binary(),
        ),
        ("Hadoop (text input) / iteration", EngineProfile::hadoop()),
    ] {
        let mut cluster = ClusterConfig::paper_hive_cluster();
        cluster.profile = profile;
        let hadoop = SharkContext::new(
            SharkConfig {
                cluster,
                default_partitions: 200,
                exec: ExecConfig::hive(),
                ..SharkConfig::default()
            }
            .with_sim_scale(SCALE),
        );
        register_ml_points(&hadoop, &cfg, 32, false).unwrap();
        let table = hadoop.sql_to_rdd("SELECT * FROM points").unwrap();
        let dims = cfg.dims;
        let features = table.rdd.map(move |row| {
            (1..=dims)
                .map(|i| row.get_float(i).unwrap_or(0.0))
                .collect()
        });
        hadoop.reset_simulation();
        let (_, report) = KMeans {
            iterations: 3,
            ..KMeans::default()
        }
        .train(&features)
        .unwrap();
        row(label, report.mean_iteration_seconds(), "");
    }
}

// ---------------------------------------------------------------------------
// Figure 13: task launching overhead
// ---------------------------------------------------------------------------

fn figure13() {
    header("Figure 13 — job time vs number of reduce tasks (paper: Hadoop blows up past ~1000 tasks, Spark stays flat)");
    let total_work_seconds = 4000.0;
    println!(
        "  {:<12} {:>16} {:>16}",
        "reduce tasks", "Hadoop (s)", "Spark (s)"
    );
    for n in [50usize, 200, 1000, 2000, 5000] {
        let per_task = total_work_seconds / n as f64;
        let mut hcfg = ClusterConfig::paper_hive_cluster();
        hcfg.straggler_probability = 0.0;
        let mut scfg = ClusterConfig::paper_shark_cluster();
        scfg.straggler_probability = 0.0;
        let mut hadoop = shark_cluster::ClusterSim::new(hcfg);
        let mut spark = shark_cluster::ClusterSim::new(scfg);
        let h = hadoop.simulate_uniform_stage(n, per_task).duration;
        let s = spark.simulate_uniform_stage(n, per_task).duration;
        println!("  {n:<12} {h:>16.1} {s:>16.1}");
    }
}

// ---------------------------------------------------------------------------
// §3.2 memory footprint, §3.5 pruning, §3.1.2 skew
// ---------------------------------------------------------------------------

fn memory() {
    header("§3.2 — storage format footprint (paper: 270MB lineitem = 971MB JVM objects vs 289MB serialized)");
    let cfg = TpchConfig::default();
    let rows: Vec<shark_common::Row> = (0..8)
        .flat_map(|p| shark_datagen::tpch::lineitem_partition(&cfg, 8, p))
        .collect();
    let schema = shark_datagen::tpch::lineitem_schema();
    let objects = shark_columnar::footprint::object_store_bytes(&rows);
    let serialized = shark_columnar::footprint::serialized_bytes(&rows);
    let columnar = ColumnarPartition::from_rows(&schema, &rows);
    println!("  rows: {}", rows.len());
    println!("  deserialized row objects : {:>12} bytes", objects);
    println!(
        "  serialized rows          : {:>12} bytes ({:.2}x smaller)",
        serialized,
        objects as f64 / serialized as f64
    );
    println!(
        "  columnar + compression   : {:>12} bytes ({:.2}x smaller, compression ratio {:.2}x)",
        columnar.memory_bytes(),
        objects as f64 / columnar.memory_bytes() as f64,
        columnar.compression_ratio()
    );
}

fn pruning() {
    header("§3.5 — map pruning selectivity (paper: ~30x less data scanned on the warehouse trace)");
    let shark = shark_ctx(ExecConfig::shark(), true);
    register_warehouse(&shark, &WarehouseConfig::default(), true).unwrap();
    shark.load_table("sessions").unwrap();
    let (_, _, notes) = run_query(
        &shark,
        "SELECT COUNT(*) FROM sessions WHERE day = 15003 AND country = 'US'",
    );
    for n in notes.iter().filter(|n| n.contains("pruning")) {
        println!("  {n}");
    }
    let (_, _, notes) = run_query(
        &shark,
        "SELECT COUNT(*) FROM sessions WHERE day BETWEEN 15000 AND 15002",
    );
    for n in notes.iter().filter(|n| n.contains("pruning")) {
        println!("  {n}");
    }
}

fn skew() {
    header("§3.1.2 — skew handling: PDE bucket coalescing vs fixed reducers");
    // A skewed aggregation: 80% of rows share one key.
    let shark = shark_ctx(ExecConfig::shark(), true);
    let nodes = shark.config().cluster.num_nodes;
    shark.register_table(
        shark_sql::TableMeta::new(
            "events",
            shark_common::Schema::from_pairs(&[
                ("key", shark_common::DataType::Str),
                ("v", shark_common::DataType::Int),
            ]),
            32,
            |p| {
                (0..2000)
                    .map(|i| {
                        let key = if i % 5 != 0 {
                            "hot-key".to_string()
                        } else {
                            format!("key-{}", (p * 2000 + i) % 500)
                        };
                        shark_common::row![key, i as i64]
                    })
                    .collect()
            },
        )
        .with_cache(nodes),
    );
    shark.load_table("events").unwrap();
    let (pde_secs, _, notes) = run_query(&shark, "SELECT key, SUM(v) FROM events GROUP BY key");
    row("PDE (coalesced reducers)", pde_secs, "");
    for n in notes.iter().filter(|n| n.contains("coalesced")) {
        println!("      note: {n}");
    }
    let mut static_cfg = ExecConfig::shark_static();
    static_cfg.default_reducers = 8;
    let shark_static = {
        let s = shark_ctx(static_cfg, true);
        let nodes = s.config().cluster.num_nodes;
        s.register_table(
            shark_sql::TableMeta::new(
                "events",
                shark_common::Schema::from_pairs(&[
                    ("key", shark_common::DataType::Str),
                    ("v", shark_common::DataType::Int),
                ]),
                32,
                |p| {
                    (0..2000)
                        .map(|i| {
                            let key = if i % 5 != 0 {
                                "hot-key".to_string()
                            } else {
                                format!("key-{}", (p * 2000 + i) % 500)
                            };
                            shark_common::row![key, i as i64]
                        })
                        .collect()
                },
            )
            .with_cache(nodes),
        );
        s.load_table("events").unwrap();
        s
    };
    let (static_secs, _, _) =
        run_query(&shark_static, "SELECT key, SUM(v) FROM events GROUP BY key");
    row("Static plan (8 reducers)", static_secs, "");
}

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| filter.is_empty() || filter.iter().any(|f| f.contains(name));

    println!("Shark (SIGMOD 2013) reproduction — experiment harness");
    println!("simulated cluster: 100 nodes x 8 cores (§6.1); scale factor {SCALE}");

    if want("figure1") {
        figure1();
    }
    if want("figure5") {
        figure5();
    }
    if want("figure6") {
        figure6();
    }
    if want("loading") {
        loading();
    }
    if want("figure7") {
        figure7();
    }
    if want("figure8") {
        figure8();
    }
    if want("figure9") {
        figure9();
    }
    if want("figure10") {
        figure10();
    }
    if want("figure11") {
        figure11();
    }
    if want("figure12") {
        figure12();
    }
    if want("figure13") {
        figure13();
    }
    if want("memory") {
        memory();
    }
    if want("pruning") {
        pruning();
    }
    if want("skew") {
        skew();
    }
    println!("\ndone.");
}
