//! Shark benchmark harness: Criterion micro-benchmarks and the `experiments` binary.
//!
//! # Fast mode
//!
//! Setting the `SHARK_BENCH_FAST` environment variable puts every benchmark
//! into *smoke* mode: row counts are scaled down through [`scaled`] /
//! [`tpch`] / [`warehouse`] and sample counts through [`samples`], so the
//! full suite finishes in seconds. CI's `bench-smoke` job runs the suite
//! this way on every push — not for trustworthy absolute numbers, but to
//! prove every bench still runs and to publish a machine-readable artifact
//! of the medians (see the `SHARK_BENCH_JSON` hook in the vendored
//! `criterion` stand-in) that seeds the performance trajectory.

use shark_datagen::tpch::TpchConfig;
use shark_datagen::warehouse::WarehouseConfig;

/// Whether `SHARK_BENCH_FAST` is set (the CI bench-smoke mode).
pub fn fast_mode() -> bool {
    std::env::var_os("SHARK_BENCH_FAST").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Scale a row/size knob down in fast mode (÷16, floor 64); identity
/// otherwise.
pub fn scaled(full: usize) -> usize {
    if fast_mode() {
        (full / 16).max(64).min(full)
    } else {
        full
    }
}

/// Sample count for a benchmark group: 3 in fast mode, `default` otherwise.
pub fn samples(default: usize) -> usize {
    if fast_mode() {
        3
    } else {
        default
    }
}

/// Scale a TPC-H data configuration down in fast mode.
pub fn tpch(cfg: TpchConfig) -> TpchConfig {
    TpchConfig {
        lineitem_rows: scaled(cfg.lineitem_rows),
        supplier_rows: scaled(cfg.supplier_rows),
        orders_rows: scaled(cfg.orders_rows),
        ..cfg
    }
}

/// Scale a warehouse data configuration down in fast mode.
pub fn warehouse(cfg: WarehouseConfig) -> WarehouseConfig {
    WarehouseConfig {
        sessions_per_partition: scaled(cfg.sessions_per_partition),
        ..cfg
    }
}

/// Dump the process-wide [`shark_obs::metrics()`] registry in Prometheus
/// text format to the file named by `SHARK_METRICS_SNAPSHOT`, if that
/// variable is set. Called at the end of a benchmark run so CI can upload
/// the counters/histograms the run produced as an artifact. Best-effort:
/// an unwritable path is ignored rather than failing the bench.
pub fn dump_metrics_snapshot() {
    if let Some(path) = std::env::var_os("SHARK_METRICS_SNAPSHOT") {
        if !path.is_empty() {
            let _ = std::fs::write(path, shark_obs::metrics().render_prometheus());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_identity_outside_fast_mode() {
        // The test environment does not set SHARK_BENCH_FAST (and tests
        // must not mutate the process environment), so the helpers pass
        // values through unchanged.
        if !fast_mode() {
            assert_eq!(scaled(60_000), 60_000);
            assert_eq!(samples(10), 10);
            assert_eq!(tpch(TpchConfig::tiny()).lineitem_rows, 4_000);
            assert_eq!(
                warehouse(WarehouseConfig::tiny()).sessions_per_partition,
                60
            );
        } else {
            assert_eq!(scaled(60_000), 3_750);
            assert_eq!(samples(10), 3);
            // Small knobs never scale below the floor, or above the
            // original value.
            assert_eq!(scaled(100), 64);
            assert_eq!(scaled(32), 32);
        }
    }
}
