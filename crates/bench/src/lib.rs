//! Shark benchmark harness: Criterion micro-benchmarks and the `experiments` binary.
