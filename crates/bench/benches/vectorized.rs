//! Vectorized-vs-row execution benchmarks, plus executor saturation.
//!
//! The A/B pairs run the *same* query on the same warm memstore through the
//! vectorized batch kernels (`ExecConfig::vectorized = true`, the default)
//! and the row-at-a-time fallback — the gap is the win from selection
//! vectors, run skipping, dictionary-coded group-by keys and late
//! materialization. The saturation bench fires 64 small cached queries from
//! 16 client threads at one server so every query's morsels share the one
//! process-wide work-stealing executor instead of spawning per-query scope
//! threads.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_datagen::tpch::{self, TpchConfig};
use shark_server::{ServerConfig, SessionHandle, SharkServer};
use shark_sql::{ExecConfig, TableMeta};

const FILTER_QUERY: &str = "SELECT l_orderkey, l_extendedprice FROM lineitem \
                            WHERE l_quantity > 10 AND l_shipmode = 'AIR'";
const GROUP_QUERY: &str = "SELECT l_shipmode, COUNT(*), SUM(l_extendedprice) \
                           FROM lineitem GROUP BY l_shipmode";

fn server() -> SharkServer {
    let server = SharkServer::new(ServerConfig::default().with_admission(16, 64));
    let cfg = shark_bench::tpch(TpchConfig::default());
    let partitions = 16;
    server.register_table(
        TableMeta::new("lineitem", tpch::lineitem_schema(), partitions, move |p| {
            tpch::lineitem_partition(&cfg, partitions, p)
        })
        .with_cache(partitions),
    );
    server.load_table("lineitem").unwrap();
    server
}

fn row_session(server: &SharkServer) -> SessionHandle {
    let mut session = server.session();
    let mut exec = ExecConfig::shark();
    exec.vectorized = false;
    session.set_exec_config(exec);
    session
}

fn bench_vectorized(c: &mut Criterion) {
    let mut g = c.benchmark_group("vectorized");
    g.sample_size(shark_bench::samples(10));

    let server = server();
    let vec_session = server.session();
    let row_session = row_session(&server);

    // Filter-heavy scan over the warm columnar memstore: the vectorized
    // path evaluates both predicates over the encodings (dictionary code
    // compare for l_shipmode, run skipping where runs exist) and only then
    // decodes the surviving rows of the two projected columns.
    g.bench_function("filter_scan_vectorized", |b| {
        b.iter(|| vec_session.sql(FILTER_QUERY).unwrap())
    });
    g.bench_function("filter_scan_row", |b| {
        b.iter(|| row_session.sql(FILTER_QUERY).unwrap())
    });

    // Dictionary-keyed aggregation: the fused scan + partial aggregate
    // groups on dictionary codes without materializing rows; the row path
    // decodes every row and hashes the string key.
    g.bench_function("dict_group_by_vectorized", |b| {
        b.iter(|| vec_session.sql(GROUP_QUERY).unwrap())
    });
    g.bench_function("dict_group_by_row", |b| {
        b.iter(|| row_session.sql(GROUP_QUERY).unwrap())
    });

    // Executor saturation: 64 cached queries from 16 client threads, all
    // of whose partition morsels land on the shared work-stealing pool.
    g.bench_function("saturation_64_queries", |b| {
        b.iter(|| {
            let workers: Vec<_> = (0..16)
                .map(|_| {
                    let s = server.session();
                    std::thread::spawn(move || {
                        for _ in 0..4 {
                            s.sql(GROUP_QUERY).unwrap();
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_vectorized);
criterion_main!(benches);
