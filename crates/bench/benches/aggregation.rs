//! Figure 7 micro-benchmark: group-by aggregation under the Shark and Hive
//! emulations at different group cardinalities.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_core::datasets::register_tpch;
use shark_core::{ExecConfig, SharkConfig, SharkContext};
use shark_datagen::tpch::TpchConfig;

fn session(exec: ExecConfig) -> SharkContext {
    let shark = SharkContext::new(SharkConfig::default().with_exec(exec));
    register_tpch(&shark, &shark_bench::tpch(TpchConfig::tiny()), 8, true).unwrap();
    shark.load_table("lineitem").unwrap();
    shark
}

fn bench_aggregation(c: &mut Criterion) {
    let shark = session(ExecConfig::shark());
    let hive = session(ExecConfig::hive());
    let mut g = c.benchmark_group("aggregation");
    g.sample_size(shark_bench::samples(10));
    g.bench_function("shark_7_groups", |b| {
        b.iter(|| {
            shark
                .sql("SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode")
                .unwrap()
        })
    });
    g.bench_function("shark_many_groups", |b| {
        b.iter(|| {
            shark
                .sql("SELECT l_orderkey, COUNT(*) FROM lineitem GROUP BY l_orderkey")
                .unwrap()
        })
    });
    g.bench_function("hive_mode_7_groups", |b| {
        b.iter(|| {
            hive.sql("SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode")
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
