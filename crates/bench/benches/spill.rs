//! Spill-tier benchmarks: the demote → promote round trip (serialize every
//! partition to disk, then fault the whole table back in through one scan)
//! against the two alternatives it sits between — the fully resident scan
//! (the ceiling) and drop-then-lineage-recompute (the floor the Shark
//! paper's memory-only design pays on every loss). The gap between
//! `promote_after_demote` and `recompute_after_drop` is the tier's reason
//! to exist: I/O-cost faulting vs. regenerating the partition.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_datagen::tpch::{self, TpchConfig};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const SCAN: &str =
    "SELECT l_shipmode, COUNT(*), SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode";
const PARTITIONS: usize = 8;

fn spill_server() -> (SharkServer, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("shark-bench-spill-{}", std::process::id()));
    let server = SharkServer::new(ServerConfig::default().with_spill_dir(&dir));
    let cfg = shark_bench::tpch(TpchConfig::tiny());
    server.register_table(
        TableMeta::new("lineitem", tpch::lineitem_schema(), PARTITIONS, move |p| {
            tpch::lineitem_partition(&cfg, PARTITIONS, p)
        })
        .with_cache(PARTITIONS),
    );
    server.load_table("lineitem").unwrap();
    (server, dir)
}

fn bench_spill(c: &mut Criterion) {
    let mut g = c.benchmark_group("spill");
    g.sample_size(shark_bench::samples(10));

    let (server, dir) = spill_server();
    let session = server.session();

    // Ceiling: the same aggregate over the fully resident table.
    g.bench_function("scan_resident", |b| b.iter(|| session.sql(SCAN).unwrap()));

    // The round trip: demote every partition (encode + write + rename),
    // then one scan that promotes them all back from disk.
    g.bench_function("demote_promote_round_trip", |b| {
        b.iter(|| {
            let events = server.demote_table("lineitem");
            assert!(!events.is_empty());
            session.sql(SCAN).unwrap()
        })
    });

    // Floor: drop the partitions outright (no spill frame) and pay the
    // lineage recompute the next scan triggers.
    let mem = server
        .catalog()
        .get("lineitem")
        .unwrap()
        .cached
        .clone()
        .unwrap();
    g.bench_function("recompute_after_drop", |b| {
        b.iter(|| {
            for p in 0..PARTITIONS {
                mem.evict_partition(p);
            }
            session.sql(SCAN).unwrap()
        })
    });

    g.finish();
    shark_bench::dump_metrics_snapshot();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_spill);
criterion_main!(benches);
