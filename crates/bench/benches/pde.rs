//! Partial DAG Execution primitives: bucket coalescing (bin packing) and
//! join-strategy selection over shuffle statistics.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_sql::{choose_join_strategy, coalesce_buckets};

fn bench_pde(c: &mut Criterion) {
    let mut g = c.benchmark_group("pde");
    g.sample_size(shark_bench::samples(20));
    let buckets = shark_bench::scaled(2000) as u64;
    let skewed: Vec<u64> = (0..buckets)
        .map(|i| {
            if i % 97 == 0 {
                1_000_000
            } else {
                (i % 50 + 1) * 100
            }
        })
        .collect();
    g.bench_function("coalesce_skewed_buckets", |b| {
        b.iter(|| coalesce_buckets(&skewed, 500_000, 200))
    });
    g.bench_function("join_strategy_choice", |b| {
        b.iter(|| {
            let mut n = 0;
            for i in 0..1000u64 {
                if choose_join_strategy(i * 1000, 1 << 30, 1 << 20)
                    == shark_sql::JoinStrategy::Shuffle
                {
                    n += 1;
                }
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pde);
criterion_main!(benches);
