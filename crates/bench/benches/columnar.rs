//! Micro-benchmarks for the columnar memstore (§3.2): building compressed
//! columnar partitions vs. plain ones, and decoding a projected column.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_columnar::{ColumnarPartition, EncodingChoice};
use shark_datagen::tpch::{lineitem_partition, lineitem_schema, TpchConfig};

fn bench_columnar(c: &mut Criterion) {
    let cfg = shark_bench::tpch(TpchConfig::default());
    let rows = lineitem_partition(&cfg, 8, 0);
    let schema = lineitem_schema();
    let mut g = c.benchmark_group("columnar");
    g.sample_size(shark_bench::samples(10));
    g.bench_function("build_compressed", |b| {
        b.iter(|| ColumnarPartition::from_rows(&schema, &rows))
    });
    g.bench_function("build_plain", |b| {
        b.iter(|| ColumnarPartition::from_rows_with(&schema, &rows, EncodingChoice::ForcePlain))
    });
    let part = ColumnarPartition::from_rows(&schema, &rows);
    g.bench_function("project_two_columns", |b| {
        b.iter(|| part.project_rows(&[5, 4]))
    });
    g.bench_function("footprint_object_store_model", |b| {
        b.iter(|| shark_columnar::footprint::object_store_bytes(&rows))
    });
    g.finish();
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
