//! Figure 6/8 micro-benchmark: shuffle join vs broadcast (map) join vs
//! co-partitioned join on the same data.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_core::datasets::register_tpch;
use shark_core::{ExecConfig, SharkConfig, SharkContext};
use shark_datagen::tpch::TpchConfig;

const JOIN: &str =
    "SELECT l_orderkey, s_name FROM lineitem l JOIN supplier s ON l.l_suppkey = s.s_suppkey";

fn session(exec: ExecConfig) -> SharkContext {
    let shark = SharkContext::new(SharkConfig::default().with_exec(exec));
    register_tpch(&shark, &shark_bench::tpch(TpchConfig::tiny()), 8, true).unwrap();
    shark.load_table("lineitem").unwrap();
    shark.load_table("supplier").unwrap();
    shark
}

fn bench_join(c: &mut Criterion) {
    let adaptive = session(ExecConfig::shark());
    let static_plan = session(ExecConfig::shark_static());
    let mut g = c.benchmark_group("join");
    g.sample_size(shark_bench::samples(10));
    g.bench_function("pde_adaptive_join", |b| {
        b.iter(|| adaptive.sql(JOIN).unwrap())
    });
    g.bench_function("static_shuffle_join", |b| {
        b.iter(|| static_plan.sql(JOIN).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
