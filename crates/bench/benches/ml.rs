//! Figures 11/12 micro-benchmark: one iteration of logistic regression and
//! k-means over a cached RDD.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_datagen::ml::{labeled_points_partition, MlConfig};
use shark_ml::{KMeans, LogisticRegression};
use shark_rdd::RddContext;

fn bench_ml(c: &mut Criterion) {
    let ctx = RddContext::local();
    let cfg = MlConfig {
        rows: shark_bench::scaled(20_000),
        dims: 10,
        clusters: 5,
        seed: 5,
    };
    let data: Vec<(Vec<f64>, f64)> = (0..8)
        .flat_map(|p| labeled_points_partition(&cfg, 8, p))
        .map(|p| (p.features, p.label))
        .collect();
    let points = ctx.parallelize(data, 16).cache();
    points.count().unwrap(); // populate the cache
    let features = points.map(|(f, _)| f).cache();
    features.count().unwrap();

    let mut g = c.benchmark_group("ml");
    g.sample_size(shark_bench::samples(10));
    g.bench_function("logistic_regression_1_iter", |b| {
        b.iter(|| {
            LogisticRegression {
                iterations: 1,
                learning_rate: 1.0,
                seed: 1,
            }
            .train(&points)
            .unwrap()
        })
    });
    g.bench_function("kmeans_1_iter", |b| {
        b.iter(|| {
            KMeans {
                k: 5,
                iterations: 1,
                reduce_partitions: 8,
            }
            .train(&features)
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);
