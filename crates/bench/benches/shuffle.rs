//! RDD shuffle micro-benchmark: reduce_by_key and pre_shuffle statistics
//! collection (the substrate behind Figures 5, 7 and 13).
use criterion::{criterion_group, criterion_main, Criterion};
use shark_rdd::RddContext;

fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle");
    g.sample_size(shark_bench::samples(10));
    g.bench_function("reduce_by_key_50k", |b| {
        b.iter(|| {
            let ctx = RddContext::local();
            let n = shark_bench::scaled(50_000) as i64;
            let rdd = ctx.parallelize((0i64..n).collect(), 16);
            rdd.map(|x| (x % 1000, 1i64))
                .reduce_by_key(16, |a, b| a + b)
                .collect()
                .unwrap()
        })
    });
    g.bench_function("pre_shuffle_statistics_50k", |b| {
        b.iter(|| {
            let ctx = RddContext::local();
            let n = shark_bench::scaled(50_000) as i64;
            let rdd = ctx.parallelize((0i64..n).collect(), 16);
            let pre = rdd.map(|x| (x % 1000, x)).pre_shuffle(64).unwrap();
            pre.summary().skew_factor()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_shuffle);
criterion_main!(benches);
