//! Map pruning micro-benchmark (§3.5): the same selective query with and
//! without partition statistics available.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_core::datasets::register_warehouse;
use shark_core::{ExecConfig, SharkConfig, SharkContext};
use shark_datagen::warehouse::WarehouseConfig;

const QUERY: &str = "SELECT COUNT(*) FROM sessions WHERE day = 15001 AND country = 'US'";

fn bench_pruning(c: &mut Criterion) {
    let cached = SharkContext::new(SharkConfig::default().with_exec(ExecConfig::shark()));
    register_warehouse(
        &cached,
        &shark_bench::warehouse(WarehouseConfig::tiny()),
        true,
    )
    .unwrap();
    cached.load_table("sessions").unwrap();
    let uncached = SharkContext::new(SharkConfig::default().with_exec(ExecConfig::shark_disk()));
    register_warehouse(
        &uncached,
        &shark_bench::warehouse(WarehouseConfig::tiny()),
        false,
    )
    .unwrap();

    let mut g = c.benchmark_group("pruning");
    g.sample_size(shark_bench::samples(10));
    g.bench_function("with_map_pruning", |b| {
        b.iter(|| cached.sql(QUERY).unwrap())
    });
    g.bench_function("full_scan_no_stats", |b| {
        b.iter(|| uncached.sql(QUERY).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
