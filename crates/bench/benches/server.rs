//! Serving-layer benchmarks: multi-session throughput through the
//! `SharkServer` (admission + shared memstore) vs. the same queries on a
//! bare single-owner session, the cost of budget enforcement when every
//! query evicts, and the streaming cursor — time-to-first-batch on a full
//! scan and the early-termination win of a streamed LIMIT.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_datagen::tpch::{self, TpchConfig};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const QUERY: &str = "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode";

fn server(budget: u64) -> SharkServer {
    let server = SharkServer::new(ServerConfig::default().with_memory_budget(budget));
    let cfg = TpchConfig::tiny();
    let partitions = 8;
    let nodes = server.context().config().cluster.num_nodes;
    server.register_table(
        TableMeta::new("lineitem", tpch::lineitem_schema(), partitions, move |p| {
            tpch::lineitem_partition(&cfg, partitions, p)
        })
        .with_cache(nodes),
    );
    server.load_table("lineitem").unwrap();
    server
}

fn bench_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    g.sample_size(10);

    let single = server(u64::MAX);
    let session = single.session();
    g.bench_function("one_session_cached", |b| {
        b.iter(|| session.sql(QUERY).unwrap())
    });

    let shared = server(u64::MAX);
    g.bench_function("eight_sessions_concurrent", |b| {
        b.iter(|| {
            let workers: Vec<_> = (0..8)
                .map(|_| {
                    let s = shared.session();
                    std::thread::spawn(move || s.sql(QUERY).unwrap())
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
        })
    });

    // A budget of one byte forces an eviction + full lineage reload on
    // every query: the worst-case serving path.
    let thrashing = server(1);
    let thrash_session = thrashing.session();
    g.bench_function("one_session_evict_every_query", |b| {
        b.iter(|| thrash_session.sql(QUERY).unwrap())
    });

    // The streaming cursor: latency to the first delivered batch of a full
    // scan (the pipelined-delivery headline metric)...
    let streaming = server(u64::MAX);
    let stream_session = streaming.session();
    g.bench_function("stream_first_batch", |b| {
        b.iter(|| {
            let mut cursor = stream_session
                .sql_stream("SELECT l_orderkey, l_shipmode FROM lineitem")
                .unwrap();
            let first = cursor.next_batch().unwrap().unwrap();
            assert!(!first.is_empty());
            // Cursor dropped mid-stream: remaining partitions never launch.
        })
    });

    // ...and a streamed LIMIT, which executes only as many partitions as
    // the limit needs, vs. the batch path that runs them all.
    g.bench_function("stream_limit_early_stop", |b| {
        b.iter(|| {
            let rows = stream_session
                .sql_stream("SELECT l_orderkey FROM lineitem LIMIT 5")
                .unwrap()
                .fetch_all()
                .unwrap();
            assert_eq!(rows.len(), 5);
        })
    });
    g.bench_function("batch_limit_full_stage", |b| {
        b.iter(|| {
            let result = stream_session
                .sql("SELECT l_orderkey FROM lineitem LIMIT 5")
                .unwrap();
            assert_eq!(result.result.rows.len(), 5);
        })
    });

    g.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
