//! Serving-layer benchmarks: multi-session throughput through the
//! `SharkServer` (admission + shared memstore) vs. the same queries on a
//! bare single-owner session, the cost of budget enforcement when every
//! query evicts, and the streaming cursor — time-to-first-batch on a full
//! scan, the early-termination win of a streamed LIMIT, total drain time
//! serial vs. prefetched (the pipelined worker pool overlapping partition
//! execution with consumption), and top-k pushdown vs. the batch sort.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_datagen::tpch::{self, TpchConfig};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const QUERY: &str = "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode";

fn server(budget: u64) -> SharkServer {
    let server = SharkServer::new(ServerConfig::default().with_memory_budget(budget));
    let cfg = shark_bench::tpch(TpchConfig::tiny());
    let partitions = 8;
    let nodes = server.context().config().cluster.num_nodes;
    server.register_table(
        TableMeta::new("lineitem", tpch::lineitem_schema(), partitions, move |p| {
            tpch::lineitem_partition(&cfg, partitions, p)
        })
        .with_cache(nodes),
    );
    server.load_table("lineitem").unwrap();
    server
}

fn bench_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    g.sample_size(shark_bench::samples(10));

    let single = server(u64::MAX);
    let session = single.session();
    g.bench_function("one_session_cached", |b| {
        b.iter(|| session.sql(QUERY).unwrap())
    });

    // Overhead guard: the identical cached query with the query tracer
    // (flight recorder) switched on. The gap to `one_session_cached` is
    // the cost of recording the full span tree; `one_session_cached`
    // itself is diffed against the main baseline by the bench-regression
    // gate, which keeps the tracing-*disabled* path at its pre-tracing
    // cost.
    shark_obs::tracer().set_enabled(true);
    g.bench_function("one_session_cached_traced", |b| {
        b.iter(|| session.sql(QUERY).unwrap())
    });
    shark_obs::tracer().set_enabled(false);

    let shared = server(u64::MAX);
    g.bench_function("eight_sessions_concurrent", |b| {
        b.iter(|| {
            let workers: Vec<_> = (0..8)
                .map(|_| {
                    let s = shared.session();
                    std::thread::spawn(move || s.sql(QUERY).unwrap())
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
        })
    });

    // A budget of one byte forces an eviction + full lineage reload on
    // every query: the worst-case serving path.
    let thrashing = server(1);
    let thrash_session = thrashing.session();
    g.bench_function("one_session_evict_every_query", |b| {
        b.iter(|| thrash_session.sql(QUERY).unwrap())
    });

    // The streaming cursor: latency to the first delivered batch of a full
    // scan (the pipelined-delivery headline metric)...
    let streaming = server(u64::MAX);
    let stream_session = streaming.session();
    g.bench_function("stream_first_batch", |b| {
        b.iter(|| {
            let mut cursor = stream_session
                .sql_stream("SELECT l_orderkey, l_shipmode FROM lineitem")
                .unwrap();
            let first = cursor.next_batch().unwrap().unwrap();
            assert!(!first.is_empty());
            // Cursor dropped mid-stream: remaining partitions never launch.
        })
    });

    // ...and a streamed LIMIT, which executes only as many partitions as
    // the limit needs, vs. the batch path that runs them all.
    g.bench_function("stream_limit_early_stop", |b| {
        b.iter(|| {
            let rows = stream_session
                .sql_stream("SELECT l_orderkey FROM lineitem LIMIT 5")
                .unwrap()
                .fetch_all()
                .unwrap();
            assert_eq!(rows.len(), 5);
        })
    });
    g.bench_function("batch_limit_full_stage", |b| {
        b.iter(|| {
            let result = stream_session
                .sql("SELECT l_orderkey FROM lineitem LIMIT 5")
                .unwrap();
            assert_eq!(result.result.rows.len(), 5);
        })
    });

    // Stream-drain time, serial vs. prefetched, over an *uncached* table so
    // every partition does real generator + scan work. The consumer is a
    // paced client — delivering a batch costs it ~1 ms (formatting, network
    // flush) — which is where pipelining pays: the serial path alternates
    // executor work and client delivery, while with prefetch ≥ 2 the worker
    // pool computes the next partitions during the delivery pauses, so the
    // total drain time drops toward max(compute, delivery) instead of their
    // sum. (On a multi-core host the workers additionally execute
    // partitions in parallel with each other.)
    let pipelined = server(u64::MAX);
    // Default-size lineitem (60k rows): each partition is ~1 ms of
    // generator + scan work, comparable to the client's per-batch cost.
    let cfg = shark_bench::tpch(TpchConfig::default());
    let raw_partitions = 16;
    pipelined.register_table(TableMeta::new(
        "lineitem_raw",
        tpch::lineitem_schema(),
        raw_partitions,
        move |p| tpch::lineitem_partition(&cfg, raw_partitions, p),
    ));
    let drain_query = "SELECT l_orderkey, l_extendedprice FROM lineitem_raw WHERE l_quantity > 2";
    let paced_drain = |session: &shark_server::SessionHandle| {
        let mut cursor = session.sql_stream(drain_query).unwrap();
        let mut rows = 0usize;
        while let Some(batch) = cursor.next_batch().unwrap() {
            rows += batch.len();
            // The client-delivery pause the executors can hide behind.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(rows > 0);
    };
    let mut serial_session = pipelined.session();
    serial_session.set_stream_prefetch(0);
    g.bench_function("stream_drain_serial", |b| {
        b.iter(|| paced_drain(&serial_session))
    });
    let mut prefetch_session = pipelined.session();
    prefetch_session.set_stream_prefetch(4);
    g.bench_function("stream_drain_prefetch4", |b| {
        b.iter(|| paced_drain(&prefetch_session))
    });

    // Top-k pushdown: ORDER BY + LIMIT through per-partition bounded heaps
    // and statistics-ordered partitions (l_orderkey increases with the
    // partition index) vs. the batch path's full sort of the whole result.
    g.bench_function("stream_topk_order_by_limit", |b| {
        b.iter(|| {
            let rows = stream_session
                .sql_stream("SELECT l_orderkey FROM lineitem ORDER BY l_orderkey LIMIT 10")
                .unwrap()
                .fetch_all()
                .unwrap();
            assert_eq!(rows.len(), 10);
        })
    });
    g.bench_function("batch_order_by_limit", |b| {
        b.iter(|| {
            let result = stream_session
                .sql("SELECT l_orderkey FROM lineitem ORDER BY l_orderkey LIMIT 10")
                .unwrap();
            assert_eq!(result.result.rows.len(), 10);
        })
    });

    g.finish();

    // Publish whatever the run pushed into the unified metrics registry
    // (query counters, admission-wait/exec histograms, scan cache hits) as
    // a Prometheus text snapshot, when SHARK_METRICS_SNAPSHOT names a file.
    shark_bench::dump_metrics_snapshot();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
