//! Serving-layer benchmarks: multi-session throughput through the
//! `SharkServer` (admission + shared memstore) vs. the same queries on a
//! bare single-owner session, and the cost of budget enforcement when every
//! query evicts.
use criterion::{criterion_group, criterion_main, Criterion};
use shark_datagen::tpch::{self, TpchConfig};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const QUERY: &str = "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode";

fn server(budget: u64) -> SharkServer {
    let server = SharkServer::new(ServerConfig::default().with_memory_budget(budget));
    let cfg = TpchConfig::tiny();
    let partitions = 8;
    let nodes = server.context().config().cluster.num_nodes;
    server.register_table(
        TableMeta::new("lineitem", tpch::lineitem_schema(), partitions, move |p| {
            tpch::lineitem_partition(&cfg, partitions, p)
        })
        .with_cache(nodes),
    );
    server.load_table("lineitem").unwrap();
    server
}

fn bench_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    g.sample_size(10);

    let single = server(u64::MAX);
    let session = single.session();
    g.bench_function("one_session_cached", |b| {
        b.iter(|| session.sql(QUERY).unwrap())
    });

    let shared = server(u64::MAX);
    g.bench_function("eight_sessions_concurrent", |b| {
        b.iter(|| {
            let workers: Vec<_> = (0..8)
                .map(|_| {
                    let s = shared.session();
                    std::thread::spawn(move || s.sql(QUERY).unwrap())
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
        })
    });

    // A budget of one byte forces an eviction + full lineage reload on
    // every query: the worst-case serving path.
    let thrashing = server(1);
    let thrash_session = thrashing.session();
    g.bench_function("one_session_evict_every_query", |b| {
        b.iter(|| thrash_session.sql(QUERY).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
