//! End-to-end tests of the streaming serving path: cursors deliver batches
//! incrementally while holding the admission permit and memstore pins, LIMIT
//! streams stop launching partitions early (observable through the
//! streamed-partitions metric), and dropping a cursor mid-stream releases
//! everything it held.

use shark_common::{row, DataType, Schema};
use shark_rdd::RddConfig;
use shark_server::{ServerConfig, SharkServer};
use shark_sql::{ExecConfig, TableMeta};

const PARTITIONS: usize = 4;
const ROWS_PER_PARTITION: usize = 50;

fn register_tables(server: &SharkServer, names: &[&str]) {
    for name in names {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("grp", DataType::Str),
            ("amount", DataType::Float),
        ]);
        server.register_table(
            TableMeta::new(name, schema, PARTITIONS, move |p| {
                (0..ROWS_PER_PARTITION)
                    .map(|i| {
                        row![
                            (p * ROWS_PER_PARTITION + i) as i64,
                            ["alpha", "beta", "gamma"][i % 3],
                            (p * ROWS_PER_PARTITION + i) as f64 * 0.5
                        ]
                    })
                    .collect()
            })
            .with_cache(PARTITIONS)
            .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
        );
    }
}

fn server_with(names: &[&str], config: ServerConfig) -> SharkServer {
    let server = SharkServer::new(config);
    register_tables(&server, names);
    for name in names {
        server.load_table(name).unwrap();
    }
    server
}

#[test]
fn streamed_rows_match_batch_rows_including_order_by_merge() {
    let server = server_with(&["t0"], ServerConfig::default());
    let session = server.session();
    for query in [
        "SELECT k, amount FROM t0 WHERE k < 120",
        "SELECT k, amount FROM t0 ORDER BY amount DESC",
        "SELECT grp, COUNT(*) FROM t0 GROUP BY grp ORDER BY grp",
    ] {
        let batch = session.sql(query).unwrap().result.rows;
        let streamed = session.sql_stream(query).unwrap().fetch_all().unwrap();
        assert_eq!(streamed, batch, "query: {query}");
    }
}

#[test]
fn limit_stream_executes_fewer_partitions_and_reports_first_row_early() {
    let server = server_with(&["t0"], ServerConfig::default());
    let session = server.session();

    // LIMIT over a 4-partition table: the stream must stop after the first
    // partition satisfied the limit.
    let rows = session
        .sql_stream("SELECT k FROM t0 LIMIT 3")
        .unwrap()
        .fetch_all()
        .unwrap();
    assert_eq!(rows.len(), 3);

    // A full multi-partition scan: the first row arrives before the last
    // partition has run.
    let mut cursor = session.sql_stream("SELECT k, grp, amount FROM t0").unwrap();
    let mut streamed = 0usize;
    while let Some(batch) = cursor.next_batch().unwrap() {
        streamed += batch.len();
    }
    assert_eq!(streamed, PARTITIONS * ROWS_PER_PARTITION);
    drop(cursor);

    let log = server.query_log();
    let limit_metrics = log
        .iter()
        .find(|q| q.statement.contains("LIMIT 3"))
        .expect("limit query recorded");
    assert!(limit_metrics.streamed);
    assert_eq!(limit_metrics.partitions_total, PARTITIONS);
    assert!(
        limit_metrics.partitions_streamed < limit_metrics.partitions_total,
        "LIMIT stream ran {}/{} partitions",
        limit_metrics.partitions_streamed,
        limit_metrics.partitions_total
    );
    assert_eq!(limit_metrics.rows_streamed, 3);

    let scan_metrics = log
        .iter()
        .find(|q| q.statement.contains("k, grp, amount"))
        .expect("full scan recorded");
    assert_eq!(scan_metrics.partitions_streamed, PARTITIONS);
    assert!(
        scan_metrics.time_to_first_row < scan_metrics.exec_time,
        "first row ({:?}) must arrive before the stream completes ({:?})",
        scan_metrics.time_to_first_row,
        scan_metrics.exec_time
    );

    let report = server.report();
    assert_eq!(report.streamed_queries, 2);
    assert!(report.streamed_partitions >= (PARTITIONS + 1) as u64);
}

#[test]
fn topk_stream_runs_fewer_partitions_than_the_table_has() {
    // `k` increases with the partition index, so partition statistics can
    // prove that partition 0 alone covers ORDER BY k LIMIT 3.
    let server = server_with(&["t0"], ServerConfig::default());
    let mut session = server.session();
    session.set_stream_prefetch(0);
    let rows = session
        .sql_stream("SELECT k FROM t0 ORDER BY k LIMIT 3")
        .unwrap()
        .fetch_all()
        .unwrap();
    assert_eq!(
        rows.iter()
            .map(|r| r.get_int(0).unwrap())
            .collect::<Vec<i64>>(),
        vec![0, 1, 2]
    );
    let log = server.query_log();
    let metrics = log.last().expect("top-k query recorded");
    assert!(metrics.streamed && !metrics.failed);
    assert_eq!(metrics.partitions_total, PARTITIONS);
    assert!(
        metrics.partitions_streamed < metrics.partitions_total,
        "top-k must execute fewer partitions than the table has: {metrics:?}"
    );
    assert!(
        metrics.partitions_streamed <= 3usize.div_ceil(ROWS_PER_PARTITION),
        "partitions_streamed {} > ceil(limit/partition-rows)",
        metrics.partitions_streamed
    );
    // The matching DESC query starts from the other end of the table.
    let rows = session
        .sql_stream("SELECT k FROM t0 ORDER BY k DESC LIMIT 2")
        .unwrap()
        .fetch_all()
        .unwrap();
    assert_eq!(
        rows.iter()
            .map(|r| r.get_int(0).unwrap())
            .collect::<Vec<i64>>(),
        vec![199, 198]
    );
}

#[test]
fn aggregate_prefetch_budget_clamps_grants_and_is_restored_on_drop() {
    let server = server_with(
        &["t0"],
        ServerConfig::default()
            .with_admission(4, 0)
            .with_prefetch_budget(3),
    );
    let mut s1 = server.session();
    let mut s2 = server.session();
    let mut s3 = server.session();
    s1.set_stream_prefetch(2);
    s2.set_stream_prefetch(2);
    s3.set_stream_prefetch(2);

    let c1 = s1.sql_stream("SELECT k FROM t0").unwrap();
    assert_eq!(server.prefetch_in_use(), 2, "first cursor granted in full");
    let c2 = s2.sql_stream("SELECT k FROM t0").unwrap();
    assert_eq!(server.prefetch_in_use(), 3, "second cursor clamped to 1");
    let c3 = s3.sql_stream("SELECT k FROM t0").unwrap();
    assert_eq!(
        server.prefetch_in_use(),
        3,
        "exhausted budget grants 0 (serial stream), never rejects"
    );
    drop(c1);
    drop(c2);
    drop(c3);
    assert_eq!(server.prefetch_in_use(), 0, "grants returned on drop");

    // Grants are visible in the per-query metrics, and with the budget free
    // again a new cursor gets its full request.
    let depths: Vec<usize> = server
        .query_log()
        .iter()
        .map(|q| q.prefetch_depth)
        .collect();
    assert_eq!(depths, vec![2, 1, 0]);
    let mut cursor = s1.sql_stream("SELECT k FROM t0").unwrap();
    assert_eq!(server.prefetch_in_use(), 2);
    let rows = cursor.fetch_all().unwrap();
    assert_eq!(rows.len(), PARTITIONS * ROWS_PER_PARTITION);
    assert_eq!(server.prefetch_in_use(), 0);
    // A fully prefetched drain of a warm table sees prefetch hits.
    let hits = server.query_log().last().unwrap().prefetch_hits;
    assert!(
        hits <= PARTITIONS as u64,
        "hits bounded by partitions: {hits}"
    );
}

#[test]
fn dropping_a_cursor_mid_stream_releases_pins_and_permit() {
    let server = server_with(
        &["t0"],
        ServerConfig::default().with_admission(1, 0), // a single execution slot
    );
    let session = server.session();

    let mut cursor = session.sql_stream("SELECT k FROM t0").unwrap();
    let first = cursor.next_batch().unwrap().expect("first batch");
    assert!(!first.is_empty());
    // Mid-stream: the cursor still holds the permit. A single-scan stream
    // swaps the whole-table pin for per-partition pins covering exactly the
    // partitions it has delivered so far — the rest stay evictable.
    assert_eq!(server.running_queries(), 1);
    assert!(server.pinned_tables().is_empty());
    let pinned = server.pinned_partitions("t0");
    assert!(!pinned.is_empty(), "delivered partitions must be pinned");
    assert!(
        pinned.len() < PARTITIONS,
        "undelivered partitions stay free"
    );
    // With one slot and zero queue spots, a second query is rejected.
    assert!(session.sql("SELECT COUNT(*) FROM t0").is_err());

    drop(cursor);
    assert_eq!(server.running_queries(), 0);
    assert!(server.pinned_tables().is_empty());
    assert!(server.pinned_partitions("t0").is_empty());
    // The slot is free again.
    assert!(session.sql("SELECT COUNT(*) FROM t0").is_ok());

    // The abandoned stream still recorded what it delivered.
    let log = server.query_log();
    let abandoned = log
        .iter()
        .find(|q| q.statement == "SELECT k FROM t0")
        .expect("abandoned stream recorded");
    assert!(abandoned.streamed);
    assert!(abandoned.partitions_streamed < abandoned.partitions_total);
    assert!(!abandoned.failed);
}

#[test]
fn open_cursor_pins_delivered_partitions_against_budget_enforcement() {
    // Budget fits roughly one table, so loading t1 pushes residency over.
    let sizing = server_with(&["t0", "t1"], ServerConfig::default());
    let budget = sizing.catalog().memstore_bytes() * 6 / 10;

    let server = server_with(
        &["t0"],
        ServerConfig {
            rdd: RddConfig::default(),
            exec: ExecConfig::shark(),
            memory_budget_bytes: budget,
            max_concurrent_queries: 4,
            max_queued_queries: 16,
            max_total_prefetch: 8,
            ..ServerConfig::default()
        },
    );
    register_tables(&server, &["t1"]);

    let streaming_session = server.session();
    let mut cursor = streaming_session.sql_stream("SELECT k FROM t0").unwrap();
    let first = cursor.next_batch().unwrap().expect("first batch");
    let delivered = server.pinned_partitions("t0");
    assert!(!delivered.is_empty(), "delivered partitions must be pinned");

    // A concurrent query loads t1, blowing the budget. Enforcement may now
    // evict *undelivered* t0 partitions (rebuilt from lineage if the stream
    // reaches them), but never the partition-pinned delivered ones.
    let other = server.session();
    other.sql("SELECT COUNT(*) FROM t1").unwrap();

    let t0 = server.catalog().get("t0").unwrap();
    let cached = t0.cached.as_ref().unwrap();
    for p in &delivered {
        assert!(
            cached.is_loaded(*p),
            "delivered partition {p} must survive enforcement"
        );
    }
    // Even if enforcement evicted undelivered partitions, the stream drains
    // byte-identically — evicted partitions are rebuilt from lineage.
    let rest = cursor.fetch_all().unwrap();
    assert_eq!(first.len() + rest.len(), PARTITIONS * ROWS_PER_PARTITION);
    assert!(server.pinned_partitions("t0").is_empty());
}

#[test]
fn concurrent_ctas_on_a_shared_catalog_has_exactly_one_winner() {
    let server = server_with(&["t0"], ServerConfig::default());
    let successes: usize = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let session = server.session();
                scope.spawn(move || {
                    usize::from(
                        session
                            .sql("CREATE TABLE dup AS SELECT k, amount FROM t0 WHERE k < 100")
                            .is_ok(),
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    assert_eq!(successes, 1, "exactly one CTAS may win the name");
    // The winner's table is intact and queryable.
    let session = server.session();
    let count = session.sql("SELECT COUNT(*) FROM dup").unwrap();
    assert_eq!(count.result.rows[0].get_int(0).unwrap(), 100);
}

#[test]
fn cached_ctas_under_pressure_keeps_its_target_pinned_until_loaded() {
    // A budget far too small for anything: every enforcement pass wants to
    // evict. The CTAS target must still register and load correctly because
    // it stays pinned for the duration of the statement.
    let server = server_with(&["t0"], ServerConfig::default().with_memory_budget(1024));
    let session = server.session();
    session
        .sql(
            "CREATE TABLE hot TBLPROPERTIES(\"shark.cache\" = \"true\") AS \
             SELECT k, amount FROM t0 WHERE k < 40",
        )
        .unwrap();
    assert!(server.catalog().contains("hot"));
    let count = session.sql("SELECT COUNT(*) FROM hot").unwrap();
    assert_eq!(count.result.rows[0].get_int(0).unwrap(), 40);
    // Nothing is left pinned after the statement.
    assert!(server.pinned_tables().is_empty());
}
