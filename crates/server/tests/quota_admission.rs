//! Quota-aware admission: once one full load has discovered a table's
//! exact resident footprint, a later load whose per-session quota provably
//! cannot hold it is rejected *at admission* — before it burns an
//! execution permit thrashing partitions in and straight back out.

use shark_common::{row, DataType, Schema};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const PARTITIONS: usize = 4;
const ROWS_PER_PARTITION: usize = 256;

fn register_big(server: &SharkServer) {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("payload", DataType::Str)]);
    server.register_table(
        TableMeta::new("big", schema, PARTITIONS, move |p| {
            (0..ROWS_PER_PARTITION)
                .map(|i| {
                    row![
                        (p * ROWS_PER_PARTITION + i) as i64,
                        format!("payload-{p}-{i}-padding-padding-padding")
                    ]
                })
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
}

#[test]
fn provably_infeasible_loads_are_rejected_at_admission() {
    // Measure the table's true footprint with no limits in the way.
    let sizing = SharkServer::local();
    register_big(&sizing);
    sizing.load_table("big").unwrap();
    let footprint = sizing.catalog().memstore_bytes();
    assert!(footprint > 0);

    // A quota half the footprint: the table provably cannot fit a session.
    let server = SharkServer::new(ServerConfig::default().with_session_quota(footprint / 2));
    register_big(&server);

    // The discovering load is admitted — that is how the footprint becomes
    // known — and then thrashes against the quota as before.
    let first = server.session();
    first.load_table("big").unwrap();
    assert_eq!(server.report().quota_infeasible_rejections, 0);

    // Every later load is rejected outright, with the proof in the error.
    let second = server.session();
    let err = second.load_table("big").unwrap_err().to_string();
    assert!(
        err.contains("provably exceeds the per-session memory quota"),
        "got: {err}"
    );

    let report = server.report();
    assert_eq!(report.quota_infeasible_rejections, 1);
    assert_eq!(report.rejected_queries, 1, "the rejection is a rejection");
    assert!(
        report
            .to_json()
            .contains("\"quota_infeasible_rejections\":1"),
        "the gauge must surface in the JSON report"
    );

    // Queries (as opposed to loads) still work for the rejected session:
    // partition-at-a-time execution never needs the full footprint.
    let rows = second.sql("SELECT COUNT(*) FROM big").unwrap().result.rows;
    assert_eq!(rows.len(), 1);
}

#[test]
fn feasible_loads_pass_the_admission_gate() {
    let sizing = SharkServer::local();
    register_big(&sizing);
    sizing.load_table("big").unwrap();
    let footprint = sizing.catalog().memstore_bytes();

    // Quota comfortably above the footprint: both loads are admitted.
    let server = SharkServer::new(ServerConfig::default().with_session_quota(footprint * 2));
    register_big(&server);
    server.session().load_table("big").unwrap();
    server.session().load_table("big").unwrap();
    let report = server.report();
    assert_eq!(report.quota_infeasible_rejections, 0);
    assert_eq!(report.rejected_queries, 0);
}
