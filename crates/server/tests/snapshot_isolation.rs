//! Snapshot isolation of DDL against in-flight queries.
//!
//! The catalog installs an immutable, epoch-versioned snapshot on every DDL
//! and every query pins exactly one snapshot for its whole lifetime, so a
//! concurrent `DROP TABLE` + re-`CREATE TABLE AS` of the same name can
//! never change what an open streaming cursor drains. Dropped versions are
//! *deferred reclamation*: their memstore bytes stay resident (reported as
//! `deferred_drop_bytes`, never eviction candidates, never rebuilt into)
//! until the last referencing snapshot is released, at which point the
//! memstore manager reclaims them and bumps `deferred_drops_reclaimed`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use shark_common::{row, DataType, Schema};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const PARTITIONS: usize = 4;
const ROWS_PER_PARTITION: usize = 60;

fn register_cached(server: &SharkServer, name: &str, salt: i64) {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("amount", DataType::Float)]);
    server.register_table(
        TableMeta::new(name, schema, PARTITIONS, move |p| {
            (0..ROWS_PER_PARTITION)
                .map(|i| {
                    row![
                        (p * ROWS_PER_PARTITION + i) as i64,
                        (salt * 1000 + i as i64) as f64
                    ]
                })
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
}

/// The acceptance-criterion scenario, deterministically ordered: a cursor
/// opened before a concurrent DROP TABLE + re-CTAS of the same name drains
/// byte-identical to the pre-DDL blocking result, never rebuilds a
/// partition of the dropped version, and the dropped bytes are reclaimed
/// once the cursor closes.
#[test]
fn cursor_opened_before_drop_drains_the_pre_ddl_result() {
    let server = SharkServer::new(ServerConfig::default());
    register_cached(&server, "t", 1);
    register_cached(&server, "src", 2);
    server.load_table("t").unwrap();
    server.load_table("src").unwrap();

    let reader = server.session();
    let ddl = server.session();
    let query = "SELECT k, amount FROM t";
    let expected = reader.sql(query).unwrap().result.rows;
    let old_version = server.catalog().get("t").unwrap();
    let old_bytes = old_version.cached.as_ref().unwrap().memory_bytes();
    assert!(old_bytes > 0);

    let mut cursor = reader.sql_stream(query).unwrap();
    let mut drained = cursor.next_batch().unwrap().unwrap();

    // Concurrent DDL: drop t and recreate it (cached) with different rows.
    ddl.sql("DROP TABLE t").unwrap();
    assert_eq!(
        server.deferred_drop_bytes(),
        old_bytes,
        "the open cursor must defer reclamation of the dropped version"
    );
    ddl.sql(
        "CREATE TABLE t TBLPROPERTIES(\"shark.cache\" = \"true\") AS \
         SELECT k, amount FROM src WHERE amount >= 2000",
    )
    .unwrap();

    // New queries resolve the new version...
    let new_rows = ddl.sql("SELECT k, amount FROM t").unwrap().result.rows;
    assert_ne!(new_rows, expected);
    assert!(new_rows.iter().all(|r| r.get_float(1).unwrap() >= 2000.0));

    // ...while the cursor drains exactly the pre-DDL result.
    while let Some(batch) = cursor.next_batch().unwrap() {
        drained.extend(batch);
    }
    assert_eq!(drained, expected);
    assert_eq!(
        old_version.cached.as_ref().unwrap().rebuilds(),
        0,
        "no partition of a dropped table may be rebuilt"
    );

    // The cursor exhausted: its finalize released the snapshot pin and
    // reclaimed the dropped version.
    assert_eq!(server.deferred_drop_bytes(), 0);
    assert_eq!(old_version.cached.as_ref().unwrap().memory_bytes(), 0);
    let report = server.report();
    assert_eq!(report.deferred_drops_reclaimed, 1);
    assert_eq!(report.deferred_reclaimed_bytes, old_bytes);
    // register t + register src + DROP + CTAS = 4 epochs.
    assert_eq!(report.catalog_epoch, 4);
    assert_eq!(report.live_snapshots, 0);
}

/// Deferred bytes are released only when the *last* referencing cursor
/// closes; an abandoned (dropped mid-stream) cursor releases its pin too.
#[test]
fn deferred_bytes_released_only_after_last_cursor_closes() {
    let server = SharkServer::new(ServerConfig::default());
    register_cached(&server, "t", 1);
    server.load_table("t").unwrap();
    let old_bytes = server.catalog().memstore_bytes();

    let s1 = server.session();
    let s2 = server.session();
    let ddl = server.session();
    let mut c1 = s1.sql_stream("SELECT k FROM t").unwrap();
    let mut c2 = s2.sql_stream("SELECT amount FROM t").unwrap();
    assert!(c1.next_batch().unwrap().is_some());
    assert!(c2.next_batch().unwrap().is_some());

    ddl.sql("DROP TABLE t").unwrap();
    assert_eq!(server.deferred_drop_bytes(), old_bytes);

    // Abandon the first cursor mid-stream: its Drop releases pins, permit
    // and snapshot — but the second cursor still defers reclamation.
    drop(c1);
    assert_eq!(server.deferred_drop_bytes(), old_bytes);
    assert_eq!(server.report().deferred_drops_reclaimed, 0);

    let rest = c2.fetch_all().unwrap();
    assert!(!rest.is_empty());
    assert_eq!(server.deferred_drop_bytes(), 0);
    let report = server.report();
    assert_eq!(report.deferred_drops_reclaimed, 1);
    assert_eq!(report.deferred_reclaimed_bytes, old_bytes);
    assert_eq!(report.live_snapshots, 0);
}

const STRESS_SESSIONS: usize = 8;
const WRITERS: usize = 2;
const WRITER_ROUNDS: usize = 10;
const READER_ROUNDS: usize = 16;
const VERSION_ROWS: usize = 96;
/// tag = version * TAG_BASE + k, so any drained row names its version.
const TAG_BASE: i64 = 100_000;

/// The documented race, 8 sessions wide: writers concurrently DROP and
/// re-CTAS one hot table while readers hold open streaming cursors over
/// it. Every cursor must drain a *complete, single-version* result
/// (byte-identical to what a blocking query on its pinned snapshot would
/// return), no partition of any dropped version may be rebuilt, and after
/// the last cursor closes every dropped version's bytes are reclaimed.
#[test]
fn eight_sessions_racing_ddl_against_open_cursors() {
    let server = SharkServer::new(ServerConfig::default().with_admission(16, 256));
    // seed partition v holds version v's rows: k in 0..VERSION_ROWS with
    // tag = v * TAG_BASE + k. Uncached: versions materialize through CTAS.
    let seed_schema = Schema::from_pairs(&[
        ("ver", DataType::Int),
        ("k", DataType::Int),
        ("tag", DataType::Int),
    ]);
    let max_versions = WRITERS * WRITER_ROUNDS + 1;
    server.register_table(TableMeta::new(
        "seed",
        seed_schema,
        max_versions,
        move |p| {
            (0..VERSION_ROWS)
                .map(|k| row![p as i64, k as i64, p as i64 * TAG_BASE + k as i64])
                .collect()
        },
    ));
    let ctas = |version: usize| {
        format!(
            "CREATE TABLE hot TBLPROPERTIES(\"shark.cache\" = \"true\") AS \
             SELECT k, tag FROM seed WHERE ver = {version}"
        )
    };
    // Version 0 exists before any reader starts.
    server.session().sql(&ctas(0)).unwrap();

    let drops = Arc::new(AtomicUsize::new(0));
    let creates = Arc::new(AtomicUsize::new(1)); // the setup CTAS
    let barrier = Arc::new(Barrier::new(STRESS_SESSIONS));
    let mut workers = Vec::new();

    for w in 0..WRITERS {
        let session = server.session();
        let barrier = barrier.clone();
        let drops = drops.clone();
        let creates = creates.clone();
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            for round in 0..WRITER_ROUNDS {
                // Unique target version per attempt; DROP and CTAS may each
                // lose their race against the other writer — that loss is
                // part of what the test exercises.
                let version = 1 + w * WRITER_ROUNDS + round;
                if session.sql("DROP TABLE hot").is_ok() {
                    drops.fetch_add(1, Ordering::Relaxed);
                }
                if session.sql(&ctas(version)).is_ok() {
                    creates.fetch_add(1, Ordering::Relaxed);
                }
            }
            0usize // writers drain no cursors
        }));
    }

    for r in 0..(STRESS_SESSIONS - WRITERS) {
        let session = server.session();
        let barrier = barrier.clone();
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            let mut drained_ok = 0usize;
            for round in 0..READER_ROUNDS {
                // The table vanishes transiently between a DROP and the
                // next CTAS; a reader that catches that window just retries.
                let Ok(mut cursor) = session.sql_stream("SELECT k, tag FROM hot") else {
                    continue;
                };
                let rows = cursor.fetch_all().unwrap_or_else(|e| {
                    panic!("reader {r} round {round}: cursor failed mid-drain: {e}")
                });
                // One complete version, nothing torn: every k exactly once,
                // every tag from the same version.
                assert_eq!(rows.len(), VERSION_ROWS, "reader {r} round {round}");
                let version = rows[0].get_int(1).unwrap() / TAG_BASE;
                let mut ks: Vec<i64> = Vec::with_capacity(rows.len());
                for row in &rows {
                    let k = row.get_int(0).unwrap();
                    let tag = row.get_int(1).unwrap();
                    assert_eq!(
                        tag,
                        version * TAG_BASE + k,
                        "reader {r} round {round}: torn read across versions"
                    );
                    ks.push(k);
                }
                ks.sort_unstable();
                assert_eq!(ks, (0..VERSION_ROWS as i64).collect::<Vec<_>>());
                drained_ok += 1;
            }
            drained_ok
        }));
    }

    let mut drained_total = 0usize;
    for worker in workers {
        drained_total += worker.join().expect("worker panicked");
    }
    assert!(drained_total > 0, "no reader ever drained a cursor");

    // Everything closed: a final sweep reclaims whatever the last DDL left
    // behind, then every dropped version must be fully accounted for.
    server.reclaim_dropped();
    let report = server.report();
    let drops = drops.load(Ordering::Relaxed);
    let creates = creates.load(Ordering::Relaxed);
    assert!(drops > 0, "writers never won a DROP");
    assert_eq!(
        report.deferred_drops_reclaimed, drops as u64,
        "every dropped version must be reclaimed exactly once"
    );
    assert_eq!(report.deferred_drop_bytes, 0);
    assert_eq!(report.live_snapshots, 0);
    // register seed + every successful DDL bumps the epoch exactly once.
    assert_eq!(report.catalog_epoch, (1 + drops + creates) as u64);
    // Unlimited budget: nothing was ever evicted, so any rebuild would
    // mean a dropped version's partitions were recomputed — forbidden.
    assert_eq!(report.partition_rebuilds, 0);
    assert_eq!(report.evictions, 0);
    // The surviving version answers blocking queries consistently.
    let count = server
        .session()
        .sql("SELECT COUNT(*) FROM hot")
        .unwrap()
        .result
        .rows[0]
        .get_int(0)
        .unwrap();
    assert_eq!(count, VERSION_ROWS as i64);
}
