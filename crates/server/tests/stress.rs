//! Stress test: ≥8 concurrent sessions hammering shared cached tables under
//! a memory budget small enough to force LRU eviction and lineage
//! recomputation, verifying that every query still returns correct results
//! and that the server metrics record what happened.

use std::sync::{Arc, Barrier};

use shark_common::{row, DataType, Schema};
use shark_rdd::RddConfig;
use shark_server::{ServerConfig, SharkServer};
use shark_sql::{ExecConfig, TableMeta};

const SESSIONS: usize = 8;
const QUERIES_PER_SESSION: usize = 6;
const PARTITIONS: usize = 4;
const ROWS_PER_PARTITION: usize = 120;

/// TPC-H-style lineitem/orders/customer-ish tables, deterministic so every
/// query's answer is known in closed form.
fn register_tables(server: &SharkServer, names: &[&str]) {
    for (t, name) in names.iter().enumerate() {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("grp", DataType::Str),
            ("amount", DataType::Float),
        ]);
        server.register_table(
            TableMeta::new(name, schema, PARTITIONS, move |p| {
                (0..ROWS_PER_PARTITION)
                    .map(|i| {
                        row![
                            (p * ROWS_PER_PARTITION + i) as i64,
                            ["alpha", "beta", "gamma"][(i + t) % 3],
                            (i % 10) as f64
                        ]
                    })
                    .collect()
            })
            .with_cache(PARTITIONS)
            .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
        );
    }
}

#[test]
fn eight_sessions_share_tables_under_eviction_pressure() {
    let tables = ["t0", "t1", "t2", "t3"];
    let server = SharkServer::new(ServerConfig {
        rdd: RddConfig::default(),
        exec: ExecConfig::shark(),
        // Budget set below; placeholder until tables are loaded once.
        memory_budget_bytes: u64::MAX,
        max_concurrent_queries: 3,
        max_queued_queries: 256,
        max_total_prefetch: 8,
        ..ServerConfig::default()
    });
    register_tables(&server, &tables);
    // Load everything once to measure the full footprint, then rebuild the
    // server with a budget that holds roughly half the tables.
    for name in &tables {
        server.load_table(name).unwrap();
    }
    let full_bytes = server.catalog().memstore_bytes();
    assert!(full_bytes > 0);

    let server = SharkServer::new(ServerConfig {
        rdd: RddConfig::default(),
        exec: ExecConfig::shark(),
        memory_budget_bytes: full_bytes / 2,
        max_concurrent_queries: 3,
        max_queued_queries: 256,
        max_total_prefetch: 8,
        ..ServerConfig::default()
    });
    register_tables(&server, &tables);

    let expected_count = (PARTITIONS * ROWS_PER_PARTITION) as i64;
    // SUM(amount) per table: PARTITIONS * sum over rows of (i % 10).
    let expected_sum: f64 = (PARTITIONS as f64)
        * (0..ROWS_PER_PARTITION)
            .map(|i| (i % 10) as f64)
            .sum::<f64>();

    let barrier = Arc::new(Barrier::new(SESSIONS));
    let mut workers = Vec::new();
    for s in 0..SESSIONS {
        let session = server.session();
        let barrier = barrier.clone();
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            for q in 0..QUERIES_PER_SESSION {
                // Walk the tables so sessions keep displacing each other's
                // working set under the tight budget.
                let table = ["t0", "t1", "t2", "t3"][(s + q) % 4];
                let count = session
                    .sql(&format!("SELECT COUNT(*) FROM {table}"))
                    .unwrap();
                assert_eq!(
                    count.result.rows[0].get_int(0).unwrap(),
                    expected_count,
                    "session {s} query {q} on {table}"
                );
                let sum = session
                    .sql(&format!("SELECT SUM(amount) FROM {table}"))
                    .unwrap();
                let got = sum.result.rows[0].get_float(0).unwrap();
                assert!(
                    (got - expected_sum).abs() < 1e-6,
                    "session {s} query {q} on {table}: {got} != {expected_sum}"
                );
            }
            session.id()
        }));
    }
    let ids: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(ids.len(), SESSIONS);

    let report = server.report();
    // Every query ran and none were rejected (queue bound was generous).
    assert_eq!(
        report.total_queries,
        (SESSIONS * QUERIES_PER_SESSION * 2) as u64
    );
    assert_eq!(report.failed_queries, 0);
    assert_eq!(report.rejected_queries, 0);
    assert_eq!(report.sessions.len(), SESSIONS);
    // Concurrency was real: more than one query executed at once, and with
    // 8 sessions against 3 slots somebody had to queue.
    assert!(
        report.peak_concurrent_queries >= 2,
        "no overlap observed: {report:?}"
    );
    assert!(report.peak_concurrent_queries <= 3);
    // The budget is half the working set: evictions must have happened and
    // been recorded, and evicted tables were recomputed on re-access.
    assert!(
        report.evictions > 0,
        "no evictions under a half-size budget"
    );
    assert!(report.evicted_bytes > 0);
    assert!(
        report.lineage_recomputes > 0,
        "evicted tables were never recomputed: {report:?}"
    );
    // The budget held at every enforcement point (all tables unpinned now).
    assert!(
        report.memstore_bytes + report.rdd_cache_bytes <= report.memory_budget_bytes,
        "over budget at rest: {report:?}"
    );
    // Cached scans served bytes from the memstore.
    assert!(report.cache_hit_bytes > 0);
}

#[test]
fn evicted_table_is_recomputed_transparently() {
    let server = SharkServer::new(ServerConfig::default().with_memory_budget(1));
    register_tables(&server, &["only"]);
    let session = server.session();
    let expected = (PARTITIONS * ROWS_PER_PARTITION) as i64;
    // First access loads the table, then enforcement immediately evicts it
    // (budget of 1 byte holds nothing).
    let first = session.sql("SELECT COUNT(*) FROM only").unwrap();
    assert_eq!(first.result.rows[0].get_int(0).unwrap(), expected);
    assert!(first.metrics.evictions_triggered > 0);
    assert_eq!(server.catalog().memstore_bytes(), 0);
    // Second access recomputes from lineage and still answers correctly.
    let second = session.sql("SELECT COUNT(*) FROM only").unwrap();
    assert_eq!(second.result.rows[0].get_int(0).unwrap(), expected);
    assert_eq!(second.metrics.recomputed_tables, 1);
    let report = server.report();
    assert!(report.evictions >= 2);
    assert!(report.lineage_recomputes >= 1);
}

#[test]
fn admission_rejections_surface_as_errors_and_metrics() {
    use std::sync::{Condvar, Mutex};

    // One slot, zero queue: a query running concurrently with another must
    // be rejected. A UDF in the blocker query parks inside execution, so
    // the slot is provably occupied when the victim arrives.
    let server = SharkServer::new(ServerConfig::default().with_admission(1, 0));
    register_tables(&server, &["t"]);
    let mut blocker = server.session();
    let victim = server.session();

    #[derive(Default)]
    struct Gate {
        state: Mutex<(bool, bool)>, // (query entered execution, released)
        changed: Condvar,
    }
    let gate = Arc::new(Gate::default());
    let udf_gate = gate.clone();
    blocker.register_udf("hold_slot", move |args| {
        let mut state = udf_gate.state.lock().unwrap();
        state.0 = true;
        udf_gate.changed.notify_all();
        while !state.1 {
            state = udf_gate.changed.wait(state).unwrap();
        }
        args[0].clone()
    });

    let holder = std::thread::spawn(move || {
        blocker
            .sql("SELECT COUNT(*) FROM t WHERE hold_slot(k) >= 0")
            .unwrap()
    });
    // Wait until the blocker is provably mid-execution, holding the slot.
    {
        let mut state = gate.state.lock().unwrap();
        while !state.0 {
            state = gate.changed.wait(state).unwrap();
        }
    }
    let err = victim.sql("SELECT COUNT(*) FROM t").unwrap_err();
    assert!(err.to_string().contains("admission queue full"), "{err}");
    // Release the blocker and let it finish.
    {
        let mut state = gate.state.lock().unwrap();
        state.1 = true;
        gate.changed.notify_all();
    }
    let blocked_result = holder.join().unwrap();
    assert_eq!(
        blocked_result.result.rows[0].get_int(0).unwrap(),
        (PARTITIONS * ROWS_PER_PARTITION) as i64
    );
    let report = server.report();
    assert_eq!(report.rejected_queries, 1);
    assert_eq!(report.sessions.iter().map(|s| s.rejected).sum::<u64>(), 1);
    // The victim can run once the slot frees up.
    assert!(victim.sql("SELECT COUNT(*) FROM t").is_ok());
}
